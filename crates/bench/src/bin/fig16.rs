//! Fig. 16: the Toronto noise report (per-qubit readout error, per-edge
//! CNOT error) plus the mapping "circles" used by Figs. 17-19.

use qaprox_bench::{banner, Scale};
use qaprox_device::devices::toronto;
use qaprox_device::{render_report, standard_mappings};

fn main() {
    let scale = Scale::from_env();
    banner(
        "fig16",
        "Toronto noise report and candidate mappings",
        &scale,
    );
    let cal = toronto();
    print!("{}", render_report(&cal));
    println!("mapping,qubits,noise_score");
    for m in standard_mappings(&cal, 4) {
        println!(
            "{},{:?},{:.5}",
            m.name,
            m.qubits,
            cal.subset_score(&m.qubits)
        );
    }
}
