//! Table 1: average CNOT errors on the five IBM machines.

use qaprox_bench::{banner, Scale};
use qaprox_device::devices::{all_devices, TABLE1};

fn main() {
    let scale = Scale::from_env();
    banner(
        "table1",
        "Average CNOT error per machine (paper Table 1)",
        &scale,
    );
    println!("machine,num_qubits,avg_cnot_err,paper_value,avg_readout_err");
    for cal in all_devices() {
        let paper = TABLE1
            .iter()
            .find(|(name, _, _)| *name == cal.machine)
            .map(|&(_, _, v)| v)
            .unwrap_or(f64::NAN);
        println!(
            "{},{},{:.5},{:.5},{:.5}",
            cal.machine,
            cal.topology.num_qubits(),
            cal.avg_cx_error(),
            paper,
            cal.avg_readout_error()
        );
    }
}
