//! Extension: calibration drift. The paper notes that device calibrations
//! change constantly — does a circuit selected against *yesterday's*
//! calibration still beat the reference on *today's* drifted device?

use qaprox::prelude::*;
use qaprox::selection::{choose, SelectionContext, Selector};
use qaprox_bench::*;

fn main() {
    let scale = Scale::from_env();
    banner(
        "drift_study",
        "robustness of circuit selection under calibration drift",
        &scale,
    );
    let params = TfimParams::paper_defaults(3);
    let step = scale.tfim_steps.min(10);
    let reference = tfim_circuit(&params, step);
    let mut wf = scale.workflow(3);
    wf.max_hs = 0.3;
    let pop = wf.generate(&qaprox::Workflow::target_unitary(&reference));
    if pop.circuits.is_empty() {
        println!("# empty population at this scale");
        return;
    }
    let ideal = qaprox_sim::statevector::probabilities(&reference);
    let base = devices::toronto().induced(&[0, 1, 2]);
    let tvd = |p: &[f64]| qaprox_metrics::total_variation(p, &ideal);

    // Select once against the *base* calibration (the "yesterday" choice).
    let base_backend = Backend::Noisy(NoiseModel::from_calibration(base.clone()));
    let ctx = SelectionContext {
        ideal: &ideal,
        backend: &base_backend,
    };
    let chosen_idx = choose(&Selector::Oracle, &pop.circuits, &ctx);
    let chosen = &pop.circuits[chosen_idx];
    println!(
        "# chosen on base calibration: {} CNOTs, HS {:.3}",
        chosen.cnots, chosen.hs_distance
    );

    println!("drift_seed,magnitude,ref_err,chosen_err,still_wins");
    let mut wins = 0usize;
    let mut total = 0usize;
    for magnitude in [0.1, 0.25, 0.5] {
        for seed in 0..6u64 {
            let drifted = base.with_drift(seed, magnitude);
            let backend = Backend::Noisy(NoiseModel::from_calibration(drifted));
            let ref_err = tvd(&backend.probabilities(&reference, 0));
            let chosen_err = tvd(&backend.probabilities(&chosen.circuit, 1));
            let still = chosen_err < ref_err;
            wins += still as usize;
            total += 1;
            println!("{seed},{magnitude},{ref_err:.4},{chosen_err:.4},{still}");
        }
    }
    println!("# yesterday's choice still beats the reference on {wins}/{total} drifted devices");
}
