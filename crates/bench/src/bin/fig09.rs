//! Fig. 9: 3q TFIM approximations under the Ourense model, CNOT error 0.12.
use qaprox_bench::*;
fn main() {
    let scale = Scale::from_env();
    run_sweep_figure("fig09", 0.12, &scale);
}
