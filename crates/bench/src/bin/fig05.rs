//! Fig. 5: probability of the correct box over CNOT count for 3-qubit
//! Grover ('111') under the Toronto noise model.

use qaprox::grover_study::GroverStudy;
use qaprox_bench::*;

fn main() {
    let scale = Scale::from_env();
    banner(
        "fig05",
        "3q Grover, Toronto noise model: P(correct) vs CNOT count",
        &scale,
    );
    let study = GroverStudy::paper();
    let mut wf = scale.workflow(3);
    wf.max_hs = 0.5; // paper: "little to no filter" for Grover's wide population
                     // Grover's reference is deep (24+ CNOTs); search deeper than the TFIM
                     // default so the population contains strong approximations too.
    if let qaprox::Engine::QSearch(cfg) = &mut wf.engine {
        cfg.max_cnots = cfg.max_cnots.max(10);
        cfg.max_nodes = cfg.max_nodes.max(400);
        // Grover's unitary needs a stronger optimizer than the TFIM default:
        // more restarts and iterations per node (cf. examples/grover_depth).
        cfg.instantiate.starts = cfg.instantiate.starts.max(5);
        cfg.instantiate.lbfgs.max_iters = 300;
    }
    let pop = wf.generate(&study.target_unitary());
    let circuits = cap_population(&pop.circuits, scale.population_cap);
    let backend = device_model_backend("toronto", 3);
    let scored = study.evaluate_population(&circuits, &backend);
    let reference = study.reference();
    let ref_score = study.reference_score(&backend);
    print_scatter("p_correct", ref_score, reference.cx_count(), &scored);
    let better = scored.iter().filter(|s| s.score > ref_score).count();
    println!(
        "# {better}/{} approximations beat the reference",
        scored.len()
    );
}
