//! Roadmap (Sec. 6.5): correlate the benefit of approximate circuits with a
//! hardware evaluation metric — quantum volume — across device models.
//!
//! The paper's projection: devices with small quantum volume (tight depth
//! budgets) should gain the most from approximation; as QV grows the exact
//! reference catches up.

use qaprox::prelude::*;
use qaprox::qvolume::quantum_volume;
use qaprox::tfim_study::{evaluate, series_error};
use qaprox_bench::*;

fn main() {
    let scale = Scale::from_env();
    banner(
        "roadmap_study",
        "approximation gain vs quantum volume per device (Sec. 6.5)",
        &scale,
    );
    let pops = tfim_populations(3, &scale);
    let trials = if scale.tfim_steps < 21 { 4 } else { 12 };

    println!("machine,avg_cx_err,quantum_volume,ref_err,best_err,precision_gain_pct");
    let mut rows: Vec<(f64, f64)> = Vec::new();
    for cal in devices::all_devices() {
        let sub = cal.induced(&[0, 1, 2]);
        let backend = Backend::Noisy(NoiseModel::from_calibration(sub.clone()));
        let results = evaluate(&pops, &backend);
        let ref_err = series_error(&results, |r| r.noisy_ref);
        let best_err = series_error(&results, |r| r.best_approx.score);
        let gain = if ref_err > 0.0 {
            (1.0 - best_err / ref_err) * 100.0
        } else {
            0.0
        };

        let qv = quantum_volume(&cal, 3, trials, 0xAB).quantum_volume;
        println!(
            "{},{:.5},{qv},{ref_err:.4},{best_err:.4},{gain:.1}",
            cal.machine,
            cal.avg_cx_error()
        );
        rows.push(cal_gain(cal.avg_cx_error(), gain));
    }

    // Spearman-ish check: does gain grow with device error?
    let mut by_err = rows.clone();
    by_err.sort_by(|a, b| a.0.total_cmp(&b.0));
    let increasing = by_err.windows(2).filter(|w| w[1].1 >= w[0].1).count();
    println!(
        "# gain increases with device error in {increasing}/{} adjacent device pairs",
        by_err.len().saturating_sub(1)
    );
}

fn cal_gain(err: f64, gain: f64) -> (f64, f64) {
    (err, gain)
}
