//! Extension (Sec. 6.5): synthesize deep TFIM circuits from small pieces
//! and compare against whole-circuit synthesis and the exact reference.

use qaprox::prelude::*;
use qaprox_bench::*;
use qaprox_synth::{synthesize_partitioned, PartitionConfig};

fn main() {
    let scale = Scale::from_env();
    banner(
        "partitioned_study",
        "segment-wise synthesis of deep TFIM circuits (Sec. 6.5 roadmap)",
        &scale,
    );
    let params = TfimParams::paper_defaults(3);
    let topo = Topology::linear(3);
    let cal = devices::toronto().induced(&[0, 1, 2]);
    let backend = Backend::Noisy(NoiseModel::from_calibration(cal));

    println!("step,ref_cnots,part_cnots,part_hs_bound,ref_err,part_err");
    for step in [4usize, 8, 12, 16, 21]
        .iter()
        .copied()
        .filter(|&s| s <= scale.tfim_steps)
    {
        let reference = tfim_circuit(&params, step);
        let cfg = PartitionConfig {
            segment_cnots: 8,
            qsearch: scale.qsearch_config(3),
        };
        let result = synthesize_partitioned(&reference, &topo, &cfg);
        let ideal_m = magnetization(&qaprox_sim::statevector::probabilities(&reference));
        let ref_m = magnetization(&backend.probabilities(&reference, 0));
        let part_m = magnetization(&backend.probabilities(&result.circuit, 1));
        println!(
            "{step},{},{},{:.4},{:.4},{:.4}",
            reference.cx_count(),
            result.circuit.cx_count(),
            result.segment_distances.iter().sum::<f64>(),
            (ref_m - ideal_m).abs(),
            (part_m - ideal_m).abs()
        );
    }
    println!("# part_err < ref_err at late steps = the pieces strategy pays off");
}
