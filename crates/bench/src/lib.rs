//! Shared experiment-harness plumbing for the per-figure binaries.
//!
//! Every binary prints CSV-style rows to stdout (the same series the paper
//! plots) plus `#`-prefixed commentary. Two sizes are supported:
//!
//! * default — full experiment scale (minutes per figure);
//! * `QAPROX_QUICK=1` — reduced scale for smoke runs and CI.

use qaprox::prelude::*;
use qaprox::tfim_study::{generate_populations, TfimPopulations};
use qaprox_synth::InstantiateConfig;

/// Experiment scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// TFIM timesteps (paper: 21).
    pub tfim_steps: usize,
    /// QSearch node budget per target.
    pub max_nodes: usize,
    /// QSearch CNOT cap for 3-qubit targets.
    pub max_cnots_3q: usize,
    /// QSearch CNOT cap for 4-qubit targets.
    pub max_cnots_4q: usize,
    /// QSearch beam width.
    pub beam_width: usize,
    /// Instantiation multistarts.
    pub starts: usize,
    /// QFast block cap.
    pub qfast_blocks: usize,
    /// Population cap per figure (dots plotted).
    pub population_cap: usize,
}

impl Scale {
    /// Reads the scale from the environment (`QAPROX_QUICK=1` shrinks it).
    pub fn from_env() -> Self {
        if std::env::var("QAPROX_QUICK").is_ok_and(|v| v == "1") {
            Scale::quick()
        } else {
            Scale::full()
        }
    }

    /// Full experiment scale.
    pub fn full() -> Self {
        Scale {
            tfim_steps: 21,
            max_nodes: 180,
            max_cnots_3q: 6,
            max_cnots_4q: 8,
            beam_width: 6,
            starts: 2,
            qfast_blocks: 8,
            population_cap: 400,
        }
    }

    /// Smoke-test scale.
    pub fn quick() -> Self {
        Scale {
            tfim_steps: 5,
            max_nodes: 40,
            max_cnots_3q: 4,
            max_cnots_4q: 5,
            beam_width: 2,
            starts: 1,
            qfast_blocks: 4,
            population_cap: 60,
        }
    }

    /// QSearch configured for `n`-qubit targets at this scale.
    pub fn qsearch_config(&self, n: usize) -> QSearchConfig {
        QSearchConfig {
            max_cnots: if n <= 3 {
                self.max_cnots_3q
            } else {
                self.max_cnots_4q
            },
            max_nodes: self.max_nodes,
            beam_width: self.beam_width,
            instantiate: InstantiateConfig {
                starts: self.starts,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// QFast configured for this scale.
    pub fn qfast_config(&self) -> QFastConfig {
        QFastConfig {
            max_blocks: self.qfast_blocks,
            ..Default::default()
        }
    }

    /// The generation workflow for `n`-qubit targets on a linear chain
    /// (the paper's level-1 mapping onto qubits 0..n).
    pub fn workflow(&self, n: usize) -> Workflow {
        Workflow {
            topology: Topology::linear(n),
            engine: Engine::QSearch(self.qsearch_config(n)),
            // paper: selection threshold of at least 0.1
            max_hs: 0.12,
        }
    }

    /// Workflow that also merges a QFast stream (used for 4-qubit figures
    /// where the paper leaned on QFast).
    pub fn workflow_both(&self, n: usize) -> Workflow {
        Workflow {
            topology: Topology::linear(n),
            engine: Engine::Both(self.qsearch_config(n), self.qfast_config()),
            max_hs: 0.12,
        }
    }
}

/// Generates the TFIM populations used by several figures.
pub fn tfim_populations(n: usize, scale: &Scale) -> TfimPopulations {
    let params = TfimParams::paper_defaults(n);
    let wf = if n <= 3 {
        scale.workflow(n)
    } else {
        scale.workflow_both(n)
    };
    generate_populations(&params, scale.tfim_steps, &wf)
}

/// Truncates a population to the plotting cap with a **depth-stratified**
/// sample: each CNOT count keeps its best (lowest-HS) circuits in
/// round-robin order. A pure lowest-HS cap would keep only the deepest,
/// most exact circuits and silently drop the shallow ones that win under
/// noise — the exact population the paper's figures are about.
pub fn cap_population(
    circuits: &[qaprox_synth::ApproxCircuit],
    cap: usize,
) -> Vec<qaprox_synth::ApproxCircuit> {
    if circuits.len() <= cap {
        return circuits.to_vec();
    }
    use std::collections::BTreeMap;
    let mut by_depth: BTreeMap<usize, Vec<&qaprox_synth::ApproxCircuit>> = BTreeMap::new();
    for c in circuits {
        by_depth.entry(c.cnots).or_default().push(c);
    }
    for group in by_depth.values_mut() {
        group.sort_by(|a, b| a.hs_distance.total_cmp(&b.hs_distance));
    }
    let mut out = Vec::with_capacity(cap);
    let mut rank = 0usize;
    while out.len() < cap {
        let mut advanced = false;
        for group in by_depth.values() {
            if let Some(c) = group.get(rank) {
                out.push((*c).clone());
                advanced = true;
                if out.len() == cap {
                    break;
                }
            }
        }
        if !advanced {
            break;
        }
        rank += 1;
    }
    out
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, description: &str, scale: &Scale) {
    println!("# experiment: {id}");
    println!("# {description}");
    println!(
        "# scale: steps={} nodes={} beam={} cap={}",
        scale.tfim_steps, scale.max_nodes, scale.beam_width, scale.population_cap
    );
}

/// The device noise-model backend for an `n`-qubit circuit mapped (level 1)
/// onto qubits `0..n` of the named machine.
pub fn device_model_backend(device: &str, n: usize) -> Backend {
    let cal = devices::by_name(device)
        .unwrap_or_else(|| panic!("unknown device {device}"))
        .induced(&(0..n).collect::<Vec<_>>());
    Backend::Noisy(NoiseModel::from_calibration(cal))
}

/// The hardware-emulation backend for an `n`-qubit circuit on qubits `0..n`
/// of the named machine (substitute for the paper's physical-machine runs).
pub fn hardware_backend(device: &str, n: usize) -> Backend {
    let cal = devices::by_name(device)
        .unwrap_or_else(|| panic!("unknown device {device}"))
        .induced(&(0..n).collect::<Vec<_>>());
    Backend::Hardware(HardwareBackend::new(NoiseModel::from_calibration(cal)))
}

/// Prints the Fig. 2-style summary series (one row per timestep).
pub fn print_tfim_series(results: &[qaprox::tfim_study::TimestepResult]) {
    println!("step,noise_free_ref,noisy_ref,minimal_hs_mag,minimal_hs_cnots,best_approx_mag,best_approx_cnots,reference_cnots");
    for r in results {
        println!(
            "{},{:.4},{:.4},{:.4},{},{:.4},{},{}",
            r.step,
            r.noise_free_ref,
            r.noisy_ref,
            r.minimal_hs.score,
            r.minimal_hs.cnots,
            r.best_approx.score,
            r.best_approx.cnots,
            r.reference_cnots
        );
    }
}

/// Prints the Fig. 3-style full scatter (one row per approximate circuit per
/// timestep).
pub fn print_tfim_dots(results: &[qaprox::tfim_study::TimestepResult], cap: usize) {
    println!("step,cnots,hs_distance,magnetization");
    for r in results {
        for s in r.all.iter().take(cap) {
            println!("{},{},{:.5},{:.4}", r.step, s.cnots, s.hs_distance, s.score);
        }
    }
}

/// Prints the summary stats every figure binary ends with: how often the
/// best approximation beat the noisy reference, and the precision gain.
pub fn print_tfim_verdict(results: &[qaprox::tfim_study::TimestepResult]) {
    let wins = results
        .iter()
        .filter(|r| {
            (r.best_approx.score - r.noise_free_ref).abs()
                <= (r.noisy_ref - r.noise_free_ref).abs() + 1e-12
        })
        .count();
    let ref_err = qaprox::tfim_study::series_error(results, |r| r.noisy_ref);
    let best_err = qaprox::tfim_study::series_error(results, |r| r.best_approx.score);
    let gain = if ref_err > 0.0 {
        (1.0 - best_err / ref_err) * 100.0
    } else {
        0.0
    };
    println!(
        "# best-approx beats noisy reference on {wins}/{} timesteps",
        results.len()
    );
    println!(
        "# mean |error|: noisy_ref={ref_err:.4} best_approx={best_err:.4} precision_gain={gain:.1}%"
    );
}

/// Runs one Ourense-based CNOT-error point for Figs. 8-10 and prints it.
pub fn run_sweep_figure(id: &str, eps: f64, scale: &Scale) {
    banner(
        id,
        &format!("3q TFIM, Ourense model with uniform CNOT error {eps}"),
        scale,
    );
    let pops = tfim_populations(3, scale);
    let base = devices::ourense().induced(&[0, 1, 2]);
    let sweep = qaprox::sweep::cx_error_sweep(&pops, &base, &[eps]);
    print_tfim_dots(&sweep[0].results, scale.population_cap);
    print_tfim_verdict(&sweep[0].results);
}

/// Prints a population scored on some backend as a CNOT-count scatter
/// (Figs. 5-7, 14-15, 17-19 shape), with a reference line.
pub fn print_scatter(label: &str, reference_score: f64, reference_cnots: usize, scored: &[Scored]) {
    println!("# reference: score={reference_score:.4} cnots={reference_cnots}");
    println!("kind,cnots,hs_distance,{label}");
    println!("reference,{reference_cnots},0.00000,{reference_score:.4}");
    for s in scored {
        println!("approx,{},{:.5},{:.4}", s.cnots, s.hs_distance, s.score);
    }
}

/// The deep synthesis workflow used by the 4-qubit Toffoli figures: the
/// paper's Fig. 6 population spans dozens of CNOTs, which needs a deeper
/// QSearch ladder plus the QFast stream.
pub fn deep_toffoli_workflow(scale: &Scale) -> Workflow {
    use qaprox_opt::LbfgsParams;
    use qaprox_synth::InstantiateConfig;
    let qs = QSearchConfig {
        max_cnots: if scale.tfim_steps < 21 { 6 } else { 14 },
        max_nodes: if scale.tfim_steps < 21 { 60 } else { 420 },
        beam_width: if scale.tfim_steps < 21 { 2 } else { 6 },
        instantiate: InstantiateConfig {
            starts: if scale.tfim_steps < 21 { 1 } else { 4 },
            lbfgs: LbfgsParams {
                max_iters: 300,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };
    let qf = QFastConfig {
        max_blocks: if scale.tfim_steps < 21 { 4 } else { 10 },
        ..Default::default()
    };
    Workflow {
        topology: Topology::linear(4),
        engine: Engine::Both(qs, qf),
        max_hs: 0.5,
    }
}

/// Runs one of the Figs. 17-19 mapping studies: 4-qubit Toffoli
/// approximations pinned onto a Toronto mapping (`mapping_index` into
/// [`qaprox_device::standard_mappings`]) or auto-placed by the level-3
/// transpiler (`mapping_index == usize::MAX`).
pub fn mapping_figure(id: &str, mapping_index: usize) {
    use qaprox::mapping::{MappingStudy, Placement};
    use qaprox::toffoli_study::{random_noise_js, toffoli_target};
    use qaprox_algos::mct::mct_reference;
    use qaprox_device::standard_mappings;

    let scale = Scale::from_env();
    let device = devices::toronto();
    let (placement, label) = if mapping_index == usize::MAX {
        (Placement::Auto, "auto(level-3)".to_string())
    } else {
        let maps = standard_mappings(&device, 4);
        let m = &maps[mapping_index];
        (
            Placement::Manual(m.qubits.clone()),
            format!("{} {:?}", m.name, m.qubits),
        )
    };
    banner(
        id,
        &format!("4q Toffoli on Toronto hardware emulation, mapping {label}"),
        &scale,
    );

    let wf = deep_toffoli_workflow(&scale);
    let pop = wf.generate(&toffoli_target(4));
    let circuits = cap_population(&pop.circuits, scale.population_cap.min(120));

    let study = MappingStudy {
        device,
        placement,
        effects: HardwareEffects::heavy_2021(),
        shots: None,
    };
    let reference = mct_reference(4);
    let ref_js = study.reference_js(&reference);
    let scored = study.evaluate_population(&circuits);
    print_scatter("js_distance", ref_js, reference.cx_count(), &scored);
    println!("# random-noise JS floor: {:.4}", random_noise_js(4));
    let better = scored.iter().filter(|s| s.score < ref_js).count();
    println!(
        "# {better}/{} approximations beat the reference under this mapping",
        scored.len()
    );
}

/// Minimal wall-clock benchmarking used by the `benches/` binaries
/// (`harness = false`): warm up, pick an iteration count that fills a fixed
/// measurement window, and report min/median/mean per-iteration times.
pub mod timing {
    use std::time::{Duration, Instant};

    /// One measured benchmark: label plus per-iteration statistics.
    pub struct Measurement {
        /// Human-readable benchmark id (`group/case`).
        pub label: String,
        /// Iterations per sample.
        pub iters: u64,
        /// Fastest sample, per iteration.
        pub min: Duration,
        /// Median sample, per iteration.
        pub median: Duration,
        /// Mean over all samples, per iteration.
        pub mean: Duration,
    }

    fn per_iter(total: Duration, iters: u64) -> Duration {
        Duration::from_nanos((total.as_nanos() / u128::from(iters.max(1))) as u64)
    }

    /// Runs `f` repeatedly and reports per-iteration wall-clock statistics.
    ///
    /// The iteration count is calibrated so each of the `samples` batches
    /// takes roughly `target` wall time; results are printed as one
    /// CSV-style row (`label,iters,min_ns,median_ns,mean_ns`).
    pub fn bench<R>(label: &str, mut f: impl FnMut() -> R) -> Measurement {
        let target = Duration::from_millis(40);
        let samples = 9usize;
        // warm-up + calibration: double until one batch crosses ~1/4 target
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let took = t0.elapsed();
            if took >= target / 4 || iters >= 1 << 20 {
                let scale = target.as_secs_f64() / took.as_secs_f64().max(1e-9);
                iters = ((iters as f64 * scale).ceil() as u64).clamp(1, 1 << 22);
                break;
            }
            iters *= 2;
        }
        let mut durations: Vec<Duration> = (0..samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                per_iter(t0.elapsed(), iters)
            })
            .collect();
        durations.sort_unstable();
        let mean = durations.iter().sum::<Duration>() / samples as u32;
        let m = Measurement {
            label: label.to_string(),
            iters,
            min: durations[0],
            median: durations[samples / 2],
            mean,
        };
        println!(
            "{},{},{},{},{}",
            m.label,
            m.iters,
            m.min.as_nanos(),
            m.median.as_nanos(),
            m.mean.as_nanos()
        );
        m
    }

    /// Prints the CSV header shared by every bench binary.
    pub fn header(name: &str) {
        println!("# bench: {name}");
        println!("label,iters_per_sample,min_ns,median_ns,mean_ns");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let q = Scale::quick();
        let f = Scale::full();
        assert!(q.tfim_steps < f.tfim_steps);
        assert!(q.max_nodes < f.max_nodes);
    }

    #[test]
    fn workflow_uses_linear_topology() {
        let wf = Scale::quick().workflow(3);
        assert_eq!(wf.topology.num_qubits(), 3);
        assert!(wf.max_hs >= 0.1, "paper's threshold floor");
    }

    #[test]
    fn cap_population_is_depth_stratified() {
        use qaprox_circuit::Circuit;
        // two depth classes: five 0-CNOT circuits and five 2-CNOT circuits
        let mk = |cnots: usize, dist: f64| {
            let mut c = Circuit::new(2);
            for _ in 0..cnots {
                c.cx(0, 1);
            }
            qaprox_synth::ApproxCircuit::new(c, dist)
        };
        let pop: Vec<_> = (0..5)
            .map(|i| mk(0, 0.5 + i as f64 * 0.01)) // shallow, bad HS
            .chain((0..5).map(|i| mk(2, i as f64 * 0.01))) // deep, good HS
            .collect();
        let capped = cap_population(&pop, 4);
        assert_eq!(capped.len(), 4);
        // both depth classes must survive the cap
        assert!(
            capped.iter().any(|c| c.cnots == 0),
            "shallow circuits dropped"
        );
        assert!(capped.iter().any(|c| c.cnots == 2), "deep circuits dropped");
    }
}
