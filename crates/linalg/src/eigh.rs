//! Hermitian eigendecomposition via the cyclic complex Jacobi method.
//!
//! Used for spectral matrix functions (`exp(iH)` cross-validation against
//! the Padé path), density-matrix spectra, and entanglement entropy. Jacobi
//! is slow asymptotically but bulletproof at the tiny dimensions this stack
//! uses (<= 64), and it delivers orthonormal eigenvectors by construction.

use crate::complex::Complex64;
use crate::matrix::Matrix;

/// The eigendecomposition `H = V diag(w) V^dagger` of a Hermitian matrix.
#[derive(Debug, Clone)]
pub struct Eigh {
    /// Real eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the eigenvectors (same order).
    pub vectors: Matrix,
}

/// Computes the eigendecomposition of a Hermitian matrix.
///
/// # Panics
/// Panics if `h` is not square or not Hermitian to `1e-9`.
pub fn eigh(h: &Matrix) -> Eigh {
    assert!(h.is_square(), "eigh needs a square matrix");
    assert!(h.is_hermitian(1e-9), "eigh needs a Hermitian matrix");
    let n = h.rows();
    let mut a = h.clone();
    let mut v = Matrix::identity(n);

    // Cyclic Jacobi sweeps: rotate away the largest off-diagonal entries.
    for _sweep in 0..100 {
        let mut off = 0.0f64;
        for i in 0..n {
            for j in i + 1..n {
                off = off.max(a[(i, j)].abs());
            }
        }
        if off < 1e-14 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = a[(p, q)];
                if apq.abs() < 1e-16 {
                    continue;
                }
                // Unitary 2x2 rotation eliminating a[p][q]: strip the phase
                // of apq with D = diag(1, e^{-i phi}), then apply the real
                // Jacobi rotation G(theta); J = D G is unitary and
                // J^dag A J zeroes the (p, q) entry.
                let phase = apq / apq.abs(); // e^{i phi}
                let app = a[(p, p)].re;
                let aqq = a[(q, q)].re;
                let theta = 0.5 * (2.0 * apq.abs()).atan2(app - aqq);
                let (c, sn) = (theta.cos(), theta.sin());
                apply_rotation(&mut a, &mut v, p, q, c, sn, phase);
            }
        }
    }

    // Extract eigenvalues, sort ascending, permute the eigenvector columns.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| a[(i, i)].re).collect();
    order.sort_by(|&x, &y| diag[x].total_cmp(&diag[y]));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    Eigh { values, vectors }
}

/// Applies the two-sided Jacobi rotation `A <- J^dagger A J`, `V <- V J`
/// with `J = D G`: `D = diag(1, e^{-i phi})` on the `(p, q)` block and `G`
/// the real rotation by `theta`, i.e.
/// `J[p][p] = c`, `J[p][q] = -sn`, `J[q][p] = e^{-i phi} sn`,
/// `J[q][q] = e^{-i phi} c`.
fn apply_rotation(
    a: &mut Matrix,
    v: &mut Matrix,
    p: usize,
    q: usize,
    c: f64,
    sn: f64,
    phase: Complex64,
) {
    let n = a.rows();
    let e_m = phase.conj(); // e^{-i phi}
    let e_p = phase; // e^{+i phi}
                     // A <- A J (columns)
    for r in 0..n {
        let arp = a[(r, p)];
        let arq = a[(r, q)];
        a[(r, p)] = arp * c + arq * (e_m * sn);
        a[(r, q)] = arp * (-sn) + arq * (e_m * c);
    }
    // A <- J^dagger A (rows): J^dag = [[c, e^{i phi} sn], [-sn, e^{i phi} c]]
    for col in 0..n {
        let apc = a[(p, col)];
        let aqc = a[(q, col)];
        a[(p, col)] = apc * c + aqc * (e_p * sn);
        a[(q, col)] = apc * (-sn) + aqc * (e_p * c);
    }
    // V <- V J
    for r in 0..n {
        let vrp = v[(r, p)];
        let vrq = v[(r, q)];
        v[(r, p)] = vrp * c + vrq * (e_m * sn);
        v[(r, q)] = vrp * (-sn) + vrq * (e_m * c);
    }
}

impl Eigh {
    /// Reconstructs `f(H) = V diag(f(w)) V^dagger` for a real function `f`.
    pub fn apply_function<F: Fn(f64) -> Complex64>(&self, f: F) -> Matrix {
        let n = self.values.len();
        let mut d = Matrix::zeros(n, n);
        for (i, &w) in self.values.iter().enumerate() {
            d[(i, i)] = f(w);
        }
        self.vectors.matmul(&d).matmul(&self.vectors.adjoint())
    }
}

/// `exp(i H)` via the spectral decomposition — an independent cross-check of
/// the Padé implementation in [`crate::expm`].
pub fn expm_i_hermitian_spectral(h: &Matrix) -> Matrix {
    eigh(h).apply_function(Complex64::cis)
}

/// Von Neumann entropy `-Tr(rho ln rho)` (nats) of a density matrix.
/// Eigenvalues below `1e-12` are treated as zero.
pub fn von_neumann_entropy(rho: &Matrix) -> f64 {
    let e = eigh(rho);
    -e.values
        .iter()
        .filter(|&&w| w > 1e-12)
        .map(|&w| w * w.ln())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::expm::expm_i_hermitian;
    use crate::matrix::{pauli_x, pauli_y, pauli_z};
    use crate::pauli::{hermitian_from_coeffs, su_basis};
    use crate::random::haar_unitary;
    use crate::random::Rng;
    use crate::random::SplitMix64 as StdRng;

    fn random_hermitian(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = c64(rng.gen_range(-2.0..2.0), 0.0);
            for j in i + 1..n {
                let z = c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                m[(i, j)] = z;
                m[(j, i)] = z.conj();
            }
        }
        m
    }

    #[test]
    fn diagonalizes_pauli_z() {
        let e = eigh(&pauli_z());
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diagonalizes_pauli_x_and_y() {
        for p in [pauli_x(), pauli_y()] {
            let e = eigh(&p);
            assert!((e.values[0] + 1.0).abs() < 1e-10);
            assert!((e.values[1] - 1.0).abs() < 1e-10);
            assert!(e.vectors.is_unitary(1e-10));
        }
    }

    #[test]
    fn reconstruction_identity() {
        for seed in 0..10 {
            for n in [2usize, 4, 8] {
                let h = random_hermitian(n, seed * 31 + n as u64);
                let e = eigh(&h);
                assert!(e.vectors.is_unitary(1e-9), "eigenvectors not unitary");
                let back = e.apply_function(|w| c64(w, 0.0));
                assert!(
                    back.approx_eq(&h, 1e-8),
                    "V diag(w) V^dag != H (n={n}, seed={seed}): max diff {}",
                    back.max_diff(&h)
                );
            }
        }
    }

    #[test]
    fn eigenvalues_are_sorted_and_real_trace_matches() {
        let h = random_hermitian(6, 7);
        let e = eigh(&h);
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        let trace_sum: f64 = e.values.iter().sum();
        assert!((trace_sum - h.trace().re).abs() < 1e-9);
    }

    #[test]
    fn spectral_expm_matches_pade() {
        for seed in 0..5 {
            let basis = su_basis(2);
            let mut rng = StdRng::seed_from_u64(seed);
            let coeffs: Vec<f64> = (0..15).map(|_| rng.gen_range(-1.5..1.5)).collect();
            let h = hermitian_from_coeffs(&basis, &coeffs);
            let via_pade = expm_i_hermitian(&h);
            let via_spectral = expm_i_hermitian_spectral(&h);
            assert!(
                via_pade.approx_eq(&via_spectral, 1e-8),
                "expm paths disagree: {}",
                via_pade.max_diff(&via_spectral)
            );
        }
    }

    #[test]
    fn entropy_of_pure_and_mixed_states() {
        // pure state: |0><0| has zero entropy
        let mut pure = Matrix::zeros(2, 2);
        pure[(0, 0)] = Complex64::ONE;
        assert!(von_neumann_entropy(&pure).abs() < 1e-10);
        // maximally mixed qubit: ln 2
        let mixed = Matrix::identity(2).scale_re(0.5);
        assert!((von_neumann_entropy(&mixed) - std::f64::consts::LN_2).abs() < 1e-10);
    }

    #[test]
    fn entropy_is_unitarily_invariant() {
        let mut rng = StdRng::seed_from_u64(3);
        let rho = {
            // random diagonal density matrix conjugated by a Haar unitary
            let probs = [0.5, 0.3, 0.15, 0.05];
            let mut d = Matrix::zeros(4, 4);
            for (i, &p) in probs.iter().enumerate() {
                d[(i, i)] = c64(p, 0.0);
            }
            let u = haar_unitary(4, &mut rng);
            u.matmul(&d).matmul(&u.adjoint())
        };
        let expect: f64 = -[0.5f64, 0.3, 0.15, 0.05]
            .iter()
            .map(|p| p * p.ln())
            .sum::<f64>();
        assert!((von_neumann_entropy(&rho) - expect).abs() < 1e-8);
    }
}
