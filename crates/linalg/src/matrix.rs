//! Dense row-major complex matrices.
//!
//! All quantum objects in this stack (gate matrices, circuit unitaries,
//! density matrices) are small — dimension `2^n` with `n <= 8` — so a simple
//! contiguous `Vec<Complex64>` with cubic matmul is both adequate and fast.

use crate::complex::{c64, Complex64};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major complex matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl Matrix {
    /// Creates a `rows x cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds a square matrix from nested row arrays (test/gate convenience).
    pub fn from_rows(rows: &[&[Complex64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged matrix rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a diagonal matrix from its diagonal entries.
    pub fn diag(entries: &[Complex64]) -> Self {
        let n = entries.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw row-major data slice.
    #[inline(always)]
    pub fn data(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable raw row-major data slice.
    #[inline(always)]
    pub fn data_mut(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major data.
    pub fn into_vec(self) -> Vec<Complex64> {
        self.data
    }

    /// Overwrites `self` with the contents of `src` (no allocation).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, src: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (src.rows, src.cols),
            "copy_from shape mismatch"
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Overwrites `self` with the identity (no allocation).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn set_identity(&mut self) {
        assert!(self.is_square(), "set_identity needs a square matrix");
        self.data.fill(Complex64::ZERO);
        for i in 0..self.rows {
            self.data[i * self.cols + i] = Complex64::ONE;
        }
    }

    /// Returns row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Complex64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product written into a preallocated output (i-k-j loop order,
    /// which streams both `rhs` rows and `out` rows for cache friendliness).
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        assert_eq!(out.rows, self.rows, "matmul output rows mismatch");
        assert_eq!(out.cols, rhs.cols, "matmul output cols mismatch");
        out.data.fill(Complex64::ZERO);
        let n = rhs.cols;
        for i in 0..self.rows {
            let orow = &mut out.data[i * n..(i + 1) * n];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == Complex64::ZERO {
                    continue;
                }
                let brow = &rhs.data[k * n..(k + 1) * n];
                for j in 0..n {
                    orow[j] = orow[j].mul_add(a, brow[j]);
                }
            }
        }
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        let mut out = vec![Complex64::ZERO; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = Complex64::ZERO;
            for (a, b) in row.iter().zip(v) {
                acc = acc.mul_add(*a, *b);
            }
            *o = acc;
        }
        out
    }

    /// Conjugate transpose (dagger).
    pub fn adjoint(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Transpose without conjugation.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Elementwise complex conjugate.
    pub fn conj(&self) -> Matrix {
        let data = self.data.iter().map(|z| z.conj()).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Trace (sum of diagonal entries). Requires a square matrix.
    pub fn trace(&self) -> Complex64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// `Tr(self^dagger * rhs)` computed without forming the product —
    /// the Hilbert-Schmidt inner product.
    pub fn hs_inner(&self, rhs: &Matrix) -> Complex64 {
        assert_eq!(self.rows, rhs.rows, "hs_inner shape mismatch");
        assert_eq!(self.cols, rhs.cols, "hs_inner shape mismatch");
        let mut acc = Complex64::ZERO;
        for (a, b) in self.data.iter().zip(&rhs.data) {
            acc = acc.mul_add(a.conj(), *b);
        }
        acc
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entrywise modulus — a cheap stand-in for the operator norm
    /// when scaling for `expm`.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Kronecker (tensor) product `self (x) rhs`.
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == Complex64::ZERO {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: Complex64) -> Matrix {
        let data = self.data.iter().map(|&z| z * k).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scales every entry by a real factor.
    pub fn scale_re(&self, k: f64) -> Matrix {
        let data = self.data.iter().map(|&z| z * k).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place `self += k * rhs` (axpy).
    pub fn axpy(&mut self, k: Complex64, rhs: &Matrix) {
        assert_eq!(self.rows, rhs.rows, "axpy shape mismatch");
        assert_eq!(self.cols, rhs.cols, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a = a.mul_add(k, *b);
        }
    }

    /// True when every entry is within `tol` of `rhs`.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        self.rows == rhs.rows
            && self.cols == rhs.cols
            && self
                .data
                .iter()
                .zip(&rhs.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// True when `self^dagger * self` is the identity to within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = self.adjoint().matmul(self);
        prod.approx_eq(&Matrix::identity(self.rows), tol)
    }

    /// True when `self == self^dagger` to within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in i..self.cols {
                if !self[(i, j)].approx_eq(self[(j, i)].conj(), tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Canonical byte serialization for content addressing: dimensions as
    /// little-endian u64 followed by each entry's real and imaginary parts as
    /// little-endian IEEE-754 doubles (`-0.0` normalized to `0.0`).
    /// Numerically equal matrices always serialize identically, so this is a
    /// stable input for [`crate::hashing::Hash128`] cache keys.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 16 * self.data.len());
        out.extend_from_slice(&(self.rows as u64).to_le_bytes());
        out.extend_from_slice(&(self.cols as u64).to_le_bytes());
        for z in &self.data {
            let re = if z.re == 0.0 { 0.0f64 } else { z.re };
            let im = if z.im == 0.0 { 0.0f64 } else { z.im };
            out.extend_from_slice(&re.to_le_bytes());
            out.extend_from_slice(&im.to_le_bytes());
        }
        out
    }

    /// Maximum entrywise distance to `rhs`.
    pub fn max_diff(&self, rhs: &Matrix) -> f64 {
        assert_eq!(self.rows, rhs.rows, "max_diff shape mismatch");
        assert_eq!(self.cols, rhs.cols, "max_diff shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = Complex64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "add shape mismatch");
        assert_eq!(self.cols, rhs.cols, "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| *a + *b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "sub shape mismatch");
        assert_eq!(self.cols, rhs.cols, "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| *a - *b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:?} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

/// The 2x2 Pauli-X matrix.
pub fn pauli_x() -> Matrix {
    Matrix::from_rows(&[
        &[Complex64::ZERO, Complex64::ONE],
        &[Complex64::ONE, Complex64::ZERO],
    ])
}

/// The 2x2 Pauli-Y matrix.
pub fn pauli_y() -> Matrix {
    Matrix::from_rows(&[
        &[Complex64::ZERO, c64(0.0, -1.0)],
        &[Complex64::I, Complex64::ZERO],
    ])
}

/// The 2x2 Pauli-Z matrix.
pub fn pauli_z() -> Matrix {
    Matrix::from_rows(&[
        &[Complex64::ONE, Complex64::ZERO],
        &[Complex64::ZERO, c64(-1.0, 0.0)],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[
            &[c64(1.0, 2.0), c64(0.0, -1.0)],
            &[c64(3.0, 0.0), c64(0.5, 0.5)],
        ]);
        let i = Matrix::identity(2);
        assert!(a.matmul(&i).approx_eq(&a, 1e-14));
        assert!(i.matmul(&a).approx_eq(&a, 1e-14));
    }

    #[test]
    fn matmul_known_product() {
        // [[1,i],[0,1]] * [[1,0],[i,1]] = [[1+i*i, i],[i,1]] = [[0,i],[i,1]]
        let a = Matrix::from_rows(&[
            &[Complex64::ONE, Complex64::I],
            &[Complex64::ZERO, Complex64::ONE],
        ]);
        let b = Matrix::from_rows(&[
            &[Complex64::ONE, Complex64::ZERO],
            &[Complex64::I, Complex64::ONE],
        ]);
        let p = a.matmul(&b);
        let expect = Matrix::from_rows(&[
            &[Complex64::ZERO, Complex64::I],
            &[Complex64::I, Complex64::ONE],
        ]);
        assert!(p.approx_eq(&expect, 1e-14));
    }

    #[test]
    fn adjoint_reverses_products() {
        let a = pauli_x().matmul(&pauli_y());
        let lhs = a.adjoint();
        let rhs = pauli_y().adjoint().matmul(&pauli_x().adjoint());
        assert!(lhs.approx_eq(&rhs, 1e-14));
    }

    #[test]
    fn paulis_are_unitary_hermitian_traceless() {
        for p in [pauli_x(), pauli_y(), pauli_z()] {
            assert!(p.is_unitary(1e-14));
            assert!(p.is_hermitian(1e-14));
            assert!(p.trace().abs() < 1e-14);
        }
    }

    #[test]
    fn pauli_algebra_xy_equals_iz() {
        let xy = pauli_x().matmul(&pauli_y());
        let iz = pauli_z().scale(Complex64::I);
        assert!(xy.approx_eq(&iz, 1e-14));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = pauli_x();
        let i = Matrix::identity(2);
        let xi = x.kron(&i);
        assert_eq!(xi.rows(), 4);
        // X (x) I swaps the high bit: |00> -> |10>
        assert_eq!(xi[(2, 0)], Complex64::ONE);
        assert_eq!(xi[(0, 2)], Complex64::ONE);
        assert_eq!(xi[(0, 0)], Complex64::ZERO);
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A (x) B)(C (x) D) = AC (x) BD
        let a = pauli_x();
        let b = pauli_y();
        let c = pauli_z();
        let d = Matrix::identity(2);
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.approx_eq(&rhs, 1e-13));
    }

    #[test]
    fn hs_inner_matches_trace_of_product() {
        let a = pauli_x();
        let b = pauli_y();
        let direct = a.adjoint().matmul(&b).trace();
        assert!((a.hs_inner(&b) - direct).abs() < 1e-13);
        // self inner product = squared Frobenius norm
        let self_ip = a.hs_inner(&a);
        assert!((self_ip.re - a.fro_norm().powi(2)).abs() < 1e-13);
        assert!(self_ip.im.abs() < 1e-14);
    }

    #[test]
    fn matvec_matches_matmul_column() {
        let a = pauli_y();
        let v = vec![c64(1.0, 0.0), c64(0.0, 1.0)];
        let got = a.matvec(&v);
        // Y * (1, i) = (-i*i, i*1) = (1, i)
        assert!((got[0] - c64(1.0, 0.0)).abs() < 1e-14);
        assert!((got[1] - c64(0.0, 1.0)).abs() < 1e-14);
    }

    #[test]
    fn diag_builds_diagonal() {
        let d = Matrix::diag(&[Complex64::ONE, Complex64::I]);
        assert_eq!(d[(0, 0)], Complex64::ONE);
        assert_eq!(d[(1, 1)], Complex64::I);
        assert_eq!(d[(0, 1)], Complex64::ZERO);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::identity(2);
        a.axpy(c64(2.0, 0.0), &pauli_z());
        assert_eq!(a[(0, 0)], c64(3.0, 0.0));
        assert_eq!(a[(1, 1)], c64(-1.0, 0.0));
    }

    #[test]
    fn trace_of_identity_is_dim() {
        assert_eq!(Matrix::identity(8).trace(), c64(8.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        let _ = a.matmul(&b);
    }
}
