//! Gate-application kernels.
//!
//! These are the innermost loops of every simulator and of unitary
//! construction during synthesis, so they never materialize the embedded
//! `2^n x 2^n` gate matrix. A one-qubit gate applied to a statevector costs
//! `O(2^n)`; applied to a `2^n x 2^n` matrix it costs `O(4^n)` — always a
//! factor `2^n` cheaper than forming the embedding and multiplying.
//!
//! Conventions used across the whole workspace:
//! * qubit `0` is the **least significant bit** of a basis index;
//! * a two-qubit gate on `(a, b)` uses small-matrix index `s = (bit_a << 1) | bit_b`,
//!   i.e. the *first* listed qubit is the high bit of the 4x4 matrix.

use crate::complex::Complex64;
use crate::matrix::Matrix;

/// Expands basis-enumeration index `i` (over states with qubit `q` = 0) into
/// the actual basis index by inserting a `0` bit at position `q`.
#[inline(always)]
fn insert_zero_bit(i: usize, q: usize) -> usize {
    let low = i & ((1 << q) - 1);
    ((i >> q) << (q + 1)) | low
}

/// Applies a one-qubit gate `u` (row-major 2x2) to qubit `q` of a statevector.
pub fn apply_1q_vec(state: &mut [Complex64], q: usize, u: &[Complex64; 4]) {
    let dim = state.len();
    debug_assert!(dim.is_power_of_two());
    debug_assert!(1 << q < dim, "qubit index out of range");
    let mask = 1usize << q;
    for i in 0..dim / 2 {
        let i0 = insert_zero_bit(i, q);
        let i1 = i0 | mask;
        let a = state[i0];
        let b = state[i1];
        state[i0] = a * u[0] + b * u[1];
        state[i1] = a * u[2] + b * u[3];
    }
}

/// Applies a two-qubit gate `u` (row-major 4x4) to qubits `(a, b)` of a
/// statevector, with `a` the high bit of the small index.
pub fn apply_2q_vec(state: &mut [Complex64], a: usize, b: usize, u: &[Complex64; 16]) {
    let dim = state.len();
    debug_assert!(a != b, "two-qubit gate needs distinct qubits");
    debug_assert!((1 << a) < dim && (1 << b) < dim, "qubit index out of range");
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let ma = 1usize << a;
    let mb = 1usize << b;
    for i in 0..dim / 4 {
        let base = insert_zero_bit(insert_zero_bit(i, lo), hi);
        let idx = [base, base | mb, base | ma, base | ma | mb];
        let amp = [state[idx[0]], state[idx[1]], state[idx[2]], state[idx[3]]];
        for (r, &out_i) in idx.iter().enumerate() {
            let mut acc = Complex64::ZERO;
            for (c, &amp_c) in amp.iter().enumerate() {
                acc = acc.mul_add(u[r * 4 + c], amp_c);
            }
            state[out_i] = acc;
        }
    }
}

/// Squared norm of `U psi` for a one-qubit gate `u` on qubit `q`, without
/// mutating the state. This is the read-only half of stochastic Kraus
/// sampling: branch probabilities `||K_i psi||^2` are computed with this
/// kernel and only the *selected* branch is applied in place, so a channel
/// application allocates nothing.
///
/// Dispatches to the fastest implementation the host supports (AVX2 when
/// detected, [`norm_sqr_1q_scalar`] otherwise); both paths accumulate into
/// the same four structural lanes and reduce them in the same order, so the
/// result is bit-identical either way. See [`crate::simd`].
pub fn norm_sqr_1q(state: &[Complex64], q: usize, u: &[Complex64; 4]) -> f64 {
    (crate::simd::kernel_dispatch().norm_sqr_1q)(state, q, u)
}

/// Squared norm of `U psi` for a two-qubit gate `u` on `(a, b)` (first listed
/// qubit = high bit), without mutating the state. See [`norm_sqr_1q`];
/// dispatched the same way, with [`norm_sqr_2q_scalar`] as the fallback.
pub fn norm_sqr_2q(state: &[Complex64], a: usize, b: usize, u: &[Complex64; 16]) -> f64 {
    (crate::simd::kernel_dispatch().norm_sqr_2q)(state, a, b, u)
}

/// Portable [`norm_sqr_1q`]: blocked two-stream traversal accumulating into
/// four structural lanes `[re0, im0, re1, im1]` with the fixed reduction
/// `(l0 + l2) + (l1 + l3)` — the exact shape of the AVX2 accumulator, which
/// is what makes the two paths bit-identical.
pub fn norm_sqr_1q_scalar(state: &[Complex64], q: usize, u: &[Complex64; 4]) -> f64 {
    let dim = state.len();
    debug_assert!(dim.is_power_of_two());
    debug_assert!(1 << q < dim, "qubit index out of range");
    let mask = 1usize << q;
    let mut lanes = [0.0f64; 4];
    if mask == 1 {
        // one (a, b) pair per vector: lanes hold (x.re^2, x.im^2, y.re^2, y.im^2)
        let mut i = 0usize;
        while i < dim {
            let a = state[i];
            let b = state[i + 1];
            let x = a * u[0] + b * u[1];
            let y = a * u[2] + b * u[3];
            lanes[0] += x.re * x.re;
            lanes[1] += x.im * x.im;
            lanes[2] += y.re * y.re;
            lanes[3] += y.im * y.im;
            i += 2;
        }
    } else {
        // two pairs per vector step: lanes hold (pair0.re^2, pair0.im^2,
        // pair1.re^2, pair1.im^2), x-outputs then y-outputs
        let stride = mask << 1;
        let mut base = 0usize;
        while base < dim {
            let mut off = 0usize;
            while off < mask {
                let i0 = base + off;
                let i1 = i0 | mask;
                let (a0, a1) = (state[i0], state[i0 + 1]);
                let (b0, b1) = (state[i1], state[i1 + 1]);
                let x0 = a0 * u[0] + b0 * u[1];
                let x1 = a1 * u[0] + b1 * u[1];
                lanes[0] += x0.re * x0.re;
                lanes[1] += x0.im * x0.im;
                lanes[2] += x1.re * x1.re;
                lanes[3] += x1.im * x1.im;
                let y0 = a0 * u[2] + b0 * u[3];
                let y1 = a1 * u[2] + b1 * u[3];
                lanes[0] += y0.re * y0.re;
                lanes[1] += y0.im * y0.im;
                lanes[2] += y1.re * y1.re;
                lanes[3] += y1.im * y1.im;
                off += 2;
            }
            base += stride;
        }
    }
    (lanes[0] + lanes[2]) + (lanes[1] + lanes[3])
}

/// Portable [`norm_sqr_2q`]: blocked traversal with the same structural
/// four-lane accumulation as the AVX2 kernel (see [`norm_sqr_1q_scalar`]).
pub fn norm_sqr_2q_scalar(state: &[Complex64], a: usize, b: usize, u: &[Complex64; 16]) -> f64 {
    let dim = state.len();
    debug_assert!(a != b, "two-qubit gate needs distinct qubits");
    debug_assert!((1 << a) < dim && (1 << b) < dim, "qubit index out of range");
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let ma = 1usize << a;
    let mb = 1usize << b;
    let mlo = 1usize << lo;
    let mhi = 1usize << hi;
    let mut lanes = [0.0f64; 4];
    if mlo >= 2 {
        // two quads per vector step: lane pairs hold quad0 / quad1 outputs
        let mut base_hi = 0usize;
        while base_hi < dim {
            let mut base_mid = base_hi;
            while base_mid < base_hi + mhi {
                let mut off = 0usize;
                while off < mlo {
                    let base = base_mid + off;
                    let amp0 = [
                        state[base],
                        state[base | mb],
                        state[base | ma],
                        state[base | ma | mb],
                    ];
                    let base1 = base + 1;
                    let amp1 = [
                        state[base1],
                        state[base1 | mb],
                        state[base1 | ma],
                        state[base1 | ma | mb],
                    ];
                    for r in 0..4 {
                        let mut acc0 = Complex64::ZERO;
                        let mut acc1 = Complex64::ZERO;
                        for c in 0..4 {
                            acc0 = acc0.mul_add(u[r * 4 + c], amp0[c]);
                            acc1 = acc1.mul_add(u[r * 4 + c], amp1[c]);
                        }
                        lanes[0] += acc0.re * acc0.re;
                        lanes[1] += acc0.im * acc0.im;
                        lanes[2] += acc1.re * acc1.re;
                        lanes[3] += acc1.im * acc1.im;
                    }
                    off += 2;
                }
                base_mid += mlo << 1;
            }
            base_hi += mhi << 1;
        }
    } else {
        // lo == 0: one quad spans two contiguous pairs; rows are visited in
        // memory order (the small-index order of adjacent slots depends on
        // which of a/b is qubit 0), two rows per accumulation step
        let ms: [usize; 4] = if mb == 1 { [0, 1, 2, 3] } else { [0, 2, 1, 3] };
        let mut base_hi = 0usize;
        while base_hi < dim {
            let mut base = base_hi;
            while base < base_hi + mhi {
                let amp = [
                    state[base],
                    state[base | mb],
                    state[base | ma],
                    state[base | ma | mb],
                ];
                for half in 0..2 {
                    let r0 = ms[2 * half];
                    let r1 = ms[2 * half + 1];
                    let mut acc0 = Complex64::ZERO;
                    let mut acc1 = Complex64::ZERO;
                    for c in 0..4 {
                        acc0 = acc0.mul_add(u[r0 * 4 + c], amp[c]);
                        acc1 = acc1.mul_add(u[r1 * 4 + c], amp[c]);
                    }
                    lanes[0] += acc0.re * acc0.re;
                    lanes[1] += acc0.im * acc0.im;
                    lanes[2] += acc1.re * acc1.re;
                    lanes[3] += acc1.im * acc1.im;
                }
                base += 2;
            }
            base_hi += mhi << 1;
        }
    }
    (lanes[0] + lanes[2]) + (lanes[1] + lanes[3])
}

/// Cache-friendly variant of [`apply_1q_vec`]: instead of recomputing the
/// bit-insert per index pair, iterate blocks of `2^q` contiguous amplitudes
/// so the inner loop walks two contiguous streams. Identical results to the
/// plain kernel (same operations in the same order per pair).
///
/// Dispatches to the AVX2 kernel when the host supports it and to
/// [`apply_1q_vec_blocked_scalar`] otherwise; the two are bit-identical
/// (see [`crate::simd`]).
pub fn apply_1q_vec_blocked(state: &mut [Complex64], q: usize, u: &[Complex64; 4]) {
    (crate::simd::kernel_dispatch().apply_1q_blocked)(state, q, u)
}

/// Cache-friendly variant of [`apply_2q_vec`]: three nested loops over
/// (high-bit block, mid block, contiguous low offsets), so the innermost
/// loop reads and writes four contiguous amplitude streams — the layout the
/// trajectory backend's fused 2q matrices are applied with. Identical
/// results to the plain kernel.
///
/// Dispatched like [`apply_1q_vec_blocked`], with
/// [`apply_2q_vec_blocked_scalar`] as the portable fallback.
pub fn apply_2q_vec_blocked(state: &mut [Complex64], a: usize, b: usize, u: &[Complex64; 16]) {
    (crate::simd::kernel_dispatch().apply_2q_blocked)(state, a, b, u)
}

/// Scales every amplitude by the real factor `s` — the renormalization
/// sweep after a stochastic Kraus selection, paid once per noise event in
/// the trajectory shot loop. Elementwise (`re*s`, `im*s` per amplitude, no
/// reduction), so the AVX2 and scalar paths are trivially bit-identical.
///
/// Dispatched like [`apply_1q_vec_blocked`], with [`scale_scalar`] as the
/// portable fallback.
pub fn scale(state: &mut [Complex64], s: f64) {
    (crate::simd::kernel_dispatch().scale)(state, s)
}

/// Portable [`scale`] implementation.
pub fn scale_scalar(state: &mut [Complex64], s: f64) {
    for z in state.iter_mut() {
        *z *= s;
    }
}

/// Portable [`apply_1q_vec_blocked`] implementation.
pub fn apply_1q_vec_blocked_scalar(state: &mut [Complex64], q: usize, u: &[Complex64; 4]) {
    let dim = state.len();
    debug_assert!(dim.is_power_of_two());
    debug_assert!(1 << q < dim, "qubit index out of range");
    let mask = 1usize << q;
    let stride = mask << 1;
    let mut base = 0usize;
    while base < dim {
        for off in 0..mask {
            let i0 = base + off;
            let i1 = i0 | mask;
            let a = state[i0];
            let b = state[i1];
            state[i0] = a * u[0] + b * u[1];
            state[i1] = a * u[2] + b * u[3];
        }
        base += stride;
    }
}

/// Portable [`apply_2q_vec_blocked`] implementation.
pub fn apply_2q_vec_blocked_scalar(
    state: &mut [Complex64],
    a: usize,
    b: usize,
    u: &[Complex64; 16],
) {
    let dim = state.len();
    debug_assert!(a != b, "two-qubit gate needs distinct qubits");
    debug_assert!((1 << a) < dim && (1 << b) < dim, "qubit index out of range");
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let ma = 1usize << a;
    let mb = 1usize << b;
    let mlo = 1usize << lo;
    let mhi = 1usize << hi;
    let mut base_hi = 0usize;
    while base_hi < dim {
        let mut base_mid = base_hi;
        while base_mid < base_hi + mhi {
            for off in 0..mlo {
                let base = base_mid + off;
                let idx = [base, base | mb, base | ma, base | ma | mb];
                let amp = [state[idx[0]], state[idx[1]], state[idx[2]], state[idx[3]]];
                for (r, &out_i) in idx.iter().enumerate() {
                    let mut acc = Complex64::ZERO;
                    for (c, &amp_c) in amp.iter().enumerate() {
                        acc = acc.mul_add(u[r * 4 + c], amp_c);
                    }
                    state[out_i] = acc;
                }
            }
            base_mid += mlo << 1;
        }
        base_hi += mhi << 1;
    }
}

/// Left-multiplies a matrix by an embedded one-qubit gate: `M <- U_embed * M`.
///
/// The row index of `mat` is the quantum index; every column is transformed
/// like a statevector. Used both for building circuit unitaries (starting
/// from the identity) and for the `U rho` half of a density-matrix update.
pub fn apply_1q_mat_left(mat: &mut Matrix, q: usize, u: &[Complex64; 4]) {
    let rows = mat.rows();
    let cols = mat.cols();
    debug_assert!(rows.is_power_of_two());
    let mask = 1usize << q;
    let data = mat.data_mut();
    for i in 0..rows / 2 {
        let r0 = insert_zero_bit(i, q) * cols;
        let r1 = r0 + mask * cols;
        for j in 0..cols {
            let a = data[r0 + j];
            let b = data[r1 + j];
            data[r0 + j] = a * u[0] + b * u[1];
            data[r1 + j] = a * u[2] + b * u[3];
        }
    }
}

/// Left-multiplies a matrix by an embedded two-qubit gate: `M <- U_embed * M`.
pub fn apply_2q_mat_left(mat: &mut Matrix, a: usize, b: usize, u: &[Complex64; 16]) {
    let rows = mat.rows();
    let cols = mat.cols();
    debug_assert!(a != b);
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let ma = 1usize << a;
    let mb = 1usize << b;
    let data = mat.data_mut();
    for i in 0..rows / 4 {
        let base = insert_zero_bit(insert_zero_bit(i, lo), hi);
        let r = [
            base * cols,
            (base | mb) * cols,
            (base | ma) * cols,
            (base | ma | mb) * cols,
        ];
        for j in 0..cols {
            let amp = [
                data[r[0] + j],
                data[r[1] + j],
                data[r[2] + j],
                data[r[3] + j],
            ];
            for (ri, &row_off) in r.iter().enumerate() {
                let mut acc = Complex64::ZERO;
                for (ci, &amp_c) in amp.iter().enumerate() {
                    acc = acc.mul_add(u[ri * 4 + ci], amp_c);
                }
                data[row_off + j] = acc;
            }
        }
    }
}

/// Right-multiplies a matrix by the adjoint of an embedded one-qubit gate:
/// `M <- M * U_embed^dagger`. Combined with [`apply_1q_mat_left`] this gives
/// the density-matrix conjugation `rho <- U rho U^dagger`.
pub fn apply_1q_mat_right_dag(mat: &mut Matrix, q: usize, u: &[Complex64; 4]) {
    let rows = mat.rows();
    let cols = mat.cols();
    debug_assert!(cols.is_power_of_two());
    let mask = 1usize << q;
    let data = mat.data_mut();
    for row in 0..rows {
        let off = row * cols;
        for j in 0..cols / 2 {
            let j0 = insert_zero_bit(j, q);
            let j1 = j0 | mask;
            let a = data[off + j0];
            let b = data[off + j1];
            // (M U^dag)[.,j0] = M[.,j0] conj(u00) + M[.,j1] conj(u01)
            data[off + j0] = a * u[0].conj() + b * u[1].conj();
            data[off + j1] = a * u[2].conj() + b * u[3].conj();
        }
    }
}

/// Right-multiplies a matrix by the adjoint of an embedded two-qubit gate:
/// `M <- M * U_embed^dagger`.
pub fn apply_2q_mat_right_dag(mat: &mut Matrix, a: usize, b: usize, u: &[Complex64; 16]) {
    let rows = mat.rows();
    let cols = mat.cols();
    debug_assert!(a != b);
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let ma = 1usize << a;
    let mb = 1usize << b;
    let data = mat.data_mut();
    for row in 0..rows {
        let off = row * cols;
        for j in 0..cols / 4 {
            let base = insert_zero_bit(insert_zero_bit(j, lo), hi);
            let idx = [base, base | mb, base | ma, base | ma | mb];
            let amp = [
                data[off + idx[0]],
                data[off + idx[1]],
                data[off + idx[2]],
                data[off + idx[3]],
            ];
            for (ci, &col_i) in idx.iter().enumerate() {
                let mut acc = Complex64::ZERO;
                for (ki, &amp_k) in amp.iter().enumerate() {
                    acc = acc.mul_add(u[ci * 4 + ki].conj(), amp_k);
                }
                data[off + col_i] = acc;
            }
        }
    }
}

/// Out-of-place variant of [`apply_1q_mat_left`]: `dst <- U_embed * src`,
/// leaving `src` untouched. Shapes must match. Used by the allocation-free
/// instantiation workspace, where prefix products must stay readable while
/// the next product is formed.
pub fn apply_1q_mat_left_into(dst: &mut Matrix, src: &Matrix, q: usize, u: &[Complex64; 4]) {
    let rows = src.rows();
    let cols = src.cols();
    debug_assert_eq!((dst.rows(), dst.cols()), (rows, cols));
    let mask = 1usize << q;
    let s = src.data();
    let d = dst.data_mut();
    for i in 0..rows / 2 {
        let r0 = insert_zero_bit(i, q) * cols;
        let r1 = r0 + mask * cols;
        for j in 0..cols {
            let a = s[r0 + j];
            let b = s[r1 + j];
            d[r0 + j] = a * u[0] + b * u[1];
            d[r1 + j] = a * u[2] + b * u[3];
        }
    }
}

/// Out-of-place variant of [`apply_2q_mat_left`]: `dst <- U_embed * src`.
pub fn apply_2q_mat_left_into(
    dst: &mut Matrix,
    src: &Matrix,
    a: usize,
    b: usize,
    u: &[Complex64; 16],
) {
    let rows = src.rows();
    let cols = src.cols();
    debug_assert_eq!((dst.rows(), dst.cols()), (rows, cols));
    debug_assert!(a != b);
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let ma = 1usize << a;
    let mb = 1usize << b;
    let s = src.data();
    let d = dst.data_mut();
    for i in 0..rows / 4 {
        let base = insert_zero_bit(insert_zero_bit(i, lo), hi);
        let r = [
            base * cols,
            (base | mb) * cols,
            (base | ma) * cols,
            (base | ma | mb) * cols,
        ];
        for j in 0..cols {
            let amp = [s[r[0] + j], s[r[1] + j], s[r[2] + j], s[r[3] + j]];
            for (ri, &row_off) in r.iter().enumerate() {
                let mut acc = Complex64::ZERO;
                for (ci, &amp_c) in amp.iter().enumerate() {
                    acc = acc.mul_add(u[ri * 4 + ci], amp_c);
                }
                d[row_off + j] = acc;
            }
        }
    }
}

/// Out-of-place variant of [`apply_1q_mat_right_dag`]:
/// `dst <- src * U_embed^dagger`.
pub fn apply_1q_mat_right_dag_into(dst: &mut Matrix, src: &Matrix, q: usize, u: &[Complex64; 4]) {
    let rows = src.rows();
    let cols = src.cols();
    debug_assert_eq!((dst.rows(), dst.cols()), (rows, cols));
    let mask = 1usize << q;
    let s = src.data();
    let d = dst.data_mut();
    for row in 0..rows {
        let off = row * cols;
        for j in 0..cols / 2 {
            let j0 = insert_zero_bit(j, q);
            let j1 = j0 | mask;
            let a = s[off + j0];
            let b = s[off + j1];
            d[off + j0] = a * u[0].conj() + b * u[1].conj();
            d[off + j1] = a * u[2].conj() + b * u[3].conj();
        }
    }
}

/// Out-of-place variant of [`apply_2q_mat_right_dag`]:
/// `dst <- src * U_embed^dagger`.
pub fn apply_2q_mat_right_dag_into(
    dst: &mut Matrix,
    src: &Matrix,
    a: usize,
    b: usize,
    u: &[Complex64; 16],
) {
    let rows = src.rows();
    let cols = src.cols();
    debug_assert_eq!((dst.rows(), dst.cols()), (rows, cols));
    debug_assert!(a != b);
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let ma = 1usize << a;
    let mb = 1usize << b;
    let s = src.data();
    let d = dst.data_mut();
    for row in 0..rows {
        let off = row * cols;
        for j in 0..cols / 4 {
            let base = insert_zero_bit(insert_zero_bit(j, lo), hi);
            let idx = [base, base | mb, base | ma, base | ma | mb];
            let amp = [
                s[off + idx[0]],
                s[off + idx[1]],
                s[off + idx[2]],
                s[off + idx[3]],
            ];
            for (ci, &col_i) in idx.iter().enumerate() {
                let mut acc = Complex64::ZERO;
                for (ki, &amp_k) in amp.iter().enumerate() {
                    acc = acc.mul_add(u[ci * 4 + ki].conj(), amp_k);
                }
                d[off + col_i] = acc;
            }
        }
    }
}

/// Accumulates the conjugation of `src` by an embedded one-qubit gate:
/// `dst += U_embed * src * U_embed^dagger`, with no intermediate matrix.
/// This is one Kraus term `K rho K^dagger` of a channel sum — the 2x2
/// sub-block `T = u S u^dagger` is formed in registers per (row-pair,
/// column-pair) and added straight into `dst`.
pub fn accum_conj_1q(dst: &mut Matrix, src: &Matrix, q: usize, u: &[Complex64; 4]) {
    let rows = src.rows();
    let cols = src.cols();
    debug_assert_eq!((dst.rows(), dst.cols()), (rows, cols));
    let mask = 1usize << q;
    let s = src.data();
    let d = dst.data_mut();
    for i in 0..rows / 2 {
        let r0 = insert_zero_bit(i, q);
        let r1 = r0 | mask;
        for j in 0..cols / 2 {
            let c0 = insert_zero_bit(j, q);
            let c1 = c0 | mask;
            let s00 = s[r0 * cols + c0];
            let s01 = s[r0 * cols + c1];
            let s10 = s[r1 * cols + c0];
            let s11 = s[r1 * cols + c1];
            // A = u * S
            let a00 = u[0] * s00 + u[1] * s10;
            let a01 = u[0] * s01 + u[1] * s11;
            let a10 = u[2] * s00 + u[3] * s10;
            let a11 = u[2] * s01 + u[3] * s11;
            // dst += A * u^dagger   ((u^dag)[k][c] = conj(u[c*2+k]))
            d[r0 * cols + c0] += a00 * u[0].conj() + a01 * u[1].conj();
            d[r0 * cols + c1] += a00 * u[2].conj() + a01 * u[3].conj();
            d[r1 * cols + c0] += a10 * u[0].conj() + a11 * u[1].conj();
            d[r1 * cols + c1] += a10 * u[2].conj() + a11 * u[3].conj();
        }
    }
}

/// Accumulates the conjugation of `src` by an embedded two-qubit gate:
/// `dst += U_embed * src * U_embed^dagger` (one 4x4 Kraus term of a channel).
pub fn accum_conj_2q(dst: &mut Matrix, src: &Matrix, a: usize, b: usize, u: &[Complex64; 16]) {
    let rows = src.rows();
    let cols = src.cols();
    debug_assert_eq!((dst.rows(), dst.cols()), (rows, cols));
    debug_assert!(a != b);
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let ma = 1usize << a;
    let mb = 1usize << b;
    let s = src.data();
    let d = dst.data_mut();
    for i in 0..rows / 4 {
        let rbase = insert_zero_bit(insert_zero_bit(i, lo), hi);
        let ridx = [rbase, rbase | mb, rbase | ma, rbase | ma | mb];
        for j in 0..cols / 4 {
            let cbase = insert_zero_bit(insert_zero_bit(j, lo), hi);
            let cidx = [cbase, cbase | mb, cbase | ma, cbase | ma | mb];
            let mut sblk = [[Complex64::ZERO; 4]; 4];
            for (r, &ri) in ridx.iter().enumerate() {
                for (c, &ci) in cidx.iter().enumerate() {
                    sblk[r][c] = s[ri * cols + ci];
                }
            }
            // A = u * S
            let mut ablk = [[Complex64::ZERO; 4]; 4];
            for (r, arow) in ablk.iter_mut().enumerate() {
                for (c, aval) in arow.iter_mut().enumerate() {
                    let mut acc = Complex64::ZERO;
                    for (k, srow) in sblk.iter().enumerate() {
                        acc = acc.mul_add(u[r * 4 + k], srow[c]);
                    }
                    *aval = acc;
                }
            }
            // dst += A * u^dagger
            for (r, &ri) in ridx.iter().enumerate() {
                for (c, &ci) in cidx.iter().enumerate() {
                    let mut acc = Complex64::ZERO;
                    for (k, &aval) in ablk[r].iter().enumerate() {
                        acc = acc.mul_add(u[c * 4 + k].conj(), aval);
                    }
                    d[ri * cols + ci] += acc;
                }
            }
        }
    }
}

/// Builds the full `2^n x 2^n` embedding of a one-qubit gate (test oracle and
/// occasional cold-path use; hot paths use the `apply_*` kernels instead).
pub fn embed_1q(n: usize, q: usize, u: &[Complex64; 4]) -> Matrix {
    let mut m = Matrix::identity(1 << n);
    apply_1q_mat_left(&mut m, q, u);
    m
}

/// Builds the full `2^n x 2^n` embedding of a two-qubit gate.
pub fn embed_2q(n: usize, a: usize, b: usize, u: &[Complex64; 16]) -> Matrix {
    let mut m = Matrix::identity(1 << n);
    apply_2q_mat_left(&mut m, a, b, u);
    m
}

/// Copies a 2x2 [`Matrix`] into the fixed-size array the kernels take.
pub fn mat2_to_array(m: &Matrix) -> [Complex64; 4] {
    assert_eq!((m.rows(), m.cols()), (2, 2), "expected 2x2 matrix");
    let d = m.data();
    [d[0], d[1], d[2], d[3]]
}

/// Copies a 4x4 [`Matrix`] into the fixed-size array the kernels take.
pub fn mat4_to_array(m: &Matrix) -> [Complex64; 16] {
    assert_eq!((m.rows(), m.cols()), (4, 4), "expected 4x4 matrix");
    let mut out = [Complex64::ZERO; 16];
    out.copy_from_slice(m.data());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::matrix::{pauli_x, pauli_y, pauli_z};

    fn h_gate() -> [Complex64; 4] {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        [c64(s, 0.0), c64(s, 0.0), c64(s, 0.0), c64(-s, 0.0)]
    }

    fn cnot_gate() -> [Complex64; 16] {
        // control = high bit of small index
        let mut u = [Complex64::ZERO; 16];
        u[0] = Complex64::ONE; // 00 -> 00
        u[5] = Complex64::ONE; // 01 -> 01
        u[11] = Complex64::ONE; // 10 -> 11
        u[14] = Complex64::ONE; // 11 -> 10
        u
    }

    /// Reference embedding via explicit kron products, for cross-checking.
    fn kron_embed_1q(n: usize, q: usize, u: &Matrix) -> Matrix {
        // basis index bit q: kron ordering is qubit n-1 (x) ... (x) qubit 0
        let mut m = Matrix::identity(1);
        for k in (0..n).rev() {
            let f = if k == q {
                u.clone()
            } else {
                Matrix::identity(2)
            };
            m = m.kron(&f);
        }
        m
    }

    #[test]
    fn insert_zero_bit_enumerates_correctly() {
        // for q=1, i in 0..4 should give indices with bit 1 clear: 0,1,4,5
        let got: Vec<usize> = (0..4).map(|i| insert_zero_bit(i, 1)).collect();
        assert_eq!(got, vec![0, 1, 4, 5]);
    }

    #[test]
    fn embed_1q_matches_kron_reference() {
        for n in 1..=4 {
            for q in 0..n {
                for p in [pauli_x(), pauli_y(), pauli_z()] {
                    let fast = embed_1q(n, q, &mat2_to_array(&p));
                    let slow = kron_embed_1q(n, q, &p);
                    assert!(fast.approx_eq(&slow, 1e-13), "embed mismatch n={n} q={q}");
                }
            }
        }
    }

    #[test]
    fn statevector_h_creates_superposition() {
        let mut state = vec![Complex64::ZERO; 4];
        state[0] = Complex64::ONE;
        apply_1q_vec(&mut state, 0, &h_gate());
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((state[0] - c64(s, 0.0)).abs() < 1e-14);
        assert!((state[1] - c64(s, 0.0)).abs() < 1e-14);
        assert!(state[2].abs() < 1e-14);
    }

    #[test]
    fn cnot_truth_table_on_vec() {
        // control = qubit 1, target = qubit 0; gate on (a=1, b=0)
        for (inp, expect) in [
            (0b00usize, 0b00usize),
            (0b01, 0b01),
            (0b10, 0b11),
            (0b11, 0b10),
        ] {
            let mut state = vec![Complex64::ZERO; 4];
            state[inp] = Complex64::ONE;
            apply_2q_vec(&mut state, 1, 0, &cnot_gate());
            assert!(
                (state[expect] - Complex64::ONE).abs() < 1e-14,
                "CNOT |{inp:02b}> should be |{expect:02b}>, got {state:?}"
            );
        }
    }

    #[test]
    fn cnot_reversed_qubit_order() {
        // gate on (a=0, b=1): control = qubit 0, target = qubit 1
        for (inp, expect) in [
            (0b00usize, 0b00usize),
            (0b01, 0b11),
            (0b10, 0b10),
            (0b11, 0b01),
        ] {
            let mut state = vec![Complex64::ZERO; 4];
            state[inp] = Complex64::ONE;
            apply_2q_vec(&mut state, 0, 1, &cnot_gate());
            assert!(
                (state[expect] - Complex64::ONE).abs() < 1e-14,
                "CNOT(0->1) |{inp:02b}> should be |{expect:02b}>"
            );
        }
    }

    #[test]
    fn vec_and_mat_left_agree() {
        // applying a gate to the identity's columns equals the embedded matrix;
        // applying to a vector equals matvec with the embedding.
        let n = 3;
        let u = h_gate();
        let emb = embed_1q(n, 2, &u);
        let mut state: Vec<Complex64> = (0..8)
            .map(|i| c64(i as f64 * 0.1, -(i as f64) * 0.05))
            .collect();
        let expect = emb.matvec(&state);
        apply_1q_vec(&mut state, 2, &u);
        for (a, b) in state.iter().zip(&expect) {
            assert!((*a - *b).abs() < 1e-13);
        }
    }

    #[test]
    fn two_qubit_embed_is_unitary_and_matches_matvec() {
        let n = 4;
        let u = cnot_gate();
        for (a, b) in [(0usize, 3usize), (3, 0), (1, 2), (2, 1)] {
            let emb = embed_2q(n, a, b, &u);
            assert!(emb.is_unitary(1e-13), "embedding not unitary for ({a},{b})");
            let mut state: Vec<Complex64> = (0..16)
                .map(|i| c64((i as f64).sin(), (i as f64).cos()))
                .collect();
            let expect = emb.matvec(&state);
            apply_2q_vec(&mut state, a, b, &u);
            for (x, y) in state.iter().zip(&expect) {
                assert!((*x - *y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn right_dag_conjugation_matches_explicit() {
        // rho' = U rho U^dag computed with kernels vs explicit matmul
        let n = 2;
        let u = h_gate();
        let q = 1;
        let mut rho = Matrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                rho[(i, j)] = c64((i + j) as f64 * 0.1, (i as f64 - j as f64) * 0.2);
            }
        }
        let emb = embed_1q(n, q, &u);
        let expect = emb.matmul(&rho).matmul(&emb.adjoint());
        apply_1q_mat_left(&mut rho, q, &u);
        apply_1q_mat_right_dag(&mut rho, q, &u);
        assert!(rho.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn right_dag_2q_conjugation_matches_explicit() {
        let n = 3;
        let u = cnot_gate();
        let (a, b) = (2usize, 0usize);
        let mut rho = Matrix::zeros(8, 8);
        for i in 0..8 {
            for j in 0..8 {
                rho[(i, j)] = c64((i * 7 + j) as f64 * 0.03, (j * 5 + i) as f64 * 0.02);
            }
        }
        let emb = embed_2q(n, a, b, &u);
        let expect = emb.matmul(&rho).matmul(&emb.adjoint());
        apply_2q_mat_left(&mut rho, a, b, &u);
        apply_2q_mat_right_dag(&mut rho, a, b, &u);
        assert!(rho.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn into_variants_match_in_place() {
        let u1 = h_gate();
        let u2 = cnot_gate();
        let mut src = Matrix::zeros(8, 8);
        for i in 0..8 {
            for j in 0..8 {
                src[(i, j)] = c64((i * 3 + j) as f64 * 0.07, (j * 11 + i) as f64 * 0.013);
            }
        }
        for q in 0..3 {
            let mut expect = src.clone();
            apply_1q_mat_left(&mut expect, q, &u1);
            let mut dst = Matrix::zeros(8, 8);
            apply_1q_mat_left_into(&mut dst, &src, q, &u1);
            assert!(dst.approx_eq(&expect, 1e-13), "1q left_into q={q}");

            let mut expect = src.clone();
            apply_1q_mat_right_dag(&mut expect, q, &u1);
            let mut dst = Matrix::zeros(8, 8);
            apply_1q_mat_right_dag_into(&mut dst, &src, q, &u1);
            assert!(dst.approx_eq(&expect, 1e-13), "1q right_dag_into q={q}");
        }
        for (a, b) in [(0usize, 1usize), (2, 0), (1, 2)] {
            let mut expect = src.clone();
            apply_2q_mat_left(&mut expect, a, b, &u2);
            let mut dst = Matrix::zeros(8, 8);
            apply_2q_mat_left_into(&mut dst, &src, a, b, &u2);
            assert!(dst.approx_eq(&expect, 1e-13), "2q left_into ({a},{b})");

            let mut expect = src.clone();
            apply_2q_mat_right_dag(&mut expect, a, b, &u2);
            let mut dst = Matrix::zeros(8, 8);
            apply_2q_mat_right_dag_into(&mut dst, &src, a, b, &u2);
            assert!(dst.approx_eq(&expect, 1e-13), "2q right_dag_into ({a},{b})");
        }
    }

    #[test]
    fn accum_conj_matches_explicit_kraus_term() {
        // dst += U src U^dag against the explicit embed-and-matmul oracle,
        // on top of a nonzero dst to exercise the accumulation
        let mut src = Matrix::zeros(8, 8);
        for i in 0..8 {
            for j in 0..8 {
                src[(i, j)] = c64((i + 2 * j) as f64 * 0.05, (i as f64 - j as f64) * 0.04);
            }
        }
        let seed = Matrix::identity(8);

        let u1 = h_gate();
        for q in 0..3 {
            let emb = embed_1q(3, q, &u1);
            let mut expect = seed.clone();
            expect.axpy(Complex64::ONE, &emb.matmul(&src).matmul(&emb.adjoint()));
            let mut dst = seed.clone();
            accum_conj_1q(&mut dst, &src, q, &u1);
            assert!(dst.approx_eq(&expect, 1e-12), "accum_conj_1q q={q}");
        }

        let u2 = cnot_gate();
        for (a, b) in [(0usize, 2usize), (2, 1), (1, 0)] {
            let emb = embed_2q(3, a, b, &u2);
            let mut expect = seed.clone();
            expect.axpy(Complex64::ONE, &emb.matmul(&src).matmul(&emb.adjoint()));
            let mut dst = seed.clone();
            accum_conj_2q(&mut dst, &src, a, b, &u2);
            assert!(dst.approx_eq(&expect, 1e-12), "accum_conj_2q ({a},{b})");
        }
    }

    #[test]
    fn norm_sqr_kernels_match_apply_then_sum() {
        let u1 = h_gate();
        let u2 = cnot_gate();
        let state: Vec<Complex64> = (0..16)
            .map(|i| c64((i as f64 * 0.31).sin(), (i as f64 * 0.17).cos()))
            .collect();
        for q in 0..4 {
            let mut applied = state.clone();
            apply_1q_vec(&mut applied, q, &u1);
            let expect: f64 = applied.iter().map(|z| z.norm_sqr()).sum();
            let got = norm_sqr_1q(&state, q, &u1);
            assert!((got - expect).abs() < 1e-12, "norm_sqr_1q q={q}");
        }
        for (a, b) in [(0usize, 1usize), (3, 0), (1, 3), (2, 1)] {
            let mut applied = state.clone();
            apply_2q_vec(&mut applied, a, b, &u2);
            let expect: f64 = applied.iter().map(|z| z.norm_sqr()).sum();
            let got = norm_sqr_2q(&state, a, b, &u2);
            assert!((got - expect).abs() < 1e-12, "norm_sqr_2q ({a},{b})");
        }
    }

    #[test]
    fn blocked_kernels_are_bit_identical_to_plain() {
        // the trajectory backend relies on blocked == plain *exactly* (not
        // just approximately): both perform the same arithmetic per disjoint
        // index group, only the group iteration order differs
        let u1 = h_gate();
        let u2 = cnot_gate();
        let base: Vec<Complex64> = (0..32)
            .map(|i| c64((i as f64 * 0.13).sin(), (i as f64 * 0.29).cos()))
            .collect();
        for q in 0..5 {
            let mut plain = base.clone();
            let mut blocked = base.clone();
            apply_1q_vec(&mut plain, q, &u1);
            apply_1q_vec_blocked(&mut blocked, q, &u1);
            assert_eq!(plain, blocked, "1q blocked mismatch q={q}");
        }
        for (a, b) in [(0usize, 1usize), (4, 0), (2, 3), (3, 1)] {
            let mut plain = base.clone();
            let mut blocked = base.clone();
            apply_2q_vec(&mut plain, a, b, &u2);
            apply_2q_vec_blocked(&mut blocked, a, b, &u2);
            assert_eq!(plain, blocked, "2q blocked mismatch ({a},{b})");
        }
    }

    #[test]
    fn kernels_preserve_norm() {
        let mut state = vec![Complex64::ZERO; 8];
        state[0] = c64(0.6, 0.0);
        state[5] = c64(0.0, 0.8);
        apply_1q_vec(&mut state, 1, &h_gate());
        apply_2q_vec(&mut state, 0, 2, &cnot_gate());
        let norm: f64 = state.iter().map(|z| z.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-13);
    }
}
