//! Data-parallel mapping helpers.
//!
//! The paper pipeline fans out over *populations* of circuits, not over
//! individual amplitudes, so the only primitive the workspace needs is an
//! order-preserving parallel map (plus a two-way `join`). By default these
//! run sequentially so the workspace builds with zero dependencies; enabling
//! the `parallel` feature fans the same calls out over `std::thread::scope`
//! with one chunk per available core. Results are identical either way —
//! every worker owns a disjoint slice of the output.
//!
//! ## Capping parallelism
//!
//! The default worker count is `std::thread::available_parallelism()` (the
//! full machine). On shared machines — or inside the `qaprox serve` worker
//! pool, where several jobs already run side by side — cap it with either:
//!
//! * the `QAPROX_THREADS` environment variable (`QAPROX_THREADS=2`), or
//! * [`set_max_threads`] (what the CLI's `--jobs N` flag calls).
//!
//! A programmatic [`set_max_threads`] override wins over the environment;
//! `set_max_threads(0)` restores the env-then-auto default. Caps only shape
//! thread counts under the `parallel` feature; sequential builds ignore them.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread cap: 0 = no override (env, then auto).
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Caps the number of worker threads every subsequent `par_map*` call may
/// spawn. `0` removes the cap (falling back to `QAPROX_THREADS`, then to
/// `available_parallelism`).
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::Relaxed);
}

/// The effective worker-thread budget: the [`set_max_threads`] override if
/// set, else `QAPROX_THREADS` if parseable and nonzero, else
/// `available_parallelism` (minimum 1).
pub fn max_threads() -> usize {
    let forced = MAX_THREADS.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    if let Ok(raw) = std::env::var("QAPROX_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Maps `f` over `items`, preserving order.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// Maps `f(index, item)` over `items`, preserving order.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_range(items.len(), |i| f(i, &items[i]))
}

/// Maps `f` over `0..n`, preserving order.
#[cfg(not(feature = "parallel"))]
pub fn par_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    (0..n).map(f).collect()
}

/// Maps `f` over `0..n` across worker threads, preserving order.
#[cfg(feature = "parallel")]
pub fn par_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = max_threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, slot_chunk) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = w * chunk;
                for (off, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(base + off));
                }
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect()
}

/// Runs two closures (concurrently under the `parallel` feature) and returns
/// both results.
#[cfg(not(feature = "parallel"))]
pub fn join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    FA: FnOnce() -> A,
    FB: FnOnce() -> B,
{
    (fa(), fb())
}

/// Runs two closures concurrently and returns both results.
#[cfg(feature = "parallel")]
pub fn join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(fb);
        let a = fa();
        (a, hb.join().expect("join worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..97).collect();
        let squares = par_map(&items, |&x| x * x);
        for (i, s) in squares.iter().enumerate() {
            assert_eq!(*s, i * i);
        }
    }

    #[test]
    fn par_map_indexed_passes_matching_index() {
        let items = vec!["a", "b", "c"];
        let tagged = par_map_indexed(&items, |i, s| format!("{i}{s}"));
        assert_eq!(tagged, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn par_map_range_handles_empty_and_single() {
        assert!(par_map_range(0, |i| i).is_empty());
        assert_eq!(par_map_range(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn max_threads_override_wins_and_resets() {
        // NOTE: MAX_THREADS is process-global; this test restores it.
        set_max_threads(3);
        assert_eq!(max_threads(), 3);
        // results stay correct under a 1-thread cap
        set_max_threads(1);
        let items: Vec<usize> = (0..31).collect();
        let doubled = par_map(&items, |&x| 2 * x);
        assert_eq!(doubled, items.iter().map(|&x| 2 * x).collect::<Vec<_>>());
        set_max_threads(0);
        assert!(max_threads() >= 1);
    }
}
