//! Data-parallel mapping helpers.
//!
//! The paper pipeline fans out over *populations* of circuits, not over
//! individual amplitudes, so the only primitive the workspace needs is an
//! order-preserving parallel map (plus a two-way `join`). By default these
//! run sequentially so the workspace builds with zero dependencies; enabling
//! the `parallel` feature fans the same calls out over `std::thread::scope`
//! with one chunk per available core. Results are identical either way —
//! every worker owns a disjoint slice of the output.
//!
//! ## Capping parallelism
//!
//! The default worker count is `std::thread::available_parallelism()` (the
//! full machine). On shared machines — or inside the `qaprox serve` worker
//! pool, where several jobs already run side by side — cap it with either:
//!
//! * the `QAPROX_JOBS` environment variable (`QAPROX_JOBS=2`; the legacy
//!   `QAPROX_THREADS` spelling is still honoured when `QAPROX_JOBS` is
//!   absent), or
//! * [`set_max_threads`] (what the CLI's global `--jobs N` flag calls).
//!
//! Precedence: `--jobs` / [`set_max_threads`] > `QAPROX_JOBS` >
//! `QAPROX_THREADS` > `available_parallelism`. `set_max_threads(0)` restores
//! the env-then-auto default. Caps only shape thread counts under the
//! `parallel` feature; sequential builds ignore them.
//!
//! ## Nested parallelism
//!
//! `par_map*` calls may nest (the synthesis search parallelizes candidate
//! waves, and each candidate's multistart optimizer may parallelize again).
//! To keep the total thread count at the cap instead of multiplying, each
//! worker thread inherits a *budget*: the share of [`max_threads`] its parent
//! wave did not consume. [`thread_budget`] reports the budget of the calling
//! thread; a nested `par_map*` spawns at most that many workers, each with a
//! further-divided budget. The top level's budget is [`max_threads`] itself.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread cap: 0 = no override (env, then auto).
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

#[cfg(feature = "parallel")]
thread_local! {
    /// Per-thread nested-parallelism budget; 0 = top level (use [`max_threads`]).
    static THREAD_BUDGET: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Caps the number of worker threads every subsequent `par_map*` call may
/// spawn. `0` removes the cap (falling back to `QAPROX_JOBS`, then
/// `QAPROX_THREADS`, then `available_parallelism`).
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::Relaxed);
}

/// The effective worker-thread budget: the [`set_max_threads`] override if
/// set, else `QAPROX_JOBS` / `QAPROX_THREADS` if parseable and nonzero, else
/// `available_parallelism` (minimum 1).
pub fn max_threads() -> usize {
    let forced = MAX_THREADS.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    for var in ["QAPROX_JOBS", "QAPROX_THREADS"] {
        if let Ok(raw) = std::env::var(var) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The number of worker threads a `par_map*` call issued from the *current*
/// thread may use: [`max_threads`] at the top level, or the remaining share
/// of that cap inside a worker spawned by an enclosing `par_map*` wave.
/// Layers that would parallelize redundantly (e.g. multistart optimization
/// under an already-saturating search wave) consult this to stay serial.
pub fn thread_budget() -> usize {
    #[cfg(feature = "parallel")]
    {
        let local = THREAD_BUDGET.with(|b| b.get());
        if local != 0 {
            return local;
        }
        max_threads()
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Runs `f` with the calling thread's budget set to `n` (minimum 1),
/// restoring the previous budget afterwards. Thread-pool hosts (the serve
/// scheduler's worker loop) wrap each job in this so `workers` concurrent
/// jobs share [`max_threads`] instead of each claiming the whole cap.
pub fn with_thread_budget<R>(n: usize, f: impl FnOnce() -> R) -> R {
    #[cfg(feature = "parallel")]
    {
        let prev = THREAD_BUDGET.with(|b| b.replace(n.max(1)));
        let out = f();
        THREAD_BUDGET.with(|b| b.set(prev));
        out
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = n;
        f()
    }
}

/// Maps `f` over `items`, preserving order.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// Maps `f(index, item)` over `items`, preserving order.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_range(items.len(), |i| f(i, &items[i]))
}

/// Maps `f` over `0..n`, preserving order.
#[cfg(not(feature = "parallel"))]
pub fn par_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    (0..n).map(f).collect()
}

/// Maps `f` over `0..n` across worker threads, preserving order.
#[cfg(feature = "parallel")]
pub fn par_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let budget = thread_budget();
    let workers = budget.min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    // Each worker thread inherits an equal share of the unused budget so
    // nested par_map* calls divide the cap instead of multiplying it.
    let inner_budget = (budget / workers).max(1);
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, slot_chunk) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                THREAD_BUDGET.with(|b| b.set(inner_budget));
                let base = w * chunk;
                for (off, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(base + off));
                }
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect()
}

/// Runs two closures (concurrently under the `parallel` feature) and returns
/// both results.
#[cfg(not(feature = "parallel"))]
pub fn join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    FA: FnOnce() -> A,
    FB: FnOnce() -> B,
{
    (fa(), fb())
}

/// Runs two closures concurrently and returns both results.
#[cfg(feature = "parallel")]
pub fn join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    let budget = thread_budget();
    let half = (budget / 2).max(1);
    std::thread::scope(|scope| {
        let hb = scope.spawn(move || {
            THREAD_BUDGET.with(|b| b.set(half));
            fb()
        });
        // run `fa` on the current thread under the other half of the budget
        let prev = THREAD_BUDGET.with(|b| b.replace((budget - budget / 2).max(1)));
        let a = fa();
        THREAD_BUDGET.with(|b| b.set(prev));
        (a, hb.join().expect("join worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..97).collect();
        let squares = par_map(&items, |&x| x * x);
        for (i, s) in squares.iter().enumerate() {
            assert_eq!(*s, i * i);
        }
    }

    #[test]
    fn par_map_indexed_passes_matching_index() {
        let items = vec!["a", "b", "c"];
        let tagged = par_map_indexed(&items, |i, s| format!("{i}{s}"));
        assert_eq!(tagged, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn par_map_range_handles_empty_and_single() {
        assert!(par_map_range(0, |i| i).is_empty());
        assert_eq!(par_map_range(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn thread_budget_is_positive_and_capped() {
        assert!(thread_budget() >= 1);
        #[cfg(feature = "parallel")]
        {
            // at the top level the budget equals the process-wide cap
            assert_eq!(thread_budget(), max_threads());
            // inside a wave, each worker sees a divided budget
            set_max_threads(4);
            let budgets = par_map_range(4, |_| thread_budget());
            for b in budgets {
                assert!((1..=4).contains(&b));
            }
            set_max_threads(0);
        }
    }

    #[test]
    fn max_threads_override_wins_and_resets() {
        // NOTE: MAX_THREADS is process-global; this test restores it.
        set_max_threads(3);
        assert_eq!(max_threads(), 3);
        // results stay correct under a 1-thread cap
        set_max_threads(1);
        let items: Vec<usize> = (0..31).collect();
        let doubled = par_map(&items, |&x| 2 * x);
        assert_eq!(doubled, items.iter().map(|&x| 2 * x).collect::<Vec<_>>());
        set_max_threads(0);
        assert!(max_threads() >= 1);
    }
}
