//! One-qubit unitary decompositions.
//!
//! Every 2x2 unitary factors as `U = e^{i alpha} U3(theta, phi, lambda)` —
//! the ZYZ Euler decomposition in IBM's U3 convention. The transpiler uses
//! this to fuse runs of one-qubit gates back into a single U3, and synthesis
//! uses it to express optimized blocks in the native basis.

use crate::complex::{c64, Complex64};
use crate::matrix::Matrix;

/// Euler angles of a one-qubit unitary: `U = e^{i alpha} U3(theta, phi, lambda)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zyz {
    /// Polar rotation angle.
    pub theta: f64,
    /// First phase angle.
    pub phi: f64,
    /// Second phase angle.
    pub lambda: f64,
    /// Global phase.
    pub alpha: f64,
}

/// Builds the U3 gate matrix in IBM's convention:
///
/// ```text
/// U3(t, p, l) = [ cos(t/2)            -e^{il} sin(t/2)      ]
///               [ e^{ip} sin(t/2)      e^{i(p+l)} cos(t/2)  ]
/// ```
pub fn u3_matrix(theta: f64, phi: f64, lambda: f64) -> Matrix {
    let (ct, st) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    Matrix::from_rows(&[
        &[c64(ct, 0.0), -Complex64::cis(lambda) * st],
        &[Complex64::cis(phi) * st, Complex64::cis(phi + lambda) * ct],
    ])
}

/// [`u3_matrix`] as the fixed-size row-major array the gate kernels take —
/// no heap allocation, for the synthesis hot path.
pub fn u3_array(theta: f64, phi: f64, lambda: f64) -> [Complex64; 4] {
    let (ct, st) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    [
        c64(ct, 0.0),
        -Complex64::cis(lambda) * st,
        Complex64::cis(phi) * st,
        Complex64::cis(phi + lambda) * ct,
    ]
}

/// Decomposes a 2x2 unitary into ZYZ Euler angles plus global phase.
///
/// # Panics
/// Panics if `u` is not 2x2. The result is only meaningful for (near-)unitary
/// input; use [`crate::polar::polar_unitary`] first if needed.
pub fn zyz_decompose(u: &Matrix) -> Zyz {
    assert_eq!((u.rows(), u.cols()), (2, 2), "zyz_decompose expects 2x2");
    let u00 = u[(0, 0)];
    let u01 = u[(0, 1)];
    let u10 = u[(1, 0)];
    let u11 = u[(1, 1)];

    let cos_half = u00.abs();
    let sin_half = u10.abs();
    let theta = 2.0 * sin_half.atan2(cos_half);

    const EPS: f64 = 1e-12;
    let (alpha, phi, lambda);
    if sin_half < EPS {
        // Diagonal-dominant: theta ~ 0, phases split arbitrarily -> phi = 0.
        alpha = u00.arg();
        phi = 0.0;
        lambda = u11.arg() - alpha;
    } else if cos_half < EPS {
        // Anti-diagonal: theta ~ pi, choose lambda = 0.
        lambda = 0.0;
        alpha = (-u01).arg();
        phi = u10.arg() - alpha;
    } else {
        alpha = u00.arg();
        phi = u10.arg() - alpha;
        lambda = (-u01).arg() - alpha;
    }
    Zyz {
        theta,
        phi,
        lambda,
        alpha,
    }
}

impl Zyz {
    /// Reconstructs the full 2x2 unitary `e^{i alpha} U3(theta, phi, lambda)`.
    pub fn to_matrix(&self) -> Matrix {
        u3_matrix(self.theta, self.phi, self.lambda).scale(Complex64::cis(self.alpha))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{pauli_x, pauli_y, pauli_z};
    use crate::random::haar_unitary;
    use crate::random::SplitMix64 as StdRng;

    fn assert_round_trip(u: &Matrix, tol: f64) {
        let zyz = zyz_decompose(u);
        let back = zyz.to_matrix();
        assert!(
            back.approx_eq(u, tol),
            "round trip failed: {zyz:?}\noriginal {u:?}\nreconstructed {back:?}"
        );
    }

    #[test]
    fn u3_matrix_is_unitary() {
        for &(t, p, l) in &[
            (0.0, 0.0, 0.0),
            (1.0, 2.0, 3.0),
            (std::f64::consts::PI, -0.5, 0.7),
        ] {
            assert!(u3_matrix(t, p, l).is_unitary(1e-13));
        }
    }

    #[test]
    fn identity_decomposes_trivially() {
        let zyz = zyz_decompose(&Matrix::identity(2));
        assert!(zyz.theta.abs() < 1e-12);
        assert_round_trip(&Matrix::identity(2), 1e-12);
    }

    #[test]
    fn paulis_round_trip() {
        assert_round_trip(&pauli_x(), 1e-12);
        assert_round_trip(&pauli_y(), 1e-12);
        assert_round_trip(&pauli_z(), 1e-12);
    }

    #[test]
    fn hadamard_round_trips_with_expected_theta() {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let h = Matrix::from_rows(&[&[c64(s, 0.0), c64(s, 0.0)], &[c64(s, 0.0), c64(-s, 0.0)]]);
        let zyz = zyz_decompose(&h);
        assert!((zyz.theta - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert_round_trip(&h, 1e-12);
    }

    #[test]
    fn named_u3_angles_recovered() {
        // Decompose a matrix built from known angles: reconstruction must
        // match even if the angle representation differs.
        for &(t, p, l) in &[(0.3, 1.2, -0.9), (2.8, -2.0, 0.1), (1.57, 0.0, 3.0)] {
            let u = u3_matrix(t, p, l);
            assert_round_trip(&u, 1e-12);
            let zyz = zyz_decompose(&u);
            assert!(
                (zyz.theta - t).abs() < 1e-9,
                "theta mismatch for ({t},{p},{l})"
            );
        }
    }

    #[test]
    fn random_unitaries_round_trip() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let u = haar_unitary(2, &mut rng);
            assert_round_trip(&u, 1e-10);
        }
    }

    #[test]
    fn global_phase_is_captured() {
        let u = pauli_x().scale(Complex64::cis(1.234));
        let zyz = zyz_decompose(&u);
        assert_round_trip(&u, 1e-12);
        // U3 part alone differs from u by exactly the global phase
        let bare = u3_matrix(zyz.theta, zyz.phi, zyz.lambda);
        assert!(bare.scale(Complex64::cis(zyz.alpha)).approx_eq(&u, 1e-12));
    }
}
