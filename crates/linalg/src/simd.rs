//! Runtime-dispatched SIMD amplitude kernels.
//!
//! The trajectory and statevector hot loops spend nearly all their time in
//! four kernels: the blocked 1q/2q gate applications and their read-only
//! `||K psi||^2` norm sweeps. This module provides hand-vectorized AVX2
//! implementations of those four, selected **once per process** into a
//! [`KernelDispatch`] table:
//!
//! * detection is at runtime via `is_x86_feature_detected!("avx2")` (and
//!   `"fma"`), so a portable build runs everywhere and non-AVX2 hosts fall
//!   back to the scalar blocked kernels automatically;
//! * `QAPROX_SIMD=0` forces the scalar path (paired benchmarking, debugging);
//! * zero external dependencies — everything is `std::arch`.
//!
//! # Bit-identity contract
//!
//! The vector kernels perform **exactly the same IEEE-754 operations in the
//! same per-element order** as the scalar kernels, so `QAPROX_SIMD=0`
//! changes speed, never output. Two deliberate choices make that hold:
//!
//! * complex multiply-accumulate is implemented as mul / permute / addsub —
//!   never with FMA intrinsics. [`Complex64`]'s scalar `Mul`/`mul_add` are
//!   plain mul/add/sub expressions (Rust does not contract float expressions
//!   into fused ops), so a `_mm256_fmadd_pd` in the vector path would change
//!   rounding and break bit-identity. Detection still requires `fma` (it
//!   ships with every AVX2 core and keeps the dispatch conservative), but
//!   the value path avoids contraction on purpose;
//! * the norm sweeps accumulate into **four structural lanes** with a fixed
//!   final reduction tree `(acc0 + acc2) + (acc1 + acc3)`; the scalar
//!   [`kernels::norm_sqr_1q_scalar`]/[`kernels::norm_sqr_2q_scalar`] use the
//!   identical lane structure, so the sums associate identically.
//!
//! The property suite in `tests/simd_kernels.rs` pins the contract across
//! all qubit positions and block boundaries.

use crate::complex::Complex64;
use crate::kernels;
use std::sync::OnceLock;

/// The four hot amplitude kernels behind one function-pointer table.
///
/// Resolved once per process by [`kernel_dispatch`]; the public kernels in
/// [`crate::kernels`] (`apply_1q_vec_blocked`, `apply_2q_vec_blocked`,
/// `norm_sqr_1q`, `norm_sqr_2q`) route through the selected entries.
pub struct KernelDispatch {
    /// Implementation name: `"simd"` (AVX2) or `"scalar"`. Recorded by the
    /// throughput benches so published numbers say which path they measured.
    pub name: &'static str,
    /// Blocked one-qubit gate application.
    pub apply_1q_blocked: fn(&mut [Complex64], usize, &[Complex64; 4]),
    /// Blocked two-qubit gate application.
    pub apply_2q_blocked: fn(&mut [Complex64], usize, usize, &[Complex64; 16]),
    /// Read-only `||U psi||^2` for a one-qubit gate.
    pub norm_sqr_1q: fn(&[Complex64], usize, &[Complex64; 4]) -> f64,
    /// Read-only `||U psi||^2` for a two-qubit gate.
    pub norm_sqr_2q: fn(&[Complex64], usize, usize, &[Complex64; 16]) -> f64,
    /// Elementwise scale of every amplitude by a real factor (the
    /// renormalization sweep after a stochastic Kraus selection).
    pub scale: fn(&mut [Complex64], f64),
}

static SCALAR: KernelDispatch = KernelDispatch {
    name: "scalar",
    apply_1q_blocked: kernels::apply_1q_vec_blocked_scalar,
    apply_2q_blocked: kernels::apply_2q_vec_blocked_scalar,
    norm_sqr_1q: kernels::norm_sqr_1q_scalar,
    norm_sqr_2q: kernels::norm_sqr_2q_scalar,
    scale: kernels::scale_scalar,
};

#[cfg(target_arch = "x86_64")]
static SIMD: KernelDispatch = KernelDispatch {
    name: "simd",
    apply_1q_blocked: avx2::apply_1q_vec_blocked,
    apply_2q_blocked: avx2::apply_2q_vec_blocked,
    norm_sqr_1q: avx2::norm_sqr_1q,
    norm_sqr_2q: avx2::norm_sqr_2q,
    scale: avx2::scale,
};

static SELECTED: OnceLock<&'static KernelDispatch> = OnceLock::new();

/// True when the AVX2 kernels are compiled in *and* the host supports them.
/// Independent of `QAPROX_SIMD` — this reports capability, not selection.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The kernel table selected for this process.
///
/// Resolution happens on first call and is then fixed: `QAPROX_SIMD=0`
/// forces scalar; otherwise AVX2(+FMA) detection picks the SIMD table with
/// the scalar kernels as the portable fallback.
pub fn kernel_dispatch() -> &'static KernelDispatch {
    SELECTED.get_or_init(|| {
        let forced_off = std::env::var("QAPROX_SIMD").is_ok_and(|v| v.trim() == "0");
        if !forced_off && simd_available() {
            #[cfg(target_arch = "x86_64")]
            return &SIMD;
        }
        &SCALAR
    })
}

/// Name of the kernel implementation this process selected: `"simd"` or
/// `"scalar"`. Benches and smoke scripts record this next to their numbers.
pub fn selected_kernel() -> &'static str {
    kernel_dispatch().name
}

/// AVX2 implementations. Safe wrappers over `target_feature` inner kernels;
/// callers must only reach them through [`kernel_dispatch`] (which proves
/// feature support) or after checking [`simd_available`], as the test suite
/// does.
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use crate::complex::Complex64;
    use std::arch::x86_64::*;

    /// Swap (re, im) within each 128-bit half: `[a, b, c, d] -> [b, a, d, c]`.
    #[inline(always)]
    unsafe fn swap_halves(v: __m256d) -> __m256d {
        _mm256_permute_pd(v, 0b0101)
    }

    /// Complex multiply of two interleaved amplitudes `v = [z0.re, z0.im,
    /// z1.re, z1.im]` by one broadcast coefficient `w` (given as `wr` =
    /// `[w.re; 4]`, `wi` = `[w.im; 4]`). Bitwise equal to the scalar
    /// `Complex64::mul` per lane pair: `re = v.re*w.re - v.im*w.im`,
    /// `im = v.re*w.im + v.im*w.re` (addsub's even lanes subtract, odd add).
    #[inline(always)]
    unsafe fn cmul(v: __m256d, wr: __m256d, wi: __m256d) -> __m256d {
        let t1 = _mm256_mul_pd(v, wr);
        let t2 = _mm256_mul_pd(swap_halves(v), wi);
        _mm256_addsub_pd(t1, t2)
    }

    /// `acc + v * w`, bitwise equal to the scalar `Complex64::mul_add`
    /// (`acc.re + v.re*w.re - v.im*w.im` evaluated left-to-right).
    #[inline(always)]
    unsafe fn cmul_acc(acc: __m256d, v: __m256d, wr: __m256d, wi: __m256d) -> __m256d {
        let s1 = _mm256_add_pd(acc, _mm256_mul_pd(v, wr));
        let t2 = _mm256_mul_pd(swap_halves(v), wi);
        _mm256_addsub_pd(s1, t2)
    }

    /// Broadcast one coefficient into (re-splat, im-splat) vectors.
    #[inline(always)]
    unsafe fn splat(w: Complex64) -> (__m256d, __m256d) {
        (_mm256_set1_pd(w.re), _mm256_set1_pd(w.im))
    }

    /// Structural four-lane reduction `(acc0 + acc2) + (acc1 + acc3)` —
    /// mirrored exactly by the scalar norm kernels.
    #[inline(always)]
    unsafe fn reduce_lanes(acc: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(acc);
        let hi = _mm256_extractf128_pd(acc, 1);
        let s = _mm_add_pd(lo, hi); // [acc0+acc2, acc1+acc3]
        _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s))
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn apply_1q_inner(state: &mut [Complex64], q: usize, u: &[Complex64; 4]) {
        let dim = state.len();
        let mask = 1usize << q;
        let p = state.as_mut_ptr() as *mut f64;
        if mask == 1 {
            // Each vector is one (a, b) pair: [a.re, a.im, b.re, b.im].
            // Row coefficients carry u0/u1 in the low half (producing the
            // new a) and u2/u3 in the high half (producing the new b).
            let c0r = _mm256_setr_pd(u[0].re, u[0].re, u[2].re, u[2].re);
            let c0i = _mm256_setr_pd(u[0].im, u[0].im, u[2].im, u[2].im);
            let c1r = _mm256_setr_pd(u[1].re, u[1].re, u[3].re, u[3].re);
            let c1i = _mm256_setr_pd(u[1].im, u[1].im, u[3].im, u[3].im);
            let mut i = 0usize;
            while i < dim {
                let v = _mm256_loadu_pd(p.add(2 * i));
                let aa = _mm256_permute2f128_pd(v, v, 0x00);
                let bb = _mm256_permute2f128_pd(v, v, 0x11);
                let out = _mm256_add_pd(cmul(aa, c0r, c0i), cmul(bb, c1r, c1i));
                _mm256_storeu_pd(p.add(2 * i), out);
                i += 2;
            }
        } else {
            // Two contiguous streams, two amplitudes per vector.
            let (u0r, u0i) = splat(u[0]);
            let (u1r, u1i) = splat(u[1]);
            let (u2r, u2i) = splat(u[2]);
            let (u3r, u3i) = splat(u[3]);
            let stride = mask << 1;
            let mut base = 0usize;
            while base < dim {
                let mut off = 0usize;
                while off < mask {
                    let i0 = 2 * (base + off);
                    let i1 = 2 * (base + off + mask);
                    let va = _mm256_loadu_pd(p.add(i0));
                    let vb = _mm256_loadu_pd(p.add(i1));
                    let o0 = _mm256_add_pd(cmul(va, u0r, u0i), cmul(vb, u1r, u1i));
                    let o1 = _mm256_add_pd(cmul(va, u2r, u2i), cmul(vb, u3r, u3i));
                    _mm256_storeu_pd(p.add(i0), o0);
                    _mm256_storeu_pd(p.add(i1), o1);
                    off += 2;
                }
                base += stride;
            }
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn norm_sqr_1q_inner(state: &[Complex64], q: usize, u: &[Complex64; 4]) -> f64 {
        let dim = state.len();
        let mask = 1usize << q;
        let p = state.as_ptr() as *const f64;
        let mut acc = _mm256_setzero_pd();
        if mask == 1 {
            let c0r = _mm256_setr_pd(u[0].re, u[0].re, u[2].re, u[2].re);
            let c0i = _mm256_setr_pd(u[0].im, u[0].im, u[2].im, u[2].im);
            let c1r = _mm256_setr_pd(u[1].re, u[1].re, u[3].re, u[3].re);
            let c1i = _mm256_setr_pd(u[1].im, u[1].im, u[3].im, u[3].im);
            let mut i = 0usize;
            while i < dim {
                let v = _mm256_loadu_pd(p.add(2 * i));
                let aa = _mm256_permute2f128_pd(v, v, 0x00);
                let bb = _mm256_permute2f128_pd(v, v, 0x11);
                let out = _mm256_add_pd(cmul(aa, c0r, c0i), cmul(bb, c1r, c1i));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(out, out));
                i += 2;
            }
        } else {
            let (u0r, u0i) = splat(u[0]);
            let (u1r, u1i) = splat(u[1]);
            let (u2r, u2i) = splat(u[2]);
            let (u3r, u3i) = splat(u[3]);
            let stride = mask << 1;
            let mut base = 0usize;
            while base < dim {
                let mut off = 0usize;
                while off < mask {
                    let i0 = 2 * (base + off);
                    let i1 = 2 * (base + off + mask);
                    let va = _mm256_loadu_pd(p.add(i0));
                    let vb = _mm256_loadu_pd(p.add(i1));
                    let o0 = _mm256_add_pd(cmul(va, u0r, u0i), cmul(vb, u1r, u1i));
                    let o1 = _mm256_add_pd(cmul(va, u2r, u2i), cmul(vb, u3r, u3i));
                    acc = _mm256_add_pd(acc, _mm256_mul_pd(o0, o0));
                    acc = _mm256_add_pd(acc, _mm256_mul_pd(o1, o1));
                    off += 2;
                }
                base += stride;
            }
        }
        reduce_lanes(acc)
    }

    /// Per-(a, b) index plumbing shared by the 2q kernels when the low
    /// qubit is 0: memory slot order `[base, base+1, base+mhi, base+mhi+1]`
    /// maps to small-matrix indices `ms`, with `inv` its inverse permutation
    /// (`inv[s]` = memory slot holding small index `s`).
    #[inline(always)]
    fn lo0_perm(mb: usize) -> ([usize; 4], [usize; 4]) {
        if mb == 1 {
            // b is qubit 0 (low bit of the small index): memory order is
            // already small-index order.
            ([0, 1, 2, 3], [0, 1, 2, 3])
        } else {
            // a is qubit 0 (high bit of the small index): adjacent memory
            // slots toggle the high bit.
            ([0, 2, 1, 3], [0, 2, 1, 3])
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn apply_2q_inner(state: &mut [Complex64], a: usize, b: usize, u: &[Complex64; 16]) {
        let dim = state.len();
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let ma = 1usize << a;
        let mb = 1usize << b;
        let mlo = 1usize << lo;
        let mhi = 1usize << hi;
        let p = state.as_mut_ptr() as *mut f64;
        if mlo >= 2 {
            // Four contiguous streams; two quads per iteration.
            let mut ur = [_mm256_setzero_pd(); 16];
            let mut ui = [_mm256_setzero_pd(); 16];
            for k in 0..16 {
                let (r, i) = splat(u[k]);
                ur[k] = r;
                ui[k] = i;
            }
            let mut base_hi = 0usize;
            while base_hi < dim {
                let mut base_mid = base_hi;
                while base_mid < base_hi + mhi {
                    let mut off = 0usize;
                    while off < mlo {
                        let base = base_mid + off;
                        let idx = [
                            2 * base,
                            2 * (base | mb),
                            2 * (base | ma),
                            2 * (base | ma | mb),
                        ];
                        let amp = [
                            _mm256_loadu_pd(p.add(idx[0])),
                            _mm256_loadu_pd(p.add(idx[1])),
                            _mm256_loadu_pd(p.add(idx[2])),
                            _mm256_loadu_pd(p.add(idx[3])),
                        ];
                        for r in 0..4 {
                            let mut acc = _mm256_setzero_pd();
                            for (c, &amp_c) in amp.iter().enumerate() {
                                acc = cmul_acc(acc, amp_c, ur[r * 4 + c], ui[r * 4 + c]);
                            }
                            _mm256_storeu_pd(p.add(idx[r]), acc);
                        }
                        off += 2;
                    }
                    base_mid += mlo << 1;
                }
                base_hi += mhi << 1;
            }
        } else {
            // lo == 0: a quad is two contiguous pairs {base, base+1} and
            // {base+mhi, base+mhi+1}. Compute both output vectors in memory
            // order with per-lane coefficient vectors.
            let (ms, inv) = lo0_perm(mb);
            // clr[c]/cli[c]: coefficient for small column c of the low
            // output vector (rows ms[0] in the low half, ms[1] high);
            // chr/chi likewise for the high output vector (rows ms[2], ms[3]).
            let mut clr = [_mm256_setzero_pd(); 4];
            let mut cli = [_mm256_setzero_pd(); 4];
            let mut chr = [_mm256_setzero_pd(); 4];
            let mut chi = [_mm256_setzero_pd(); 4];
            for c in 0..4 {
                let wl0 = u[ms[0] * 4 + c];
                let wl1 = u[ms[1] * 4 + c];
                let wh0 = u[ms[2] * 4 + c];
                let wh1 = u[ms[3] * 4 + c];
                clr[c] = _mm256_setr_pd(wl0.re, wl0.re, wl1.re, wl1.re);
                cli[c] = _mm256_setr_pd(wl0.im, wl0.im, wl1.im, wl1.im);
                chr[c] = _mm256_setr_pd(wh0.re, wh0.re, wh1.re, wh1.re);
                chi[c] = _mm256_setr_pd(wh0.im, wh0.im, wh1.im, wh1.im);
            }
            let mut base_hi = 0usize;
            while base_hi < dim {
                let mut base = base_hi;
                while base < base_hi + mhi {
                    let il = 2 * base;
                    let ih = 2 * (base + mhi);
                    let vl = _mm256_loadu_pd(p.add(il));
                    let vh = _mm256_loadu_pd(p.add(ih));
                    let slots = [
                        _mm256_permute2f128_pd(vl, vl, 0x00),
                        _mm256_permute2f128_pd(vl, vl, 0x11),
                        _mm256_permute2f128_pd(vh, vh, 0x00),
                        _mm256_permute2f128_pd(vh, vh, 0x11),
                    ];
                    let mut accl = _mm256_setzero_pd();
                    let mut acch = _mm256_setzero_pd();
                    for c in 0..4 {
                        let amp_c = slots[inv[c]];
                        accl = cmul_acc(accl, amp_c, clr[c], cli[c]);
                        acch = cmul_acc(acch, amp_c, chr[c], chi[c]);
                    }
                    _mm256_storeu_pd(p.add(il), accl);
                    _mm256_storeu_pd(p.add(ih), acch);
                    base += 2;
                }
                base_hi += mhi << 1;
            }
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn norm_sqr_2q_inner(
        state: &[Complex64],
        a: usize,
        b: usize,
        u: &[Complex64; 16],
    ) -> f64 {
        let dim = state.len();
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let ma = 1usize << a;
        let mb = 1usize << b;
        let mlo = 1usize << lo;
        let mhi = 1usize << hi;
        let p = state.as_ptr() as *const f64;
        let mut acc = _mm256_setzero_pd();
        if mlo >= 2 {
            let mut ur = [_mm256_setzero_pd(); 16];
            let mut ui = [_mm256_setzero_pd(); 16];
            for k in 0..16 {
                let (r, i) = splat(u[k]);
                ur[k] = r;
                ui[k] = i;
            }
            let mut base_hi = 0usize;
            while base_hi < dim {
                let mut base_mid = base_hi;
                while base_mid < base_hi + mhi {
                    let mut off = 0usize;
                    while off < mlo {
                        let base = base_mid + off;
                        let idx = [
                            2 * base,
                            2 * (base | mb),
                            2 * (base | ma),
                            2 * (base | ma | mb),
                        ];
                        let amp = [
                            _mm256_loadu_pd(p.add(idx[0])),
                            _mm256_loadu_pd(p.add(idx[1])),
                            _mm256_loadu_pd(p.add(idx[2])),
                            _mm256_loadu_pd(p.add(idx[3])),
                        ];
                        for r in 0..4 {
                            let mut row = _mm256_setzero_pd();
                            for (c, &amp_c) in amp.iter().enumerate() {
                                row = cmul_acc(row, amp_c, ur[r * 4 + c], ui[r * 4 + c]);
                            }
                            acc = _mm256_add_pd(acc, _mm256_mul_pd(row, row));
                        }
                        off += 2;
                    }
                    base_mid += mlo << 1;
                }
                base_hi += mhi << 1;
            }
        } else {
            let (ms, inv) = lo0_perm(mb);
            let mut clr = [_mm256_setzero_pd(); 4];
            let mut cli = [_mm256_setzero_pd(); 4];
            let mut chr = [_mm256_setzero_pd(); 4];
            let mut chi = [_mm256_setzero_pd(); 4];
            for c in 0..4 {
                let wl0 = u[ms[0] * 4 + c];
                let wl1 = u[ms[1] * 4 + c];
                let wh0 = u[ms[2] * 4 + c];
                let wh1 = u[ms[3] * 4 + c];
                clr[c] = _mm256_setr_pd(wl0.re, wl0.re, wl1.re, wl1.re);
                cli[c] = _mm256_setr_pd(wl0.im, wl0.im, wl1.im, wl1.im);
                chr[c] = _mm256_setr_pd(wh0.re, wh0.re, wh1.re, wh1.re);
                chi[c] = _mm256_setr_pd(wh0.im, wh0.im, wh1.im, wh1.im);
            }
            let mut base_hi = 0usize;
            while base_hi < dim {
                let mut base = base_hi;
                while base < base_hi + mhi {
                    let il = 2 * base;
                    let ih = 2 * (base + mhi);
                    let vl = _mm256_loadu_pd(p.add(il));
                    let vh = _mm256_loadu_pd(p.add(ih));
                    let slots = [
                        _mm256_permute2f128_pd(vl, vl, 0x00),
                        _mm256_permute2f128_pd(vl, vl, 0x11),
                        _mm256_permute2f128_pd(vh, vh, 0x00),
                        _mm256_permute2f128_pd(vh, vh, 0x11),
                    ];
                    let mut accl = _mm256_setzero_pd();
                    let mut acch = _mm256_setzero_pd();
                    for c in 0..4 {
                        let amp_c = slots[inv[c]];
                        accl = cmul_acc(accl, amp_c, clr[c], cli[c]);
                        acch = cmul_acc(acch, amp_c, chr[c], chi[c]);
                    }
                    acc = _mm256_add_pd(acc, _mm256_mul_pd(accl, accl));
                    acc = _mm256_add_pd(acc, _mm256_mul_pd(acch, acch));
                    base += 2;
                }
                base_hi += mhi << 1;
            }
        }
        reduce_lanes(acc)
    }

    /// AVX2 [`crate::kernels::apply_1q_vec_blocked`]. Caller must ensure the
    /// host supports AVX2+FMA (see [`super::simd_available`]).
    pub fn apply_1q_vec_blocked(state: &mut [Complex64], q: usize, u: &[Complex64; 4]) {
        debug_assert!(state.len().is_power_of_two());
        debug_assert!(1 << q < state.len(), "qubit index out of range");
        debug_assert!(super::simd_available());
        unsafe { apply_1q_inner(state, q, u) }
    }

    /// AVX2 [`crate::kernels::apply_2q_vec_blocked`]. Caller must ensure the
    /// host supports AVX2+FMA.
    pub fn apply_2q_vec_blocked(state: &mut [Complex64], a: usize, b: usize, u: &[Complex64; 16]) {
        debug_assert!(a != b, "two-qubit gate needs distinct qubits");
        debug_assert!((1 << a) < state.len() && (1 << b) < state.len());
        debug_assert!(super::simd_available());
        unsafe { apply_2q_inner(state, a, b, u) }
    }

    /// AVX2 [`crate::kernels::norm_sqr_1q`]. Caller must ensure the host
    /// supports AVX2+FMA.
    pub fn norm_sqr_1q(state: &[Complex64], q: usize, u: &[Complex64; 4]) -> f64 {
        debug_assert!(state.len().is_power_of_two());
        debug_assert!(1 << q < state.len(), "qubit index out of range");
        debug_assert!(super::simd_available());
        unsafe { norm_sqr_1q_inner(state, q, u) }
    }

    /// AVX2 [`crate::kernels::norm_sqr_2q`]. Caller must ensure the host
    /// supports AVX2+FMA.
    pub fn norm_sqr_2q(state: &[Complex64], a: usize, b: usize, u: &[Complex64; 16]) -> f64 {
        debug_assert!(a != b, "two-qubit gate needs distinct qubits");
        debug_assert!((1 << a) < state.len() && (1 << b) < state.len());
        debug_assert!(super::simd_available());
        unsafe { norm_sqr_2q_inner(state, a, b, u) }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn scale_inner(state: &mut [Complex64], s: f64) {
        // each f64 is multiplied by `s` exactly once — identical per-element
        // operations to the scalar loop, so width never changes the result
        let n2 = state.len() * 2;
        let p = state.as_mut_ptr() as *mut f64;
        let vs = _mm256_set1_pd(s);
        let mut i = 0usize;
        while i + 8 <= n2 {
            let a = _mm256_loadu_pd(p.add(i));
            let b = _mm256_loadu_pd(p.add(i + 4));
            _mm256_storeu_pd(p.add(i), _mm256_mul_pd(a, vs));
            _mm256_storeu_pd(p.add(i + 4), _mm256_mul_pd(b, vs));
            i += 8;
        }
        while i < n2 {
            *p.add(i) *= s;
            i += 1;
        }
    }

    /// AVX2 [`crate::kernels::scale`]. Caller must ensure the host supports
    /// AVX2+FMA.
    pub fn scale(state: &mut [Complex64], s: f64) {
        debug_assert!(super::simd_available());
        unsafe { scale_inner(state, s) }
    }
}
