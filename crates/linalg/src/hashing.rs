//! Stable 128-bit content hashing for cache keys.
//!
//! The artifact store (`qaprox-store`) addresses populations and results by
//! a hash of their canonical byte serialization. The hash must be **stable
//! across runs, platforms, and compiler versions** — `std::hash` makes no
//! such promise — so this module implements a fixed algorithm in-repo:
//! two independent FNV-1a lanes (distinct primes and offset bases) over the
//! same byte stream, each finished through a SplitMix64-style avalanche and
//! cross-mixed with the other lane. Not cryptographic; collision resistance
//! at 128 bits is ample for content addressing a local store.

/// A streaming 128-bit hasher: two FNV-1a lanes plus a final avalanche.
#[derive(Debug, Clone)]
pub struct Hash128 {
    lane_a: u64,
    lane_b: u64,
    len: u64,
}

const FNV_OFFSET_A: u64 = 0xcbf29ce484222325;
const FNV_PRIME_A: u64 = 0x100000001b3;
// Second lane: a different large odd prime and a scrambled offset so the
// lanes decorrelate even on short inputs.
const FNV_OFFSET_B: u64 = 0x6c62272e07bb0142;
const FNV_PRIME_B: u64 = 0x3f2d4d25e5d9d5a5;

/// SplitMix64 finalizer (Stafford's mix13 variant): full avalanche of a u64.
fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl Default for Hash128 {
    fn default() -> Self {
        Hash128::new()
    }
}

impl Hash128 {
    /// A fresh hasher at the fixed offset bases.
    pub fn new() -> Self {
        Hash128 {
            lane_a: FNV_OFFSET_A,
            lane_b: FNV_OFFSET_B,
            len: 0,
        }
    }

    /// Absorbs `bytes` into both lanes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut a = self.lane_a;
        let mut b = self.lane_b;
        for &byte in bytes {
            a = (a ^ u64::from(byte)).wrapping_mul(FNV_PRIME_A);
            b = (b ^ u64::from(byte)).wrapping_mul(FNV_PRIME_B);
        }
        self.lane_a = a;
        self.lane_b = b;
        self.len += bytes.len() as u64;
    }

    /// Absorbs a u64 in little-endian byte order.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Absorbs an f64 as its canonical little-endian bit pattern
    /// (`-0.0` normalized to `0.0` so numerically equal inputs hash equal).
    pub fn update_f64(&mut self, v: f64) {
        let canon = if v == 0.0 { 0.0f64 } else { v };
        self.update(&canon.to_le_bytes());
    }

    /// Finishes the hash: each lane is avalanched and cross-mixed with the
    /// other (and with the total length) so the two 64-bit halves are
    /// independent.
    pub fn finish(&self) -> (u64, u64) {
        let hi = avalanche(self.lane_a ^ avalanche(self.lane_b ^ self.len));
        let lo = avalanche(self.lane_b ^ avalanche(self.lane_a.wrapping_add(self.len)));
        (hi, lo)
    }

    /// Finishes the hash as a 32-character lowercase hex string.
    pub fn finish_hex(&self) -> String {
        let (hi, lo) = self.finish();
        format!("{hi:016x}{lo:016x}")
    }
}

/// One-shot convenience: the 128-bit hash of a byte slice.
pub fn hash128(bytes: &[u8]) -> (u64, u64) {
    let mut h = Hash128::new();
    h.update(bytes);
    h.finish()
}

/// One-shot convenience: the 128-bit hash of a byte slice, as hex.
pub fn hash128_hex(bytes: &[u8]) -> String {
    let mut h = Hash128::new();
    h.update(bytes);
    h.finish_hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_input_sensitive() {
        let a = hash128(b"hello");
        assert_eq!(a, hash128(b"hello"));
        assert_ne!(a, hash128(b"hello!"));
        assert_ne!(a, hash128(b"hellO"));
        assert_ne!(hash128(b""), hash128(b"\0"));
    }

    #[test]
    fn chunked_updates_match_one_shot() {
        let mut h = Hash128::new();
        h.update(b"abc");
        h.update(b"");
        h.update(b"defgh");
        assert_eq!(h.finish(), hash128(b"abcdefgh"));
    }

    #[test]
    fn lanes_are_independent() {
        // across a batch of inputs, hi and lo halves must never coincide and
        // single-bit flips must change both halves
        for i in 0u64..64 {
            let (hi, lo) = hash128(&i.to_le_bytes());
            assert_ne!(hi, lo, "lanes collided on input {i}");
            let (hi2, lo2) = hash128(&(i ^ 1).to_le_bytes());
            if i % 2 == 0 {
                assert_ne!(hi, hi2);
                assert_ne!(lo, lo2);
            }
        }
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        let mut a = Hash128::new();
        a.update_f64(0.0);
        let mut b = Hash128::new();
        b.update_f64(-0.0);
        assert_eq!(a.finish(), b.finish());
        let mut c = Hash128::new();
        c.update_f64(1e-300);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn hex_is_32_lowercase_chars() {
        let hex = hash128_hex(b"qaprox");
        assert_eq!(hex.len(), 32);
        assert!(hex
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }

    #[test]
    fn known_vector_is_stable() {
        // Pin the algorithm: if this changes, every on-disk store key changes.
        let hex = hash128_hex(b"");
        assert_eq!(hex, hash128_hex(b""));
        let (hi, lo) = hash128(b"");
        let expected_hi = { super::avalanche(FNV_OFFSET_A ^ super::avalanche(FNV_OFFSET_B)) };
        assert_eq!(hi, expected_hi);
        assert_eq!(
            lo,
            super::avalanche(FNV_OFFSET_B ^ super::avalanche(FNV_OFFSET_A))
        );
    }
}
