//! Polar decomposition via Newton iteration.
//!
//! QFactor-style synthesis repeatedly asks: "which unitary is closest (in
//! Frobenius norm) to this arbitrary matrix?" The answer is the unitary polar
//! factor `Q` of `A = Q P`. The Newton iteration
//! `X_{k+1} = (X_k + X_k^{-dagger}) / 2` converges quadratically to `Q` for
//! nonsingular `A`, needing only the small-matrix inverse we already have.

use crate::matrix::Matrix;
use crate::solve::{invert, SingularMatrix};

/// Computes the unitary polar factor of a nonsingular square matrix.
///
/// Returns an error if the matrix is singular (no unique nearest unitary).
pub fn polar_unitary(a: &Matrix) -> Result<Matrix, SingularMatrix> {
    assert!(
        a.is_square(),
        "polar decomposition requires a square matrix"
    );
    let mut x = a.clone();
    // Newton with a cheap scaling step: normalize by sqrt(|det|-ish) using
    // the Frobenius norm so the first iterations don't overshoot.
    let n = a.rows() as f64;
    let f = x.fro_norm();
    if f > 0.0 {
        x = x.scale_re((n.sqrt()) / f);
    }
    for _ in 0..100 {
        let x_inv_dag = invert(&x)?.adjoint();
        let next = (&x + &x_inv_dag).scale_re(0.5);
        let delta = next.max_diff(&x);
        x = next;
        if delta < 1e-14 {
            break;
        }
    }
    Ok(x)
}

/// Projects `a` onto the unitary group and reports the Frobenius distance
/// from the original: `(Q, ||A - Q||_F)`.
pub fn nearest_unitary(a: &Matrix) -> Result<(Matrix, f64), SingularMatrix> {
    let q = polar_unitary(a)?;
    let dist = (a - &q).fro_norm();
    Ok((q, dist))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::matrix::{pauli_x, pauli_y};

    #[test]
    fn polar_of_unitary_is_itself() {
        let u = pauli_x().matmul(&pauli_y()); // iZ, unitary
        let q = polar_unitary(&u).unwrap();
        assert!(q.approx_eq(&u, 1e-12));
    }

    #[test]
    fn polar_of_scaled_unitary_recovers_unitary() {
        let u = pauli_y().scale_re(3.7);
        let q = polar_unitary(&u).unwrap();
        assert!(q.is_unitary(1e-12));
        assert!(q.approx_eq(&pauli_y(), 1e-10));
    }

    #[test]
    fn polar_factor_is_unitary_for_generic_matrix() {
        let mut a = Matrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                a[(i, j)] = c64(
                    ((i * 3 + j) as f64).sin() + if i == j { 2.0 } else { 0.0 },
                    ((i + j * 2) as f64).cos() * 0.5,
                );
            }
        }
        let q = polar_unitary(&a).unwrap();
        assert!(q.is_unitary(1e-11));
    }

    #[test]
    fn nearest_unitary_minimality_sanity() {
        // Perturb a unitary slightly: the nearest unitary must be at least as
        // close as the unperturbed one, and very near it.
        let u = pauli_x();
        let mut a = u.clone();
        a[(0, 1)] += c64(0.01, -0.02);
        let (q, dist) = nearest_unitary(&a).unwrap();
        let dist_to_u = (&a - &u).fro_norm();
        assert!(dist <= dist_to_u + 1e-12);
        assert!(q.max_diff(&u) < 0.05);
    }

    #[test]
    fn singular_input_errors() {
        let a = Matrix::zeros(3, 3);
        assert!(polar_unitary(&a).is_err());
    }
}
