//! Dense solvers: Gauss-Jordan inversion and linear solves with partial
//! pivoting. Matrices in this stack are tiny (dimension <= 256), so the
//! classic `O(n^3)` elimination is the right tool.

use crate::complex::Complex64;
use crate::matrix::Matrix;

/// Error raised when a matrix is singular to working precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrix;

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular to working precision")
    }
}

impl std::error::Error for SingularMatrix {}

/// Inverts a square matrix by Gauss-Jordan elimination with partial pivoting.
pub fn invert(m: &Matrix) -> Result<Matrix, SingularMatrix> {
    assert!(m.is_square(), "cannot invert a non-square matrix");
    let n = m.rows();
    let mut a = m.clone();
    let mut inv = Matrix::identity(n);

    for col in 0..n {
        // Partial pivot: pick the row with the largest modulus in this column.
        let mut pivot_row = col;
        let mut pivot_mag = a[(col, col)].abs();
        for r in col + 1..n {
            let mag = a[(r, col)].abs();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        if pivot_mag < 1e-300 {
            return Err(SingularMatrix);
        }
        if pivot_row != col {
            swap_rows(&mut a, col, pivot_row);
            swap_rows(&mut inv, col, pivot_row);
        }

        let pivot_inv = a[(col, col)].inv();
        for j in 0..n {
            a[(col, j)] *= pivot_inv;
            inv[(col, j)] *= pivot_inv;
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let factor = a[(r, col)];
            if factor == Complex64::ZERO {
                continue;
            }
            for j in 0..n {
                let ac = a[(col, j)];
                let ic = inv[(col, j)];
                a[(r, j)] -= factor * ac;
                inv[(r, j)] -= factor * ic;
            }
        }
    }
    Ok(inv)
}

/// Solves `A x = b` for a single right-hand side.
pub fn solve(a: &Matrix, b: &[Complex64]) -> Result<Vec<Complex64>, SingularMatrix> {
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    let inv = invert(a)?;
    Ok(inv.matvec(b))
}

fn swap_rows(m: &mut Matrix, r1: usize, r2: usize) {
    if r1 == r2 {
        return;
    }
    let cols = m.cols();
    let data = m.data_mut();
    let (a, b) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
    let (head, tail) = data.split_at_mut(b * cols);
    head[a * cols..(a + 1) * cols].swap_with_slice(&mut tail[..cols]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn inverse_of_identity_is_identity() {
        let inv = invert(&Matrix::identity(5)).unwrap();
        assert!(inv.approx_eq(&Matrix::identity(5), 1e-14));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let mut a = Matrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                a[(i, j)] = c64(
                    ((i * 4 + j) as f64).sin() + if i == j { 3.0 } else { 0.0 },
                    ((i + 2 * j) as f64).cos() * 0.3,
                );
            }
        }
        let inv = invert(&a).unwrap();
        assert!(a.matmul(&inv).approx_eq(&Matrix::identity(4), 1e-10));
        assert!(inv.matmul(&a).approx_eq(&Matrix::identity(4), 1e-10));
    }

    #[test]
    fn singular_matrix_is_detected() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = c64(1.0, 0.0);
        a[(1, 1)] = c64(2.0, 0.0);
        // row 2 left as zeros -> singular
        assert_eq!(invert(&a), Err(SingularMatrix));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // [[0,1],[1,0]] requires a row swap; inverse is itself.
        let a = Matrix::from_rows(&[
            &[Complex64::ZERO, Complex64::ONE],
            &[Complex64::ONE, Complex64::ZERO],
        ]);
        let inv = invert(&a).unwrap();
        assert!(inv.approx_eq(&a, 1e-14));
    }

    #[test]
    fn solve_matches_known_solution() {
        let a = Matrix::from_rows(&[
            &[c64(2.0, 0.0), c64(1.0, 0.0)],
            &[c64(1.0, 0.0), c64(3.0, 0.0)],
        ]);
        let x_true = vec![c64(1.0, 1.0), c64(-1.0, 0.5)];
        let b = a.matvec(&x_true);
        let x = solve(&a, &b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((*got - *want).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_of_unitary_is_adjoint() {
        // H gate: inverse should equal adjoint
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let h = Matrix::from_rows(&[&[c64(s, 0.0), c64(s, 0.0)], &[c64(s, 0.0), c64(-s, 0.0)]]);
        let inv = invert(&h).unwrap();
        assert!(inv.approx_eq(&h.adjoint(), 1e-13));
    }
}
