//! # qaprox-linalg
//!
//! The dense complex linear-algebra substrate for the `qaprox` workspace —
//! everything the quantum stack needs, implemented from scratch:
//!
//! * [`Complex64`] — a `Copy` complex double;
//! * [`Matrix`] — dense row-major complex matrices with the usual algebra;
//! * [`kernels`] — gate-application kernels that never materialize `2^n x 2^n`
//!   embeddings (the hot loops of every simulator and of synthesis);
//! * [`solve`] — Gauss-Jordan inversion / linear solves;
//! * [`expm`](crate::expm::expm) — Padé scaling-and-squaring matrix exponential;
//! * [`polar`](crate::polar::polar_unitary) — nearest-unitary projection
//!   (Newton iteration), the core step of QFactor-style optimization;
//! * [`decomp`](crate::decomp::zyz_decompose) — ZYZ/U3 Euler decomposition;
//! * [`eigh`](crate::eigh::eigh) — Hermitian eigendecomposition (Jacobi),
//!   spectral matrix functions, von Neumann entropy;
//! * [`pauli`] — Pauli strings and the su(2^n) Hermitian basis;
//! * [`random`] — a seedable in-repo RNG ([`random::SplitMix64`]),
//!   Haar-distributed unitaries, and random states;
//! * [`parallel`] — order-preserving parallel map / join, sequential by
//!   default and threaded behind the `parallel` feature;
//! * [`simd`] — runtime-dispatched AVX2 amplitude kernels, bit-identical to
//!   the scalar fallback (`QAPROX_SIMD=0` forces scalar).

#![warn(missing_docs)]

pub mod complex;
pub mod decomp;
pub mod eigh;
pub mod expm;
pub mod hashing;
pub mod kernels;
pub mod matrix;
pub mod parallel;
pub mod pauli;
pub mod polar;
pub mod random;
pub mod simd;
pub mod solve;

pub use complex::{c64, Complex64};
pub use decomp::{u3_array, u3_matrix, zyz_decompose, Zyz};
pub use eigh::{eigh, expm_i_hermitian_spectral, von_neumann_entropy, Eigh};
pub use expm::{expm, expm_i_hermitian};
pub use hashing::{hash128, hash128_hex, Hash128};
pub use matrix::Matrix;
pub use polar::{nearest_unitary, polar_unitary};
pub use random::{Rng, SplitMix64};
pub use simd::{kernel_dispatch, selected_kernel, simd_available, KernelDispatch};
pub use solve::{invert, solve, SingularMatrix};
