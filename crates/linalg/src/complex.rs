//! A from-scratch double-precision complex number.
//!
//! The whole stack (simulators, synthesis, metrics) is built on this type, so
//! it is deliberately small: a `Copy` pair of `f64`s with the full arithmetic
//! surface implemented inline. Keeping it local (rather than pulling in
//! `num-complex`) keeps the dependency tree to the approved set and lets the
//! hot simulator kernels inline everything.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// `repr(C)` pins the `(re, im)` field order so a `&[Complex64]` is layout-
/// compatible with an interleaved `&[f64]` of twice the length — the contract
/// the SIMD amplitude kernels in [`crate::simd`] rely on.
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor for [`Complex64`].
#[inline(always)]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = c64(0.0, 1.0);

    /// Creates a complex number from rectangular coordinates.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn from_real(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// Creates `r * e^{i theta}` from polar coordinates.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        c64(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{i theta}` — a unit-modulus phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        c64(theta.cos(), theta.sin())
    }

    /// The complex conjugate `re - i*im`.
    #[inline(always)]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// The squared modulus `re^2 + im^2`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The modulus (absolute value).
    #[inline(always)]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The argument (phase angle) in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// The multiplicative inverse `1/z`.
    ///
    /// Returns a non-finite value if `self` is zero, mirroring `f64` division.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// The principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() * 0.5)
    }

    /// The complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Multiply-accumulate: `self + a * b`, the inner-product workhorse.
    #[inline(always)]
    pub fn mul_add(self, a: Complex64, b: Complex64) -> Self {
        c64(
            self.re + a.re * b.re - a.im * b.im,
            self.im + a.re * b.im + a.im * b.re,
        )
    }

    /// Scales by a real factor.
    #[inline(always)]
    pub fn scale(self, k: f64) -> Self {
        c64(self.re * k, self.im * k)
    }

    /// True when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// True when within `tol` (in modulus) of `other`.
    #[inline]
    pub fn approx_eq(self, other: Complex64, tol: f64) -> bool {
        (self - other).abs() <= tol
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}i",
            self.re,
            if self.im < 0.0 { "-" } else { "+" },
            self.im.abs()
        )
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.6}{}{:.6}i",
            self.re,
            if self.im < 0.0 { "-" } else { "+" },
            self.im.abs()
        )
    }
}

impl From<f64> for Complex64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Complex64) -> Complex64 {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Complex64) -> Complex64 {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z * w^-1
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Complex64 {
        c64(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn div(self, rhs: f64) -> Complex64 {
        c64(self.re / rhs, self.im / rhs)
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: f64) -> Complex64 {
        c64(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: f64) -> Complex64 {
        c64(self.re - rhs, self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl Product for Complex64 {
    fn product<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn constructors_agree() {
        assert_eq!(Complex64::new(1.5, -2.0), c64(1.5, -2.0));
        assert_eq!(Complex64::from_real(3.0), c64(3.0, 0.0));
        assert_eq!(Complex64::from(2.5), c64(2.5, 0.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < TOL);
        assert!((z.arg() - 0.7).abs() < TOL);
    }

    #[test]
    fn cis_is_unit_modulus() {
        for k in 0..32 {
            let z = Complex64::cis(k as f64 * 0.37);
            assert!((z.abs() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn arithmetic_identities() {
        let a = c64(1.0, 2.0);
        let b = c64(-0.5, 0.25);
        assert!(((a + b) - (b + a)).abs() < TOL);
        assert!(((a * b) - (b * a)).abs() < TOL);
        assert!(((a - b) + b - a).abs() < TOL);
        assert!((a * b / b - a).abs() < TOL);
    }

    #[test]
    fn conjugation_properties() {
        let a = c64(3.0, -4.0);
        assert_eq!(a.conj().conj(), a);
        assert!((a * a.conj() - Complex64::from_real(a.norm_sqr())).abs() < TOL);
        assert_eq!(a.abs(), 5.0);
    }

    #[test]
    fn inverse_multiplies_to_one() {
        let a = c64(0.3, -1.7);
        assert!((a * a.inv() - Complex64::ONE).abs() < TOL);
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[c64(4.0, 0.0), c64(0.0, 2.0), c64(-1.0, 0.0), c64(1.0, 1.0)] {
            let r = z.sqrt();
            assert!((r * r - z).abs() < 1e-10, "sqrt failed for {z:?}");
        }
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let t = 1.234;
        assert!((c64(0.0, t).exp() - Complex64::cis(t)).abs() < TOL);
    }

    #[test]
    fn exp_of_zero_is_one() {
        assert!((Complex64::ZERO.exp() - Complex64::ONE).abs() < TOL);
    }

    #[test]
    fn mul_add_matches_naive() {
        let acc = c64(1.0, 1.0);
        let a = c64(2.0, -3.0);
        let b = c64(0.5, 0.5);
        assert!((acc.mul_add(a, b) - (acc + a * b)).abs() < TOL);
    }

    #[test]
    fn scalar_ops() {
        let a = c64(1.0, -2.0);
        assert_eq!(a * 2.0, c64(2.0, -4.0));
        assert_eq!(2.0 * a, c64(2.0, -4.0));
        assert_eq!(a / 2.0, c64(0.5, -1.0));
        assert_eq!(a + 1.0, c64(2.0, -2.0));
        assert_eq!(a - 1.0, c64(0.0, -2.0));
    }

    #[test]
    fn sum_and_product_folds() {
        let v = [c64(1.0, 0.0), c64(0.0, 1.0), c64(2.0, 2.0)];
        let s: Complex64 = v.iter().copied().sum();
        assert_eq!(s, c64(3.0, 3.0));
        let p: Complex64 = v.iter().copied().product();
        // (1)(i)(2+2i) = i(2+2i) = -2 + 2i
        assert!((p - c64(-2.0, 2.0)).abs() < TOL);
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        let a = c64(1.0, 0.0);
        assert!(a.approx_eq(c64(1.0 + 1e-13, 0.0), 1e-12));
        assert!(!a.approx_eq(c64(1.1, 0.0), 1e-12));
    }
}
