//! Random quantum objects: Haar-distributed unitaries and random states.
//!
//! Haar sampling follows Mezzadri's recipe: fill a Ginibre matrix with
//! standard complex Gaussians, QR-factorize by modified Gram-Schmidt, and fix
//! the phase ambiguity with the sign of the R diagonal. Gaussians come from a
//! hand-rolled Box-Muller so we stay inside the approved `rand` crate.

use crate::complex::{c64, Complex64};
use crate::matrix::Matrix;
use rand::Rng;

/// Samples a standard normal via Box-Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Samples a standard complex Gaussian (each part variance 1/2).
pub fn complex_normal<R: Rng + ?Sized>(rng: &mut R) -> Complex64 {
    c64(
        standard_normal(rng) * std::f64::consts::FRAC_1_SQRT_2,
        standard_normal(rng) * std::f64::consts::FRAC_1_SQRT_2,
    )
}

/// Samples an `n x n` Haar-distributed unitary matrix.
pub fn haar_unitary<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Matrix {
    // Ginibre ensemble, stored column-wise for Gram-Schmidt convenience.
    let mut cols: Vec<Vec<Complex64>> = (0..n)
        .map(|_| (0..n).map(|_| complex_normal(rng)).collect())
        .collect();

    let mut r_diag = vec![Complex64::ONE; n];
    for j in 0..n {
        // Orthogonalize against previous columns (modified Gram-Schmidt,
        // applied twice for numerical robustness).
        for _ in 0..2 {
            for k in 0..j {
                let mut proj = Complex64::ZERO;
                for i in 0..n {
                    proj = proj.mul_add(cols[k][i].conj(), cols[j][i]);
                }
                for i in 0..n {
                    let ck = cols[k][i];
                    cols[j][i] -= proj * ck;
                }
            }
        }
        let norm: f64 = cols[j].iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        assert!(norm > 1e-12, "degenerate Ginibre sample");
        // The R diagonal entry before normalization carries the phase we must
        // divide out for exact Haar measure; approximate it with the
        // projection of the original column onto the normalized one — for
        // MGS, that's just `norm` times an arbitrary phase we standardize by
        // forcing the first nonzero entry... Simpler and exactly Haar: draw a
        // fresh uniform phase per column (phase * Haar == Haar).
        let inv = 1.0 / norm;
        for z in cols[j].iter_mut() {
            *z = *z * inv;
        }
        let phase = Complex64::cis(rng.gen::<f64>() * std::f64::consts::TAU);
        r_diag[j] = phase;
        for z in cols[j].iter_mut() {
            *z = *z * phase;
        }
    }

    let mut m = Matrix::zeros(n, n);
    for (j, col) in cols.iter().enumerate() {
        for (i, &z) in col.iter().enumerate() {
            m[(i, j)] = z;
        }
    }
    m
}

/// Samples a Haar-random pure state of dimension `dim` (normalized Gaussian).
pub fn random_statevector<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Vec<Complex64> {
    let mut v: Vec<Complex64> = (0..dim).map(|_| complex_normal(rng)).collect();
    let norm: f64 = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
    for z in v.iter_mut() {
        *z = *z / norm;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn haar_unitaries_are_unitary() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [2usize, 4, 8] {
            for _ in 0..10 {
                let u = haar_unitary(n, &mut rng);
                assert!(u.is_unitary(1e-10), "non-unitary Haar sample, n={n}");
            }
        }
    }

    #[test]
    fn haar_trace_statistics_are_centered() {
        // E[Tr U] = 0 for Haar; with 200 samples of 4x4 the mean modulus
        // should be well below the single-sample scale (~1).
        let mut rng = StdRng::seed_from_u64(99);
        let samples = 200;
        let mut mean = Complex64::ZERO;
        for _ in 0..samples {
            mean += haar_unitary(4, &mut rng).trace();
        }
        mean = mean / samples as f64;
        assert!(mean.abs() < 0.25, "Haar trace mean too large: {}", mean.abs());
    }

    #[test]
    fn random_statevector_is_normalized() {
        let mut rng = StdRng::seed_from_u64(3);
        for dim in [2usize, 8, 32] {
            let v = random_statevector(dim, &mut rng);
            let norm: f64 = v.iter().map(|z| z.norm_sqr()).sum();
            assert!((norm - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let a = haar_unitary(4, &mut StdRng::seed_from_u64(5));
        let b = haar_unitary(4, &mut StdRng::seed_from_u64(5));
        assert!(a.approx_eq(&b, 0.0));
    }
}
