//! Deterministic randomness and random quantum objects.
//!
//! The workspace must build and test with no network access, so instead of
//! the `rand` crate this module carries a small, seedable generator
//! ([`SplitMix64`]) plus the thin [`Rng`] trait the rest of the stack is
//! written against. Haar sampling follows Mezzadri's recipe: fill a Ginibre
//! matrix with standard complex Gaussians, QR-factorize by modified
//! Gram-Schmidt, and fix the phase ambiguity with a fresh uniform phase.

use crate::complex::{c64, Complex64};
use crate::matrix::Matrix;

/// A seedable pseudo-random generator. Implemented by [`SplitMix64`]; kept as
/// a trait so call sites stay generic (mirroring the `rand` API shape the
/// workspace was originally written against).
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` (uniform `[0, 1)` for `f64`).
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Samples uniformly from a range, e.g. `-1.0..1.0`, `0..4`, `a..=b`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Fisher-Yates shuffle of a slice in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            slice.swap(i, j);
        }
    }
}

/// Sebastiano Vigna's SplitMix64: a tiny, fast, full-period 64-bit generator
/// with excellent equidistribution for this workspace's statistical needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed (same seed, same stream).
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from raw generator output via [`Rng::gen`].
pub trait FromRng: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        debug_assert!(lo <= hi, "empty range");
        lo + f64::from_rng(rng) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i64);

/// Samples a standard normal via Box-Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Samples a standard complex Gaussian (each part variance 1/2).
pub fn complex_normal<R: Rng + ?Sized>(rng: &mut R) -> Complex64 {
    c64(
        standard_normal(rng) * std::f64::consts::FRAC_1_SQRT_2,
        standard_normal(rng) * std::f64::consts::FRAC_1_SQRT_2,
    )
}

/// Samples an `n x n` Haar-distributed unitary matrix.
pub fn haar_unitary<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Matrix {
    // Ginibre ensemble, stored column-wise for Gram-Schmidt convenience.
    let mut cols: Vec<Vec<Complex64>> = (0..n)
        .map(|_| (0..n).map(|_| complex_normal(rng)).collect())
        .collect();

    for j in 0..n {
        // Orthogonalize against previous columns (modified Gram-Schmidt,
        // applied twice for numerical robustness).
        let (done, rest) = cols.split_at_mut(j);
        let col_j = &mut rest[0];
        for _ in 0..2 {
            for col_k in done.iter() {
                let mut proj = Complex64::ZERO;
                for (zk, zj) in col_k.iter().zip(col_j.iter()) {
                    proj = proj.mul_add(zk.conj(), *zj);
                }
                for (zj, &ck) in col_j.iter_mut().zip(col_k) {
                    *zj -= proj * ck;
                }
            }
        }
        let norm: f64 = cols[j].iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        assert!(norm > 1e-12, "degenerate Ginibre sample");
        // The R diagonal entry before normalization carries the phase we must
        // divide out for exact Haar measure; approximate it with the
        // projection of the original column onto the normalized one — for
        // MGS, that's just `norm` times an arbitrary phase we standardize by
        // forcing the first nonzero entry... Simpler and exactly Haar: draw a
        // fresh uniform phase per column (phase * Haar == Haar).
        let inv = 1.0 / norm;
        for z in cols[j].iter_mut() {
            *z *= inv;
        }
        let phase = Complex64::cis(rng.gen::<f64>() * std::f64::consts::TAU);
        for z in cols[j].iter_mut() {
            *z *= phase;
        }
    }

    let mut m = Matrix::zeros(n, n);
    for (j, col) in cols.iter().enumerate() {
        for (i, &z) in col.iter().enumerate() {
            m[(i, j)] = z;
        }
    }
    m
}

/// Samples a Haar-random pure state of dimension `dim` (normalized Gaussian).
pub fn random_statevector<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Vec<Complex64> {
    let mut v: Vec<Complex64> = (0..dim).map(|_| complex_normal(rng)).collect();
    let norm: f64 = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
    for z in v.iter_mut() {
        *z = *z / norm;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    type StdRng = SplitMix64;

    #[test]
    fn haar_unitaries_are_unitary() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [2usize, 4, 8] {
            for _ in 0..10 {
                let u = haar_unitary(n, &mut rng);
                assert!(u.is_unitary(1e-10), "non-unitary Haar sample, n={n}");
            }
        }
    }

    #[test]
    fn haar_trace_statistics_are_centered() {
        // E[Tr U] = 0 for Haar; with 200 samples of 4x4 the mean modulus
        // should be well below the single-sample scale (~1).
        let mut rng = StdRng::seed_from_u64(99);
        let samples = 200;
        let mut mean = Complex64::ZERO;
        for _ in 0..samples {
            mean += haar_unitary(4, &mut rng).trace();
        }
        mean = mean / samples as f64;
        assert!(
            mean.abs() < 0.25,
            "Haar trace mean too large: {}",
            mean.abs()
        );
    }

    #[test]
    fn random_statevector_is_normalized() {
        let mut rng = StdRng::seed_from_u64(3);
        for dim in [2usize, 8, 32] {
            let v = random_statevector(dim, &mut rng);
            let norm: f64 = v.iter().map(|z| z.norm_sqr()).sum();
            assert!((norm - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let a = haar_unitary(4, &mut StdRng::seed_from_u64(5));
        let b = haar_unitary(4, &mut StdRng::seed_from_u64(5));
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn uniform_f64_stays_in_unit_interval_with_uniform_mean() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds_for_ints_and_floats() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let k: u8 = rng.gen_range(0..4);
            assert!(k < 4);
            seen[k as usize] = true;
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn shuffle_permutes_without_loss() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut v: Vec<usize> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 20-element shuffle should move something");
    }
}
