//! Pauli strings and the Hermitian basis of su(2^n).
//!
//! QFast parameterizes a generic `k`-qubit block as `U = exp(i sum_j t_j P_j)`
//! over all `4^k - 1` non-identity Pauli strings (plus optionally the
//! identity for global phase). This module enumerates that basis without
//! materializing kron products gate by gate: a Pauli string matrix is built
//! directly from its per-qubit labels.

use crate::complex::{c64, Complex64};
use crate::matrix::Matrix;

/// Single-qubit Pauli label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

impl Pauli {
    /// The four labels in canonical order (matches base-4 digit encoding).
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// Action on basis bit `b`: returns `(new_bit, phase)` such that
    /// `P |b> = phase |new_bit>`.
    #[inline]
    fn action(self, b: usize) -> (usize, Complex64) {
        match self {
            Pauli::I => (b, Complex64::ONE),
            Pauli::X => (b ^ 1, Complex64::ONE),
            Pauli::Y => (b ^ 1, if b == 0 { Complex64::I } else { c64(0.0, -1.0) }),
            Pauli::Z => (
                b,
                if b == 0 {
                    Complex64::ONE
                } else {
                    c64(-1.0, 0.0)
                },
            ),
        }
    }
}

/// A Pauli string over `n` qubits; index 0 is qubit 0 (LSB).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PauliString(pub Vec<Pauli>);

impl PauliString {
    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.0.len()
    }

    /// Decodes a base-4 index (`digit q` = label of qubit `q`) into a string.
    pub fn from_index(n: usize, mut idx: usize) -> Self {
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            labels.push(Pauli::ALL[idx % 4]);
            idx /= 4;
        }
        PauliString(labels)
    }

    /// True when every label is the identity.
    pub fn is_identity(&self) -> bool {
        self.0.iter().all(|&p| p == Pauli::I)
    }

    /// Builds the dense `2^n x 2^n` matrix of the string.
    ///
    /// Pauli strings have exactly one nonzero per row, so this is `O(2^n)`.
    pub fn to_matrix(&self) -> Matrix {
        let n = self.num_qubits();
        let dim = 1usize << n;
        let mut m = Matrix::zeros(dim, dim);
        for col in 0..dim {
            let mut row = 0usize;
            let mut phase = Complex64::ONE;
            for (q, &p) in self.0.iter().enumerate() {
                let b = (col >> q) & 1;
                let (nb, ph) = p.action(b);
                row |= nb << q;
                phase *= ph;
            }
            m[(row, col)] = phase;
        }
        m
    }
}

impl std::fmt::Display for PauliString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Print qubit n-1 .. 0, the usual ket ordering.
        for &p in self.0.iter().rev() {
            write!(
                f,
                "{}",
                match p {
                    Pauli::I => 'I',
                    Pauli::X => 'X',
                    Pauli::Y => 'Y',
                    Pauli::Z => 'Z',
                }
            )?;
        }
        Ok(())
    }
}

/// Enumerates the `4^n - 1` non-identity Pauli strings on `n` qubits —
/// a Hermitian, trace-orthogonal basis of su(2^n).
pub fn su_basis(n: usize) -> Vec<Matrix> {
    (1..4usize.pow(n as u32))
        .map(|idx| PauliString::from_index(n, idx).to_matrix())
        .collect()
}

/// Builds `H(t) = sum_j t_j B_j` over a precomputed basis.
pub fn hermitian_from_coeffs(basis: &[Matrix], coeffs: &[f64]) -> Matrix {
    assert_eq!(basis.len(), coeffs.len(), "basis/coeff length mismatch");
    let dim = basis[0].rows();
    let mut h = Matrix::zeros(dim, dim);
    for (b, &t) in basis.iter().zip(coeffs) {
        if t != 0.0 {
            h.axpy(c64(t, 0.0), b);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{pauli_x, pauli_y, pauli_z};

    #[test]
    fn single_qubit_strings_match_dense_paulis() {
        assert!(PauliString(vec![Pauli::X])
            .to_matrix()
            .approx_eq(&pauli_x(), 1e-15));
        assert!(PauliString(vec![Pauli::Y])
            .to_matrix()
            .approx_eq(&pauli_y(), 1e-15));
        assert!(PauliString(vec![Pauli::Z])
            .to_matrix()
            .approx_eq(&pauli_z(), 1e-15));
    }

    #[test]
    fn two_qubit_string_matches_kron() {
        // string [X (qubit0), Z (qubit1)] should equal Z (x) X in kron order
        let s = PauliString(vec![Pauli::X, Pauli::Z]);
        let expect = pauli_z().kron(&pauli_x());
        assert!(s.to_matrix().approx_eq(&expect, 1e-15));
    }

    #[test]
    fn strings_are_hermitian_and_unitary() {
        for idx in 0..16 {
            let m = PauliString::from_index(2, idx).to_matrix();
            assert!(m.is_hermitian(1e-15), "idx {idx} not hermitian");
            assert!(m.is_unitary(1e-15), "idx {idx} not unitary");
        }
    }

    #[test]
    fn basis_is_trace_orthogonal() {
        let basis = su_basis(2);
        assert_eq!(basis.len(), 15);
        for (i, a) in basis.iter().enumerate() {
            for (j, b) in basis.iter().enumerate() {
                let ip = a.hs_inner(b);
                if i == j {
                    assert!((ip.re - 4.0).abs() < 1e-12, "norm of basis {i}");
                } else {
                    assert!(ip.abs() < 1e-12, "basis {i},{j} not orthogonal");
                }
            }
        }
    }

    #[test]
    fn non_identity_strings_are_traceless() {
        for m in su_basis(2) {
            assert!(m.trace().abs() < 1e-13);
        }
    }

    #[test]
    fn from_index_round_trips_display() {
        let s = PauliString::from_index(3, 0b100111); // digits: 3,1,2 base4? just check display length
        assert_eq!(format!("{s}").len(), 3);
    }

    #[test]
    fn hermitian_from_coeffs_builds_combination() {
        let basis = su_basis(1);
        let h = hermitian_from_coeffs(&basis, &[0.5, 0.0, -1.0]);
        let mut expect = pauli_x().scale_re(0.5);
        expect.axpy(c64(-1.0, 0.0), &pauli_z());
        assert!(h.approx_eq(&expect, 1e-14));
        assert!(h.is_hermitian(1e-14));
    }
}
