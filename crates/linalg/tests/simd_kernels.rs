//! Property tests for the SIMD kernel dispatch: the AVX2 kernels must be
//! **bit-identical** to the scalar blocked kernels on random states and
//! random (non-unitary) gate matrices, across every qubit position — in
//! particular the block-boundary cases (qubit 0, qubit 1, the top qubit,
//! and adjacent pairs) where the vector lane layout changes shape.
//!
//! Run twice in CI: once with detection on (exercises AVX2 on x86 runners)
//! and once with `QAPROX_SIMD=0` (pins the forced-scalar dispatch).

use qaprox_linalg::kernels::{
    apply_1q_vec_blocked, apply_1q_vec_blocked_scalar, apply_2q_vec_blocked,
    apply_2q_vec_blocked_scalar, norm_sqr_1q, norm_sqr_1q_scalar, norm_sqr_2q, norm_sqr_2q_scalar,
    scale, scale_scalar,
};
use qaprox_linalg::{c64, selected_kernel, simd_available, Complex64, Rng, SplitMix64};

fn random_state(n: usize, rng: &mut SplitMix64) -> Vec<Complex64> {
    (0..1usize << n)
        .map(|_| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect()
}

fn random_mat2(rng: &mut SplitMix64) -> [Complex64; 4] {
    std::array::from_fn(|_| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
}

fn random_mat4(rng: &mut SplitMix64) -> [Complex64; 16] {
    std::array::from_fn(|_| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
}

/// Bitwise equality, so that even a +0.0 / -0.0 or NaN-payload difference
/// (invisible to `==`) would fail the suite.
fn assert_bits_eq(a: &[Complex64], b: &[Complex64], ctx: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            (x.re.to_bits(), x.im.to_bits()),
            (y.re.to_bits(), y.im.to_bits()),
            "amplitude {i} differs: {ctx}"
        );
    }
}

#[test]
fn dispatch_selects_a_known_kernel() {
    let name = selected_kernel();
    assert!(
        name == "simd" || name == "scalar",
        "unexpected kernel {name}"
    );
    // QAPROX_SIMD=0 must force scalar; otherwise an AVX2 host selects simd.
    if std::env::var("QAPROX_SIMD").is_ok_and(|v| v.trim() == "0") {
        assert_eq!(name, "scalar");
    } else if simd_available() {
        assert_eq!(name, "simd");
    } else {
        assert_eq!(name, "scalar");
    }
}

#[test]
fn dispatched_apply_1q_is_bit_identical_to_scalar() {
    let mut rng = SplitMix64::seed_from_u64(0x51D0_0001);
    for n in 1..=9 {
        for rep in 0..3 {
            let state = random_state(n, &mut rng);
            let u = random_mat2(&mut rng);
            for q in 0..n {
                let mut via_dispatch = state.clone();
                let mut via_scalar = state.clone();
                apply_1q_vec_blocked(&mut via_dispatch, q, &u);
                apply_1q_vec_blocked_scalar(&mut via_scalar, q, &u);
                assert_bits_eq(
                    &via_dispatch,
                    &via_scalar,
                    &format!("apply_1q n={n} q={q} rep={rep}"),
                );
            }
        }
    }
}

#[test]
fn dispatched_apply_2q_is_bit_identical_to_scalar() {
    let mut rng = SplitMix64::seed_from_u64(0x51D0_0002);
    for n in 2..=7 {
        for rep in 0..2 {
            let state = random_state(n, &mut rng);
            let u = random_mat4(&mut rng);
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let mut via_dispatch = state.clone();
                    let mut via_scalar = state.clone();
                    apply_2q_vec_blocked(&mut via_dispatch, a, b, &u);
                    apply_2q_vec_blocked_scalar(&mut via_scalar, a, b, &u);
                    assert_bits_eq(
                        &via_dispatch,
                        &via_scalar,
                        &format!("apply_2q n={n} a={a} b={b} rep={rep}"),
                    );
                }
            }
        }
    }
}

#[test]
fn dispatched_norms_are_bit_identical_to_scalar() {
    let mut rng = SplitMix64::seed_from_u64(0x51D0_0003);
    for n in 1..=8 {
        let state = random_state(n, &mut rng);
        let u1 = random_mat2(&mut rng);
        for q in 0..n {
            let d = norm_sqr_1q(&state, q, &u1);
            let s = norm_sqr_1q_scalar(&state, q, &u1);
            assert_eq!(d.to_bits(), s.to_bits(), "norm_1q n={n} q={q}");
        }
        if n >= 2 {
            let u2 = random_mat4(&mut rng);
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let d = norm_sqr_2q(&state, a, b, &u2);
                    let s = norm_sqr_2q_scalar(&state, a, b, &u2);
                    assert_eq!(d.to_bits(), s.to_bits(), "norm_2q n={n} a={a} b={b}");
                }
            }
        }
    }
}

#[test]
fn avx2_kernels_bit_identical_when_available() {
    // Direct exercise of the AVX2 module (not just whatever dispatch picked),
    // so this leg is meaningful even under QAPROX_SIMD=0.
    #[cfg(target_arch = "x86_64")]
    {
        if !simd_available() {
            return;
        }
        use qaprox_linalg::simd::avx2;
        let mut rng = SplitMix64::seed_from_u64(0x51D0_0004);
        for n in 1..=8 {
            let state = random_state(n, &mut rng);
            let s = rng.gen_range(0.25..4.0);
            let mut vec_scaled = state.clone();
            let mut sc_scaled = state.clone();
            avx2::scale(&mut vec_scaled, s);
            scale_scalar(&mut sc_scaled, s);
            assert_bits_eq(&vec_scaled, &sc_scaled, &format!("avx2 scale n={n}"));
            let u1 = random_mat2(&mut rng);
            for q in 0..n {
                let mut vec_out = state.clone();
                let mut sc_out = state.clone();
                avx2::apply_1q_vec_blocked(&mut vec_out, q, &u1);
                apply_1q_vec_blocked_scalar(&mut sc_out, q, &u1);
                assert_bits_eq(&vec_out, &sc_out, &format!("avx2 1q n={n} q={q}"));
                let nv = avx2::norm_sqr_1q(&state, q, &u1);
                let ns = norm_sqr_1q_scalar(&state, q, &u1);
                assert_eq!(nv.to_bits(), ns.to_bits(), "avx2 norm_1q n={n} q={q}");
            }
            if n >= 2 {
                let u2 = random_mat4(&mut rng);
                for a in 0..n {
                    for b in 0..n {
                        if a == b {
                            continue;
                        }
                        let mut vec_out = state.clone();
                        let mut sc_out = state.clone();
                        avx2::apply_2q_vec_blocked(&mut vec_out, a, b, &u2);
                        apply_2q_vec_blocked_scalar(&mut sc_out, a, b, &u2);
                        assert_bits_eq(&vec_out, &sc_out, &format!("avx2 2q n={n} a={a} b={b}"));
                        let nv = avx2::norm_sqr_2q(&state, a, b, &u2);
                        let ns = norm_sqr_2q_scalar(&state, a, b, &u2);
                        assert_eq!(nv.to_bits(), ns.to_bits(), "avx2 norm_2q n={n} a={a} b={b}");
                    }
                }
            }
        }
    }
}

#[test]
fn dispatched_scale_is_bit_identical_to_scalar() {
    let mut rng = SplitMix64::seed_from_u64(0x51D0_0006);
    // odd-dim slices too: the vector kernel's tail loop must match
    for len in [1usize, 2, 3, 7, 8, 64, 65, 257] {
        let state: Vec<Complex64> = (0..len)
            .map(|_| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let s = rng.gen_range(0.25..4.0);
        let mut via_dispatch = state.clone();
        let mut via_scalar = state;
        scale(&mut via_dispatch, s);
        scale_scalar(&mut via_scalar, s);
        assert_bits_eq(&via_dispatch, &via_scalar, &format!("scale len={len}"));
    }
}

#[test]
fn norm_kernels_still_match_apply_then_sum() {
    // Sanity anchor: the structural-lane norms agree (to rounding) with
    // applying the gate and summing |amp|^2 the naive way.
    let mut rng = SplitMix64::seed_from_u64(0x51D0_0005);
    let n = 6;
    let state = random_state(n, &mut rng);
    let u1 = random_mat2(&mut rng);
    let u2 = random_mat4(&mut rng);
    for q in 0..n {
        let mut applied = state.clone();
        apply_1q_vec_blocked(&mut applied, q, &u1);
        let expect: f64 = applied.iter().map(|z| z.norm_sqr()).sum();
        let got = norm_sqr_1q(&state, q, &u1);
        assert!((got - expect).abs() <= 1e-11 * expect.abs().max(1.0));
    }
    for (a, b) in [(0usize, 1usize), (1, 0), (0, 5), (5, 0), (2, 4), (4, 1)] {
        let mut applied = state.clone();
        apply_2q_vec_blocked(&mut applied, a, b, &u2);
        let expect: f64 = applied.iter().map(|z| z.norm_sqr()).sum();
        let got = norm_sqr_2q(&state, a, b, &u2);
        assert!((got - expect).abs() <= 1e-11 * expect.abs().max(1.0));
    }
}
