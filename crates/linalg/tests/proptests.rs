//! Property-style tests for the linear-algebra substrate, driven by the
//! in-repo seeded RNG: each case loops over many deterministic samples.

use qaprox_linalg::matrix::Matrix;
use qaprox_linalg::random::{haar_unitary, Rng, SplitMix64};
use qaprox_linalg::{c64, expm, invert, polar_unitary, u3_matrix, zyz_decompose, Complex64};

const CASES: usize = 48;

fn small_matrix(n: usize, rng: &mut SplitMix64) -> Matrix {
    let data: Vec<Complex64> = (0..n * n)
        .map(|_| c64(rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)))
        .collect();
    Matrix::from_vec(n, n, data)
}

fn angle(rng: &mut SplitMix64) -> f64 {
    rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI)
}

#[test]
fn matmul_is_associative() {
    let mut rng = SplitMix64::seed_from_u64(1);
    for _ in 0..CASES {
        let (a, b, c) = (
            small_matrix(3, &mut rng),
            small_matrix(3, &mut rng),
            small_matrix(3, &mut rng),
        );
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert!(left.approx_eq(&right, 1e-9 * (1.0 + left.fro_norm())));
    }
}

#[test]
fn adjoint_is_an_involution() {
    let mut rng = SplitMix64::seed_from_u64(2);
    for _ in 0..CASES {
        let a = small_matrix(4, &mut rng);
        assert!(a.adjoint().adjoint().approx_eq(&a, 1e-12));
    }
}

#[test]
fn adjoint_reverses_products() {
    let mut rng = SplitMix64::seed_from_u64(3);
    for _ in 0..CASES {
        let (a, b) = (small_matrix(3, &mut rng), small_matrix(3, &mut rng));
        let lhs = a.matmul(&b).adjoint();
        let rhs = b.adjoint().matmul(&a.adjoint());
        assert!(lhs.approx_eq(&rhs, 1e-9 * (1.0 + lhs.fro_norm())));
    }
}

#[test]
fn kron_respects_mixed_product() {
    let mut rng = SplitMix64::seed_from_u64(4);
    for _ in 0..CASES {
        let (a, b, c, d) = (
            small_matrix(2, &mut rng),
            small_matrix(2, &mut rng),
            small_matrix(2, &mut rng),
            small_matrix(2, &mut rng),
        );
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.approx_eq(&rhs, 1e-8 * (1.0 + lhs.fro_norm())));
    }
}

#[test]
fn trace_is_linear() {
    let mut rng = SplitMix64::seed_from_u64(5);
    for _ in 0..CASES {
        let (a, b) = (small_matrix(3, &mut rng), small_matrix(3, &mut rng));
        let k: f64 = rng.gen_range(-2.0..2.0);
        let mut combo = a.scale_re(k);
        combo.axpy(Complex64::ONE, &b);
        let direct = combo.trace();
        let split = a.trace() * k + b.trace();
        assert!((direct - split).abs() < 1e-10);
    }
}

#[test]
fn u3_matrices_are_unitary() {
    let mut rng = SplitMix64::seed_from_u64(6);
    for _ in 0..CASES {
        let (theta, phi, lambda) = (angle(&mut rng), angle(&mut rng), angle(&mut rng));
        assert!(u3_matrix(theta, phi, lambda).is_unitary(1e-12));
    }
}

#[test]
fn zyz_round_trips_haar_unitaries() {
    for seed in 0..CASES as u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let u = haar_unitary(2, &mut rng);
        let z = zyz_decompose(&u);
        assert!(z.to_matrix().approx_eq(&u, 1e-9), "seed {seed}");
    }
}

#[test]
fn inverse_round_trips_when_well_conditioned() {
    let mut rng = SplitMix64::seed_from_u64(7);
    for _ in 0..CASES {
        // shift the diagonal to guarantee nonsingularity
        let mut shifted = small_matrix(3, &mut rng);
        for i in 0..3 {
            shifted[(i, i)] += c64(10.0, 0.0);
        }
        let inv = invert(&shifted).unwrap();
        assert!(shifted.matmul(&inv).approx_eq(&Matrix::identity(3), 1e-8));
    }
}

#[test]
fn expm_of_skew_hermitian_is_unitary() {
    use qaprox_linalg::matrix::{pauli_x, pauli_y, pauli_z};
    let mut rng = SplitMix64::seed_from_u64(8);
    for _ in 0..CASES {
        // H = x X + y Y + z Z; exp(iH) must be unitary
        let (x, y, z): (f64, f64, f64) = (
            rng.gen_range(-2.0..2.0),
            rng.gen_range(-2.0..2.0),
            rng.gen_range(-2.0..2.0),
        );
        let mut h = pauli_x().scale_re(x);
        h.axpy(c64(y, 0.0), &pauli_y());
        h.axpy(c64(z, 0.0), &pauli_z());
        let u = expm(&h.scale(Complex64::I));
        assert!(u.is_unitary(1e-9));
        // and exp(iH) exp(-iH) = I
        let v = expm(&h.scale(c64(0.0, -1.0)));
        assert!(u.matmul(&v).approx_eq(&Matrix::identity(2), 1e-9));
    }
}

#[test]
fn polar_factor_is_unitary_and_stable() {
    let mut rng = SplitMix64::seed_from_u64(9);
    for _ in 0..CASES {
        let mut shifted = small_matrix(3, &mut rng);
        for i in 0..3 {
            shifted[(i, i)] += c64(8.0, 0.0);
        }
        let q = polar_unitary(&shifted).unwrap();
        assert!(q.is_unitary(1e-9));
        // idempotence: the polar factor of a unitary is itself
        let q2 = polar_unitary(&q).unwrap();
        assert!(q2.approx_eq(&q, 1e-8));
    }
}

#[test]
fn haar_unitaries_preserve_norms() {
    for seed in 0..CASES as u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let n = 1usize << rng.gen_range(1usize..4);
        let u = haar_unitary(n, &mut rng);
        let v = qaprox_linalg::random::random_statevector(n, &mut rng);
        let w = u.matvec(&v);
        let norm: f64 = w.iter().map(|z| z.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-9, "seed {seed}");
    }
}

#[test]
fn complex_field_axioms() {
    let mut rng = SplitMix64::seed_from_u64(10);
    for _ in 0..CASES {
        let a = c64(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0));
        let b = c64(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0));
        assert!(((a + b) - (b + a)).abs() < 1e-12);
        assert!(((a * b) - (b * a)).abs() < 1e-12);
        assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-12);
        assert!((a.abs() * b.abs() - (a * b).abs()).abs() < 1e-9);
    }
}
