//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use qaprox_linalg::matrix::Matrix;
use qaprox_linalg::random::haar_unitary;
use qaprox_linalg::{c64, expm, invert, polar_unitary, u3_matrix, zyz_decompose, Complex64};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec((-3.0f64..3.0, -3.0f64..3.0), n * n).prop_map(move |entries| {
        let data: Vec<Complex64> = entries.into_iter().map(|(re, im)| c64(re, im)).collect();
        Matrix::from_vec(n, n, data)
    })
}

fn angles() -> impl Strategy<Value = (f64, f64, f64)> {
    (
        -std::f64::consts::PI..std::f64::consts::PI,
        -std::f64::consts::PI..std::f64::consts::PI,
        -std::f64::consts::PI..std::f64::consts::PI,
    )
}

proptest! {
    #[test]
    fn matmul_is_associative(a in small_matrix(3), b in small_matrix(3), c in small_matrix(3)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-9 * (1.0 + left.fro_norm())));
    }

    #[test]
    fn adjoint_is_an_involution(a in small_matrix(4)) {
        prop_assert!(a.adjoint().adjoint().approx_eq(&a, 1e-12));
    }

    #[test]
    fn adjoint_reverses_products(a in small_matrix(3), b in small_matrix(3)) {
        let lhs = a.matmul(&b).adjoint();
        let rhs = b.adjoint().matmul(&a.adjoint());
        prop_assert!(lhs.approx_eq(&rhs, 1e-9 * (1.0 + lhs.fro_norm())));
    }

    #[test]
    fn kron_respects_mixed_product(a in small_matrix(2), b in small_matrix(2),
                                   c in small_matrix(2), d in small_matrix(2)) {
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        prop_assert!(lhs.approx_eq(&rhs, 1e-8 * (1.0 + lhs.fro_norm())));
    }

    #[test]
    fn trace_is_linear(a in small_matrix(3), b in small_matrix(3), k in -2.0f64..2.0) {
        let mut combo = a.scale_re(k);
        combo.axpy(Complex64::ONE, &b);
        let direct = combo.trace();
        let split = a.trace() * k + b.trace();
        prop_assert!((direct - split).abs() < 1e-10);
    }

    #[test]
    fn u3_matrices_are_unitary(t in angles()) {
        let (theta, phi, lambda) = t;
        prop_assert!(u3_matrix(theta, phi, lambda).is_unitary(1e-12));
    }

    #[test]
    fn zyz_round_trips_haar_unitaries(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = haar_unitary(2, &mut rng);
        let z = zyz_decompose(&u);
        prop_assert!(z.to_matrix().approx_eq(&u, 1e-9));
    }

    #[test]
    fn inverse_round_trips_when_well_conditioned(a in small_matrix(3)) {
        // shift the diagonal to guarantee nonsingularity
        let mut shifted = a.clone();
        for i in 0..3 {
            shifted[(i, i)] += c64(10.0, 0.0);
        }
        let inv = invert(&shifted).unwrap();
        prop_assert!(shifted.matmul(&inv).approx_eq(&Matrix::identity(3), 1e-8));
    }

    #[test]
    fn expm_of_skew_hermitian_is_unitary(x in -2.0f64..2.0, y in -2.0f64..2.0, z in -2.0f64..2.0) {
        // H = x X + y Y + z Z; exp(iH) must be unitary
        use qaprox_linalg::matrix::{pauli_x, pauli_y, pauli_z};
        let mut h = pauli_x().scale_re(x);
        h.axpy(c64(y, 0.0), &pauli_y());
        h.axpy(c64(z, 0.0), &pauli_z());
        let u = expm(&h.scale(Complex64::I));
        prop_assert!(u.is_unitary(1e-9));
        // and exp(iH) exp(-iH) = I
        let v = expm(&h.scale(c64(0.0, -1.0)));
        prop_assert!(u.matmul(&v).approx_eq(&Matrix::identity(2), 1e-9));
    }

    #[test]
    fn polar_factor_is_unitary_and_stable(a in small_matrix(3)) {
        let mut shifted = a.clone();
        for i in 0..3 {
            shifted[(i, i)] += c64(8.0, 0.0);
        }
        let q = polar_unitary(&shifted).unwrap();
        prop_assert!(q.is_unitary(1e-9));
        // idempotence: the polar factor of a unitary is itself
        let q2 = polar_unitary(&q).unwrap();
        prop_assert!(q2.approx_eq(&q, 1e-8));
    }

    #[test]
    fn haar_unitaries_preserve_norms(seed in 0u64..500, dim in 1usize..4) {
        let n = 1usize << dim;
        let mut rng = StdRng::seed_from_u64(seed);
        let u = haar_unitary(n, &mut rng);
        let v = qaprox_linalg::random::random_statevector(n, &mut rng);
        let w = u.matvec(&v);
        let norm: f64 = w.iter().map(|z| z.norm_sqr()).sum();
        prop_assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn complex_field_axioms(are in -5.0f64..5.0, aim in -5.0f64..5.0,
                            bre in -5.0f64..5.0, bim in -5.0f64..5.0) {
        let a = c64(are, aim);
        let b = c64(bre, bim);
        prop_assert!(((a + b) - (b + a)).abs() < 1e-12);
        prop_assert!(((a * b) - (b * a)).abs() < 1e-12);
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-12);
        prop_assert!((a.abs() * b.abs() - (a * b).abs()).abs() < 1e-9);
    }
}
