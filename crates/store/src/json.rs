//! A minimal JSON value, parser, and serializer.
//!
//! The workspace builds offline with zero external dependencies, so the
//! store's manifests and the `qaprox-serve` wire protocol share this
//! hand-rolled implementation. It covers exactly what those producers emit:
//! objects (insertion-ordered), arrays, strings with standard escapes,
//! finite numbers, booleans, and null. Non-finite numbers serialize as
//! `null` (JSON has no NaN/Infinity).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order so serialized manifests
/// and protocol lines are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (integers ride along as f64; exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as u64 (numeric, non-negative, integral).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as usize.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The value as &str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// Typed field helpers for protocol/manifest decoding.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }
    /// Numeric field as f64.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }
    /// Numeric field as u64.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }
    /// Numeric field as usize.
    pub fn get_usize(&self, key: &str) -> Option<usize> {
        self.get(key).and_then(Json::as_usize)
    }
    /// Boolean field.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Json::as_bool)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                if v.is_finite() {
                    // Rust's f64 Display emits the shortest string that
                    // round-trips exactly, so numbers survive dump -> parse.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

// Serializes to a compact single-line string (`to_string` comes with it).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value from `text` (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        c => return Err(self.err(format!("bad escape '\\{}'", c as char))),
                    }
                }
                Some(_) => {
                    // consume one UTF-8 character (input is valid UTF-8 by
                    // construction: &str)
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj(vec![
            ("name", Json::Str("qaprox".into())),
            ("n", Json::Num(42.0)),
            ("pi", Json::Num(std::f64::consts::PI)),
            ("neg", Json::Num(-1.25e-8)),
            ("flag", Json::Bool(true)),
            ("nil", Json::Null),
            (
                "arr",
                Json::Arr(vec![Json::Num(1.0), Json::Str("x\n\"y\"".into())]),
            ),
            ("obj", Json::obj(vec![("k", Json::Num(0.0))])),
        ]);
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn f64_numbers_round_trip_exactly() {
        for x in [
            0.1,
            1.0 / 3.0,
            std::f64::consts::PI,
            1e300,
            -2.2250738585072014e-308,
            123_456_789.123_456_79,
        ] {
            let text = Json::Num(x).to_string();
            let back = parse(&text).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn parses_whitespace_escapes_and_unicode() {
        let v = parse(" { \"a\" : [ 1 , \"\\u00e9\\t\\\\\" , { } ] } ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_str(), Some("é\t\\"));
        // surrogate pair
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn object_get_helpers() {
        let v = parse("{\"s\":\"x\",\"n\":3,\"b\":false}").unwrap();
        assert_eq!(v.get_str("s"), Some("x"));
        assert_eq!(v.get_usize("n"), Some(3));
        assert_eq!(v.get_bool("b"), Some(false));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("s").unwrap().as_f64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "tru",
            "1 2",
            "{\"a\":1,}",
            "nul",
            "[1 2]",
            "\"\\q\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn control_characters_escape() {
        let v = Json::Str("\u{01}x".into());
        assert_eq!(v.to_string(), "\"\\u0001x\"");
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }
}
