//! Content-address keys.
//!
//! A [`Key`] is the stable 128-bit hash of an artifact's identity:
//!
//! * **populations** — `{target-unitary canonical bytes, synthesis-config
//!   fingerprint, seed}`;
//! * **results** — `{population key, backend-config fingerprint, job seed}`.
//!
//! Config fingerprints are canonical `k=v;k=v` strings (floats printed with
//! `{:.17e}` so numerically identical configs always fingerprint equal).

use qaprox_linalg::hashing::Hash128;
use qaprox_linalg::Matrix;

/// A 128-bit content-address key, displayed as 32 hex characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

impl Key {
    /// The 32-character lowercase hex form (the on-disk file stem).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the 32-character hex form.
    pub fn parse(hex: &str) -> Option<Key> {
        if hex.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&hex[..16], 16).ok()?;
        let lo = u64::from_str_radix(&hex[16..], 16).ok()?;
        Some(Key { hi, lo })
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// The population key for a synthesis job: target unitary + config + seed.
pub fn population_key(target: &Matrix, config_fingerprint: &str, seed: u64) -> Key {
    let mut h = Hash128::new();
    h.update(b"qaprox-store/pop/v1\0");
    h.update(&target.canonical_bytes());
    h.update(b"\0");
    h.update(config_fingerprint.as_bytes());
    h.update(b"\0");
    h.update_u64(seed);
    let (hi, lo) = h.finish();
    Key { hi, lo }
}

/// A target-only grouping tag: the stable hash of the target unitary alone,
/// ignoring synthesis config and seed. Populations stored under different
/// configs/seeds for the same target share it, which is what the service's
/// graceful-degradation fallback scans for (see `Store::populations_tagged`).
pub fn target_tag(target: &Matrix) -> String {
    let mut h = Hash128::new();
    h.update(b"qaprox-store/target/v1\0");
    h.update(&target.canonical_bytes());
    h.finish_hex()
}

/// The result key for an execution job: population key + backend + job seed.
pub fn result_key(population: &Key, backend_fingerprint: &str, job_seed: u64) -> Key {
    let mut h = Hash128::new();
    h.update(b"qaprox-store/res/v1\0");
    h.update_u64(population.hi);
    h.update_u64(population.lo);
    h.update(backend_fingerprint.as_bytes());
    h.update(b"\0");
    h.update_u64(job_seed);
    let (hi, lo) = h.finish();
    Key { hi, lo }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_linalg::c64;

    fn some_matrix(phase: f64) -> Matrix {
        let mut m = Matrix::identity(4);
        m[(0, 0)] = c64(phase.cos(), phase.sin());
        m
    }

    #[test]
    fn hex_round_trips() {
        let k = population_key(&some_matrix(0.3), "max_cnots=3", 7);
        assert_eq!(Key::parse(&k.hex()), Some(k));
        assert_eq!(k.hex().len(), 32);
        assert_eq!(Key::parse("not-a-key"), None);
        assert_eq!(Key::parse(&"z".repeat(32)), None);
    }

    #[test]
    fn keys_separate_by_every_component() {
        let base = population_key(&some_matrix(0.3), "cfg", 0);
        assert_eq!(base, population_key(&some_matrix(0.3), "cfg", 0));
        assert_ne!(base, population_key(&some_matrix(0.31), "cfg", 0));
        assert_ne!(base, population_key(&some_matrix(0.3), "cfg2", 0));
        assert_ne!(base, population_key(&some_matrix(0.3), "cfg", 1));
    }

    #[test]
    fn target_tags_depend_only_on_the_target() {
        let tag = target_tag(&some_matrix(0.3));
        assert_eq!(tag, target_tag(&some_matrix(0.3)));
        assert_ne!(tag, target_tag(&some_matrix(0.4)));
        assert_eq!(tag.len(), 32);
        // a tag is not a population key: configs/seeds never enter it
        assert_ne!(
            Some(population_key(&some_matrix(0.3), "cfg", 0)),
            Key::parse(&tag)
        );
    }

    #[test]
    fn result_keys_separate_from_population_keys() {
        let pop = population_key(&some_matrix(0.1), "cfg", 0);
        let res = result_key(&pop, "device=ourense", 0);
        assert_ne!(pop, res);
        assert_ne!(res, result_key(&pop, "device=rome", 0));
        assert_ne!(res, result_key(&pop, "device=ourense", 1));
    }
}
