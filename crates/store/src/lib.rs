//! # qaprox-store
//!
//! Content-addressed on-disk artifact store for synthesis populations and
//! execution results.
//!
//! Synthesizing a population for a target unitary is the expensive step of
//! every workflow in the paper reproduction; executing it on a simulated
//! backend is the second. Both are pure functions of their inputs, so both
//! are cacheable. This crate gives the workspace a durable cache:
//!
//! * [`Key`] — a stable 128-bit content address. Population keys hash the
//!   target unitary's canonical bytes, a synthesis-config fingerprint, and
//!   the seed ([`population_key`]); result keys hash the population key, a
//!   backend fingerprint, and the job seed ([`result_key`]).
//! * [`PopulationArtifact`] / [`ResultArtifact`] — versioned manifests
//!   (JSON, checksummed) plus QASM dumps, losslessly round-trippable.
//! * [`PartialCheckpoint`] — an in-progress synthesis snapshot so a killed
//!   job resumes with its remaining node budget instead of restarting.
//! * [`Store`] — the on-disk store itself: atomic writes, corruption
//!   detection on load, persistent hit/miss counters, and LRU [`Store::gc`].
//!
//! The JSON machinery is hand-rolled ([`json`]) to keep the workspace
//! zero-external-dependency; `qaprox-serve` reuses it for its wire protocol.

pub mod artifact;
pub mod json;
pub mod key;
pub mod store;

pub use artifact::{DecodeError, PartialCheckpoint, PopulationArtifact, ResultArtifact, ResultRow};
pub use json::Json;
pub use key::{population_key, result_key, Key};
pub use store::{GcReport, Stats, Store, StoreError};
