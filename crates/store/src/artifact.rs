//! On-disk artifact shapes: populations, partial checkpoints, results.
//!
//! A population is stored as two files — a QASM dump of every circuit and a
//! versioned JSON manifest carrying the `ApproxCircuit` metadata (cnots,
//! depth, hs_distance) plus a checksum of the QASM bytes for corruption
//! detection. Partial checkpoints reuse the same shape with a node-progress
//! counter so a killed synthesis job resumes instead of restarting. Results
//! are a single JSON file of scored rows.

use crate::json::{parse, Json};
use qaprox_circuit::{from_qasm, qasm::to_qasm, Circuit};
use qaprox_linalg::hashing::hash128_hex;
use qaprox_synth::ApproxCircuit;

/// Manifest format version; bump on any incompatible layout change.
pub const MANIFEST_VERSION: u64 = 1;

/// Separator line between circuits in a population QASM dump.
pub const QASM_SEPARATOR: &str = "// ---qaprox-circuit---";

/// A persisted population: selected circuits plus the minimal-HS circuit and
/// the synthesis-exploration counter.
#[derive(Debug, Clone)]
pub struct PopulationArtifact {
    /// Selected approximate circuits.
    pub circuits: Vec<ApproxCircuit>,
    /// The best (minimum-HS) circuit synthesis found.
    pub minimal_hs: ApproxCircuit,
    /// Total synthesis nodes evaluated to produce this population.
    pub explored: usize,
}

/// A partial synthesis checkpoint: everything evaluated so far plus the node
/// count already spent, so a resumed job gets budget credit.
#[derive(Debug, Clone)]
pub struct PartialCheckpoint {
    /// Candidates recorded so far (unselected intermediate stream).
    pub circuits: Vec<ApproxCircuit>,
    /// Synthesis nodes already evaluated.
    pub nodes_done: usize,
}

/// One scored row of an execution result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// CNOT count of the executed circuit.
    pub cnots: usize,
    /// HS distance recorded at synthesis time.
    pub hs_distance: f64,
    /// Static predicted score from the noise-budget estimator (computed
    /// before simulation; the pre-ranking signal).
    pub predicted: f64,
    /// Scalar score (metric-dependent).
    pub score: f64,
    /// True when `score` is a certified static bound from the QA5xx
    /// equivalence checker rather than a simulated measurement — the row
    /// never touched a backend.
    pub certified: bool,
}

/// A persisted execution result: scored rows plus the reference score.
#[derive(Debug, Clone)]
pub struct ResultArtifact {
    /// Reference-circuit score under the same backend/metric.
    pub ref_score: f64,
    /// Scored rows, in population order.
    pub rows: Vec<ResultRow>,
    /// QASM dump of the reference circuit the rows were scored against.
    /// Present only on ε-aware runs: it is what lets a later spec prove
    /// its own reference equivalent and reuse this artifact without
    /// simulating (the serve certified fast path).
    pub reference_qasm: Option<String>,
}

/// Corruption or format mismatch found while decoding an artifact.
#[derive(Debug, Clone)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "artifact decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn bad(msg: impl Into<String>) -> DecodeError {
    DecodeError(msg.into())
}

fn circuit_meta(ap: &ApproxCircuit) -> Json {
    Json::obj(vec![
        ("cnots", Json::Num(ap.cnots as f64)),
        ("depth", Json::Num(ap.circuit.depth() as f64)),
        ("hs_distance", Json::Num(ap.hs_distance)),
    ])
}

/// Encodes a circuit list as one QASM blob (separator-delimited dumps) plus
/// the per-circuit metadata array.
fn encode_circuits(circuits: &[ApproxCircuit]) -> (String, Json) {
    let mut blob = String::new();
    let mut metas = Vec::with_capacity(circuits.len());
    for (i, ap) in circuits.iter().enumerate() {
        if i > 0 {
            blob.push_str(QASM_SEPARATOR);
            blob.push('\n');
        }
        blob.push_str(&to_qasm(&ap.circuit));
        metas.push(circuit_meta(ap));
    }
    (blob, Json::Arr(metas))
}

fn decode_circuits(blob: &str, metas: &[Json]) -> Result<Vec<ApproxCircuit>, DecodeError> {
    let dumps: Vec<&str> = if blob.is_empty() {
        Vec::new()
    } else {
        blob.split(&format!("{QASM_SEPARATOR}\n")).collect()
    };
    if dumps.len() != metas.len() {
        return Err(bad(format!(
            "manifest lists {} circuits but dump holds {}",
            metas.len(),
            dumps.len()
        )));
    }
    dumps
        .iter()
        .zip(metas)
        .enumerate()
        .map(|(i, (dump, meta))| {
            let circuit: Circuit = from_qasm(dump).map_err(|e| bad(format!("circuit {i}: {e}")))?;
            let hs = meta
                .get_f64("hs_distance")
                .ok_or_else(|| bad(format!("circuit {i}: missing hs_distance")))?;
            let cnots = meta
                .get_usize("cnots")
                .ok_or_else(|| bad(format!("circuit {i}: missing cnots")))?;
            let ap = ApproxCircuit::new(circuit, hs);
            if ap.cnots != cnots {
                return Err(bad(format!(
                    "circuit {i}: manifest says {cnots} CNOTs, dump has {}",
                    ap.cnots
                )));
            }
            Ok(ap)
        })
        .collect()
}

impl PopulationArtifact {
    /// Serializes to `(manifest_json_line, qasm_blob)`. The manifest embeds
    /// a hash of the QASM bytes; [`PopulationArtifact::decode`] verifies it.
    pub fn encode(&self) -> (String, String) {
        let mut all: Vec<ApproxCircuit> = self.circuits.clone();
        all.push(self.minimal_hs.clone());
        let (blob, metas) = encode_circuits(&all);
        let manifest = Json::obj(vec![
            ("version", Json::Num(MANIFEST_VERSION as f64)),
            ("kind", Json::Str("population".into())),
            ("explored", Json::Num(self.explored as f64)),
            // minimal_hs rides as the last dumped circuit
            ("selected", Json::Num(self.circuits.len() as f64)),
            ("qasm_hash", Json::Str(hash128_hex(blob.as_bytes()))),
            ("circuits", metas),
        ]);
        (manifest.to_string(), blob)
    }

    /// Decodes and verifies a manifest + QASM pair.
    pub fn decode(manifest: &str, blob: &str) -> Result<PopulationArtifact, DecodeError> {
        let m = parse(manifest).map_err(|e| bad(e.to_string()))?;
        if m.get_u64("version") != Some(MANIFEST_VERSION) {
            return Err(bad("unsupported manifest version"));
        }
        if m.get_str("kind") != Some("population") {
            return Err(bad("manifest kind is not 'population'"));
        }
        if m.get_str("qasm_hash") != Some(hash128_hex(blob.as_bytes()).as_str()) {
            return Err(bad("qasm dump checksum mismatch (corrupt artifact)"));
        }
        let metas = m
            .get("circuits")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing circuits array"))?;
        let selected = m
            .get_usize("selected")
            .ok_or_else(|| bad("missing selected count"))?;
        let mut all = decode_circuits(blob, metas)?;
        if all.len() != selected + 1 {
            return Err(bad("selected count does not match dumped circuits"));
        }
        let minimal_hs = all.pop().expect("len >= 1 checked above");
        Ok(PopulationArtifact {
            circuits: all,
            minimal_hs,
            explored: m.get_usize("explored").unwrap_or(0),
        })
    }
}

impl PartialCheckpoint {
    /// Serializes to `(manifest_json_line, qasm_blob)`.
    pub fn encode(&self) -> (String, String) {
        let (blob, metas) = encode_circuits(&self.circuits);
        let manifest = Json::obj(vec![
            ("version", Json::Num(MANIFEST_VERSION as f64)),
            ("kind", Json::Str("partial".into())),
            ("nodes_done", Json::Num(self.nodes_done as f64)),
            ("qasm_hash", Json::Str(hash128_hex(blob.as_bytes()))),
            ("circuits", metas),
        ]);
        (manifest.to_string(), blob)
    }

    /// Decodes and verifies a manifest + QASM pair.
    pub fn decode(manifest: &str, blob: &str) -> Result<PartialCheckpoint, DecodeError> {
        let m = parse(manifest).map_err(|e| bad(e.to_string()))?;
        if m.get_u64("version") != Some(MANIFEST_VERSION) {
            return Err(bad("unsupported manifest version"));
        }
        if m.get_str("kind") != Some("partial") {
            return Err(bad("manifest kind is not 'partial'"));
        }
        if m.get_str("qasm_hash") != Some(hash128_hex(blob.as_bytes()).as_str()) {
            return Err(bad("qasm dump checksum mismatch (corrupt checkpoint)"));
        }
        let metas = m
            .get("circuits")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing circuits array"))?;
        Ok(PartialCheckpoint {
            circuits: decode_circuits(blob, metas)?,
            nodes_done: m
                .get_usize("nodes_done")
                .ok_or_else(|| bad("missing nodes_done"))?,
        })
    }
}

impl ResultArtifact {
    /// Serializes to one JSON line. Rows encode as 4-cell tuples unless a
    /// row is certified (then a 5th boolean cell rides along), so artifacts
    /// from pre-certification builds stay byte-identical.
    pub fn encode(&self) -> String {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                let mut cells = vec![
                    Json::Num(r.cnots as f64),
                    Json::Num(r.hs_distance),
                    Json::Num(r.predicted),
                    Json::Num(r.score),
                ];
                if r.certified {
                    cells.push(Json::Bool(true));
                }
                Json::Arr(cells)
            })
            .collect();
        let mut fields = vec![
            ("version".to_string(), Json::Num(MANIFEST_VERSION as f64)),
            ("kind".to_string(), Json::Str("result".into())),
            ("ref_score".to_string(), Json::Num(self.ref_score)),
            ("rows".to_string(), Json::Arr(rows)),
        ];
        if let Some(qasm) = &self.reference_qasm {
            fields.push(("reference_qasm".to_string(), Json::Str(qasm.clone())));
        }
        Json::Obj(fields).to_string()
    }

    /// Decodes a JSON line.
    pub fn decode(text: &str) -> Result<ResultArtifact, DecodeError> {
        let m = parse(text).map_err(|e| bad(e.to_string()))?;
        if m.get_u64("version") != Some(MANIFEST_VERSION) {
            return Err(bad("unsupported result version"));
        }
        if m.get_str("kind") != Some("result") {
            return Err(bad("manifest kind is not 'result'"));
        }
        let rows = m
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing rows"))?
            .iter()
            .enumerate()
            .map(|(i, row)| {
                // 4 cells = legacy simulated row; 5th boolean cell (newer
                // artifacts) marks a certified static-bound row
                let cells = row.as_arr().filter(|c| c.len() == 4 || c.len() == 5);
                let cells = cells.ok_or_else(|| bad(format!("row {i}: not a 4/5-tuple")))?;
                Ok(ResultRow {
                    cnots: cells[0]
                        .as_usize()
                        .ok_or_else(|| bad(format!("row {i}: bad cnots")))?,
                    hs_distance: cells[1]
                        .as_f64()
                        .ok_or_else(|| bad(format!("row {i}: bad hs")))?,
                    predicted: cells[2]
                        .as_f64()
                        .ok_or_else(|| bad(format!("row {i}: bad predicted")))?,
                    score: cells[3]
                        .as_f64()
                        .ok_or_else(|| bad(format!("row {i}: bad score")))?,
                    certified: match cells.get(4) {
                        None => false,
                        Some(Json::Bool(b)) => *b,
                        Some(_) => return Err(bad(format!("row {i}: bad certified flag"))),
                    },
                })
            })
            .collect::<Result<Vec<_>, DecodeError>>()?;
        Ok(ResultArtifact {
            ref_score: m
                .get_f64("ref_score")
                .ok_or_else(|| bad("missing ref_score"))?,
            rows,
            reference_qasm: m.get_str("reference_qasm").map(str::to_string),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn some_population() -> PopulationArtifact {
        let mk = |cnots: usize, angle: f64, dist: f64| {
            let mut c = Circuit::new(2);
            c.h(0);
            for _ in 0..cnots {
                c.cx(0, 1);
            }
            c.rz(angle, 1);
            ApproxCircuit::new(c, dist)
        };
        PopulationArtifact {
            circuits: vec![mk(1, 0.123_456_789_012_345_68, 0.05), mk(2, -2.5, 0.01)],
            minimal_hs: mk(3, 1e-17, 1e-12),
            explored: 77,
        }
    }

    #[test]
    fn population_round_trips_exactly() {
        let pop = some_population();
        let (manifest, blob) = pop.encode();
        let back = PopulationArtifact::decode(&manifest, &blob).unwrap();
        assert_eq!(back.explored, 77);
        assert_eq!(back.circuits.len(), 2);
        assert_eq!(back.minimal_hs.cnots, 3);
        for (a, b) in pop.circuits.iter().zip(&back.circuits) {
            assert_eq!(a.circuit, b.circuit, "instruction-exact round trip");
            assert_eq!(a.hs_distance.to_bits(), b.hs_distance.to_bits());
        }
        assert_eq!(pop.minimal_hs.circuit, back.minimal_hs.circuit);
    }

    #[test]
    fn corruption_is_detected() {
        let (manifest, blob) = some_population().encode();
        let mut corrupt = blob.clone();
        corrupt.replace_range(0..1, "z");
        assert!(PopulationArtifact::decode(&manifest, &corrupt).is_err());
        assert!(PopulationArtifact::decode("not json", &blob).is_err());
        assert!(PopulationArtifact::decode(&manifest, "").is_err());
    }

    #[test]
    fn partial_checkpoint_round_trips() {
        let pop = some_population();
        let part = PartialCheckpoint {
            circuits: pop.circuits.clone(),
            nodes_done: 31,
        };
        let (manifest, blob) = part.encode();
        let back = PartialCheckpoint::decode(&manifest, &blob).unwrap();
        assert_eq!(back.nodes_done, 31);
        assert_eq!(back.circuits.len(), 2);
        assert_eq!(back.circuits[1].circuit, pop.circuits[1].circuit);
    }

    #[test]
    fn empty_partial_round_trips() {
        let part = PartialCheckpoint {
            circuits: Vec::new(),
            nodes_done: 0,
        };
        let (manifest, blob) = part.encode();
        assert!(blob.is_empty());
        let back = PartialCheckpoint::decode(&manifest, &blob).unwrap();
        assert!(back.circuits.is_empty());
    }

    #[test]
    fn result_round_trips() {
        let res = ResultArtifact {
            ref_score: 0.125,
            rows: vec![
                ResultRow {
                    cnots: 1,
                    hs_distance: 0.05,
                    predicted: 0.84,
                    score: 0.3,
                    certified: false,
                },
                ResultRow {
                    cnots: 4,
                    hs_distance: 1e-9,
                    predicted: 0.62,
                    score: 0.001,
                    certified: true,
                },
            ],
            reference_qasm: Some("OPENQASM 2.0;\n".into()),
        };
        let back = ResultArtifact::decode(&res.encode()).unwrap();
        assert_eq!(back.ref_score, 0.125);
        assert_eq!(back.rows, res.rows);
        assert_eq!(back.reference_qasm, res.reference_qasm);
        assert!(ResultArtifact::decode("{}").is_err());
    }

    #[test]
    fn legacy_four_cell_result_rows_still_decode() {
        // the exact shape pre-certification builds wrote: 4-cell rows, no
        // reference_qasm field
        let text = r#"{"version":1,"kind":"result","ref_score":0.5,"rows":[[2,0.03,0.9,0.2]]}"#;
        let back = ResultArtifact::decode(text).unwrap();
        assert_eq!(back.rows.len(), 1);
        assert!(!back.rows[0].certified);
        assert!(back.reference_qasm.is_none());
        // and an uncertified artifact re-encodes to the same legacy shape
        assert_eq!(back.encode(), text);
    }
}
