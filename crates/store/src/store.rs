//! The content-addressed on-disk store.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/index.json          # entry table + LRU clock + hit/miss counters
//! <root>/objects/pop-<key>.json   # population manifest
//! <root>/objects/pop-<key>.qasm   # population QASM dump
//! <root>/objects/part-<key>.json  # partial-synthesis checkpoint manifest
//! <root>/objects/part-<key>.qasm  # partial-synthesis checkpoint dump
//! <root>/objects/res-<key>.json   # execution result
//! ```
//!
//! Every write is atomic (`tmp` file + rename), manifests carry checksums of
//! their QASM dumps (corruption detected on load), the index tracks a
//! logical LRU clock for [`Store::gc`], and hit/miss counters persist so
//! `qaprox store stats` reports cache effectiveness across processes.
//!
//! One process mutates a store at a time (the serve scheduler serializes
//! through a mutex); concurrent *processes* get last-writer-wins on the
//! index, which is safe for artifacts because they are content-addressed.

use crate::artifact::{PartialCheckpoint, PopulationArtifact, ResultArtifact};
use crate::json::{parse, Json};
use crate::key::Key;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Index format version.
const INDEX_VERSION: u64 = 1;

/// What kind of artifact an index entry points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A completed population (`pop-*`).
    Population,
    /// A partial synthesis checkpoint (`part-*`).
    Partial,
    /// An execution result (`res-*`).
    Result,
}

impl Kind {
    fn prefix(self) -> &'static str {
        match self {
            Kind::Population => "pop",
            Kind::Partial => "part",
            Kind::Result => "res",
        }
    }

    fn parse(s: &str) -> Option<Kind> {
        match s {
            "pop" => Some(Kind::Population),
            "part" => Some(Kind::Partial),
            "res" => Some(Kind::Result),
            _ => None,
        }
    }
}

/// One index entry.
#[derive(Debug, Clone)]
struct Entry {
    kind: Kind,
    bytes: u64,
    last_used: u64,
    /// Optional caller-supplied grouping label (e.g. a target fingerprint):
    /// lets degradation fall back to "any cached population for this target"
    /// when an exact content-addressed lookup misses.
    tag: Option<String>,
}

#[derive(Debug, Default)]
struct Index {
    seq: u64,
    hits: u64,
    misses: u64,
    puts: u64,
    entries: BTreeMap<(String, Key), Entry>,
}

/// A store failure.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// An artifact exists but failed checksum/format verification.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corruption: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Aggregate store statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stats {
    /// Cache hits recorded across the store's lifetime.
    pub hits: u64,
    /// Cache misses recorded across the store's lifetime.
    pub misses: u64,
    /// Artifacts written.
    pub puts: u64,
    /// Live entries by kind: (populations, partials, results).
    pub entries: (usize, usize, usize),
    /// Total bytes of live artifacts.
    pub total_bytes: u64,
}

/// What [`Store::gc`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcReport {
    /// Entries evicted.
    pub evicted: usize,
    /// Bytes reclaimed.
    pub reclaimed_bytes: u64,
    /// Bytes remaining after collection.
    pub remaining_bytes: u64,
}

/// The content-addressed artifact store.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    index: Mutex<Index>,
}

fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    // Failpoint `store.write`: `error` rejects the write, `torn` lands the
    // first half of the payload at the *final* path (bypassing the tmp +
    // rename discipline) — exactly the state a mid-write crash would leave
    // if writes were not atomic, which checksums must catch on read.
    qaprox_fault::fail_point!("store.write", |action| match action {
        qaprox_fault::FaultAction::Torn => {
            std::fs::write(path, &bytes[..bytes.len() / 2])?;
            Ok(())
        }
        _ => Err(StoreError::Io(std::io::Error::other(
            qaprox_fault::injected_error("store.write"),
        ))),
    });
    // unique tmp name: concurrent writers of the same key (same content,
    // since keys are content addresses) must not interleave on one tmp file
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp-{}-{seq}", std::process::id()));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(root.join("objects"))?;
        let index = match std::fs::read_to_string(root.join("index.json")) {
            Ok(text) => Self::parse_index(&text)
                .ok_or_else(|| StoreError::Corrupt("unreadable index.json".into()))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Index::default(),
            Err(e) => return Err(e.into()),
        };
        Ok(Store {
            root,
            index: Mutex::new(index),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn parse_index(text: &str) -> Option<Index> {
        let v = parse(text).ok()?;
        if v.get_u64("version") != Some(INDEX_VERSION) {
            return None;
        }
        let mut idx = Index {
            seq: v.get_u64("seq")?,
            hits: v.get_u64("hits")?,
            misses: v.get_u64("misses")?,
            puts: v.get_u64("puts")?,
            entries: BTreeMap::new(),
        };
        for item in v.get("entries")?.as_arr()? {
            let kind = Kind::parse(item.get_str("kind")?)?;
            let key = Key::parse(item.get_str("key")?)?;
            idx.entries.insert(
                (kind.prefix().to_string(), key),
                Entry {
                    kind,
                    bytes: item.get_u64("bytes")?,
                    last_used: item.get_u64("last_used")?,
                    tag: item.get_str("tag").map(str::to_string),
                },
            );
        }
        Some(idx)
    }

    fn write_index(&self, idx: &Index) -> Result<(), StoreError> {
        let entries: Vec<Json> = idx
            .entries
            .iter()
            .map(|((_, key), e)| {
                let mut fields = vec![
                    ("kind", Json::Str(e.kind.prefix().into())),
                    ("key", Json::Str(key.hex())),
                    ("bytes", Json::Num(e.bytes as f64)),
                    ("last_used", Json::Num(e.last_used as f64)),
                ];
                if let Some(tag) = &e.tag {
                    fields.push(("tag", Json::Str(tag.clone())));
                }
                Json::obj(fields)
            })
            .collect();
        let v = Json::obj(vec![
            ("version", Json::Num(INDEX_VERSION as f64)),
            ("seq", Json::Num(idx.seq as f64)),
            ("hits", Json::Num(idx.hits as f64)),
            ("misses", Json::Num(idx.misses as f64)),
            ("puts", Json::Num(idx.puts as f64)),
            ("entries", Json::Arr(entries)),
        ]);
        atomic_write(&self.root.join("index.json"), v.to_string().as_bytes())
    }

    fn object_path(&self, kind: Kind, key: &Key, ext: &str) -> PathBuf {
        self.root
            .join("objects")
            .join(format!("{}-{}.{ext}", kind.prefix(), key.hex()))
    }

    fn files_for(&self, kind: Kind, key: &Key) -> Vec<PathBuf> {
        match kind {
            Kind::Result => vec![self.object_path(kind, key, "json")],
            _ => vec![
                self.object_path(kind, key, "json"),
                self.object_path(kind, key, "qasm"),
            ],
        }
    }

    /// Records an access (hit or miss) and bumps the LRU clock on hit.
    fn touch(&self, kind: Kind, key: &Key, hit: bool) -> Result<(), StoreError> {
        let mut idx = self.index.lock().expect("store index poisoned");
        if hit {
            idx.hits += 1;
            idx.seq += 1;
            let seq = idx.seq;
            if let Some(e) = idx.entries.get_mut(&(kind.prefix().to_string(), *key)) {
                e.last_used = seq;
            }
        } else {
            idx.misses += 1;
        }
        self.write_index(&idx)
    }

    fn record_put(
        &self,
        kind: Kind,
        key: &Key,
        bytes: u64,
        tag: Option<&str>,
    ) -> Result<(), StoreError> {
        let mut idx = self.index.lock().expect("store index poisoned");
        idx.puts += 1;
        idx.seq += 1;
        let seq = idx.seq;
        idx.entries.insert(
            (kind.prefix().to_string(), *key),
            Entry {
                kind,
                bytes,
                last_used: seq,
                tag: tag.map(str::to_string),
            },
        );
        self.write_index(&idx)
    }

    fn remove_entry(&self, kind: Kind, key: &Key) -> Result<(), StoreError> {
        // Failpoint `store.evict`: an eviction that fails mid-way.
        qaprox_fault::fail_point!("store.evict", |_action| {
            Err(StoreError::Io(std::io::Error::other(
                qaprox_fault::injected_error("store.evict"),
            )))
        });
        for path in self.files_for(kind, key) {
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        let mut idx = self.index.lock().expect("store index poisoned");
        idx.entries.remove(&(kind.prefix().to_string(), *key));
        self.write_index(&idx)
    }

    fn read_pair(&self, kind: Kind, key: &Key) -> Result<Option<(String, String)>, StoreError> {
        // Failpoint `store.read`: a transient read failure (flaky disk/NFS).
        qaprox_fault::fail_point!("store.read", |_action| {
            Err(StoreError::Io(std::io::Error::other(
                qaprox_fault::injected_error("store.read"),
            )))
        });
        let manifest_path = self.object_path(kind, key, "json");
        let manifest = match std::fs::read_to_string(&manifest_path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.touch(kind, key, false)?;
                return Ok(None);
            }
            Err(e) => return Err(e.into()),
        };
        let blob = match std::fs::read_to_string(self.object_path(kind, key, "qasm")) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e.into()),
        };
        Ok(Some((manifest, blob)))
    }

    fn put_pair(
        &self,
        kind: Kind,
        key: &Key,
        manifest: &str,
        blob: &str,
        tag: Option<&str>,
    ) -> Result<(), StoreError> {
        #[cfg(feature = "strict-invariants")]
        {
            // re-verify the checksum we just embedded before it hits disk
            let m = parse(manifest)
                .unwrap_or_else(|e| panic!("strict-invariants: manifest not json: {e}"));
            debug_assert_eq!(
                m.get_str("qasm_hash"),
                Some(qaprox_linalg::hashing::hash128_hex(blob.as_bytes()).as_str()),
                "strict-invariants: manifest checksum mismatch on put"
            );
        }
        // dump first, manifest last: a crash between the two leaves no
        // manifest, so the entry simply reads as absent
        atomic_write(&self.object_path(kind, key, "qasm"), blob.as_bytes())?;
        atomic_write(&self.object_path(kind, key, "json"), manifest.as_bytes())?;
        self.record_put(kind, key, (manifest.len() + blob.len()) as u64, tag)
    }

    /// Looks up a completed population. Counts a hit or miss; corrupt
    /// artifacts are evicted and surfaced as [`StoreError::Corrupt`].
    pub fn get_population(&self, key: &Key) -> Result<Option<PopulationArtifact>, StoreError> {
        let Some((manifest, blob)) = self.read_pair(Kind::Population, key)? else {
            return Ok(None);
        };
        match PopulationArtifact::decode(&manifest, &blob) {
            Ok(pop) => {
                self.touch(Kind::Population, key, true)?;
                Ok(Some(pop))
            }
            Err(e) => {
                self.remove_entry(Kind::Population, key)?;
                Err(StoreError::Corrupt(e.to_string()))
            }
        }
    }

    /// Persists a completed population and clears any partial checkpoint for
    /// the same key.
    pub fn put_population(&self, key: &Key, pop: &PopulationArtifact) -> Result<(), StoreError> {
        self.put_population_tagged(key, pop, None)
    }

    /// Like [`Store::put_population`] but attaches an optional tag (e.g. a
    /// target fingerprint) so [`Store::populations_tagged`] can later find
    /// every cached population for the same target, whatever config/seed
    /// produced it.
    pub fn put_population_tagged(
        &self,
        key: &Key,
        pop: &PopulationArtifact,
        tag: Option<&str>,
    ) -> Result<(), StoreError> {
        let (manifest, blob) = pop.encode();
        self.put_pair(Kind::Population, key, &manifest, &blob, tag)?;
        self.remove_entry(Kind::Partial, key)
    }

    /// Keys of every live population carrying `tag`, most recently used
    /// first. Does not touch hit/miss statistics — this is the degradation
    /// fallback's discovery scan, not a cache lookup.
    pub fn populations_tagged(&self, tag: &str) -> Vec<Key> {
        let idx = self.index.lock().expect("store index poisoned");
        let mut found: Vec<(u64, Key)> = idx
            .entries
            .iter()
            .filter(|((_, _), e)| e.kind == Kind::Population && e.tag.as_deref() == Some(tag))
            .map(|((_, key), e)| (e.last_used, *key))
            .collect();
        found.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.hex().cmp(&b.1.hex())));
        found.into_iter().map(|(_, key)| key).collect()
    }

    /// Looks up a partial synthesis checkpoint. Does **not** count toward
    /// hit/miss statistics (partials are an internal resume mechanism).
    pub fn get_partial(&self, key: &Key) -> Result<Option<PartialCheckpoint>, StoreError> {
        let manifest_path = self.object_path(Kind::Partial, key, "json");
        let manifest = match std::fs::read_to_string(&manifest_path) {
            Ok(m) => m,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let blob = std::fs::read_to_string(self.object_path(Kind::Partial, key, "qasm"))
            .unwrap_or_default();
        match PartialCheckpoint::decode(&manifest, &blob) {
            Ok(part) => Ok(Some(part)),
            Err(e) => {
                // a torn or corrupt checkpoint is dropped: resume restarts
                self.remove_entry(Kind::Partial, key)?;
                Err(StoreError::Corrupt(e.to_string()))
            }
        }
    }

    /// Persists a partial synthesis checkpoint.
    pub fn put_partial(&self, key: &Key, part: &PartialCheckpoint) -> Result<(), StoreError> {
        let (manifest, blob) = part.encode();
        self.put_pair(Kind::Partial, key, &manifest, &blob, None)
    }

    /// Removes a partial checkpoint (called when its population completes).
    pub fn clear_partial(&self, key: &Key) -> Result<(), StoreError> {
        self.remove_entry(Kind::Partial, key)
    }

    /// Looks up an execution result. Counts a hit or miss.
    pub fn get_result(&self, key: &Key) -> Result<Option<ResultArtifact>, StoreError> {
        let path = self.object_path(Kind::Result, key, "json");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.touch(Kind::Result, key, false)?;
                return Ok(None);
            }
            Err(e) => return Err(e.into()),
        };
        match ResultArtifact::decode(&text) {
            Ok(res) => {
                self.touch(Kind::Result, key, true)?;
                Ok(Some(res))
            }
            Err(e) => {
                self.remove_entry(Kind::Result, key)?;
                Err(StoreError::Corrupt(e.to_string()))
            }
        }
    }

    /// Persists an execution result.
    pub fn put_result(&self, key: &Key, res: &ResultArtifact) -> Result<(), StoreError> {
        self.put_result_tagged(key, res, None)
    }

    /// Like [`Store::put_result`] but attaches an optional tag (e.g. an
    /// equivalence-class fingerprint) so [`Store::results_tagged`] can later
    /// find every stored result that is a candidate for certified reuse.
    pub fn put_result_tagged(
        &self,
        key: &Key,
        res: &ResultArtifact,
        tag: Option<&str>,
    ) -> Result<(), StoreError> {
        let text = res.encode();
        atomic_write(
            &self.object_path(Kind::Result, key, "json"),
            text.as_bytes(),
        )?;
        self.record_put(Kind::Result, key, text.len() as u64, tag)
    }

    /// Keys of every live result carrying `tag`, most recently used first.
    /// Does not touch hit/miss statistics — this is the certified fast
    /// path's discovery scan, not a cache lookup.
    pub fn results_tagged(&self, tag: &str) -> Vec<Key> {
        let idx = self.index.lock().expect("store index poisoned");
        let mut found: Vec<(u64, Key)> = idx
            .entries
            .iter()
            .filter(|((_, _), e)| e.kind == Kind::Result && e.tag.as_deref() == Some(tag))
            .map(|((_, key), e)| (e.last_used, *key))
            .collect();
        found.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.hex().cmp(&b.1.hex())));
        found.into_iter().map(|(_, key)| key).collect()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> Stats {
        let idx = self.index.lock().expect("store index poisoned");
        let mut by_kind = (0usize, 0usize, 0usize);
        let mut total = 0u64;
        for e in idx.entries.values() {
            total += e.bytes;
            match e.kind {
                Kind::Population => by_kind.0 += 1,
                Kind::Partial => by_kind.1 += 1,
                Kind::Result => by_kind.2 += 1,
            }
        }
        Stats {
            hits: idx.hits,
            misses: idx.misses,
            puts: idx.puts,
            entries: by_kind,
            total_bytes: total,
        }
    }

    /// Evicts least-recently-used entries until live bytes fit `max_bytes`.
    pub fn gc(&self, max_bytes: u64) -> Result<GcReport, StoreError> {
        let victims: Vec<(Kind, Key, u64)> = {
            let idx = self.index.lock().expect("store index poisoned");
            let mut total: u64 = idx.entries.values().map(|e| e.bytes).sum();
            let mut by_age: Vec<(&(String, Key), &Entry)> = idx.entries.iter().collect();
            by_age.sort_by_key(|(_, e)| e.last_used);
            let mut victims = Vec::new();
            for ((_, key), e) in by_age {
                if total <= max_bytes {
                    break;
                }
                victims.push((e.kind, *key, e.bytes));
                total -= e.bytes;
            }
            victims
        };
        let mut report = GcReport {
            evicted: 0,
            reclaimed_bytes: 0,
            remaining_bytes: 0,
        };
        for (kind, key, bytes) in victims {
            self.remove_entry(kind, &key)?;
            report.evicted += 1;
            report.reclaimed_bytes += bytes;
        }
        report.remaining_bytes = self.stats().total_bytes;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ResultRow;
    use qaprox_circuit::Circuit;
    use qaprox_synth::ApproxCircuit;

    pub(crate) fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qaprox-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    pub(crate) fn key_of(n: u64) -> Key {
        Key { hi: n, lo: !n }
    }

    pub(crate) fn some_pop(tag: f64) -> PopulationArtifact {
        let mk = |cnots: usize, dist: f64| {
            let mut c = Circuit::new(2);
            c.h(0);
            for _ in 0..cnots {
                c.cx(0, 1);
            }
            c.rz(tag, 0);
            ApproxCircuit::new(c, dist)
        };
        PopulationArtifact {
            circuits: vec![mk(1, 0.04), mk(2, 0.02)],
            minimal_hs: mk(3, 1e-11),
            explored: 50,
        }
    }

    #[test]
    fn put_get_population_counts_hits_and_misses() {
        let store = Store::open(tmp_root("popcount")).unwrap();
        let k = key_of(1);
        assert!(store.get_population(&k).unwrap().is_none());
        store.put_population(&k, &some_pop(0.5)).unwrap();
        let got = store.get_population(&k).unwrap().unwrap();
        assert_eq!(got.circuits.len(), 2);
        assert_eq!(got.explored, 50);
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.puts), (1, 1, 1));
        assert_eq!(s.entries, (1, 0, 0));
        assert!(s.total_bytes > 0);
    }

    #[test]
    fn stats_persist_across_reopen() {
        let root = tmp_root("reopen");
        let k = key_of(2);
        {
            let store = Store::open(&root).unwrap();
            store.put_population(&k, &some_pop(0.1)).unwrap();
            store.get_population(&k).unwrap().unwrap();
        }
        let store = Store::open(&root).unwrap();
        let s = store.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.puts, 1);
        assert!(store.get_population(&k).unwrap().is_some());
        assert_eq!(store.stats().hits, 2);
    }

    #[test]
    fn corrupt_artifact_is_detected_and_evicted() {
        let store = Store::open(tmp_root("corrupt")).unwrap();
        let k = key_of(3);
        store.put_population(&k, &some_pop(0.2)).unwrap();
        // flip bytes in the qasm dump
        let path = store.object_path(Kind::Population, &k, "qasm");
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.replace_range(0..2, "XX");
        std::fs::write(&path, text).unwrap();
        assert!(matches!(
            store.get_population(&k),
            Err(StoreError::Corrupt(_))
        ));
        // evicted: a second read is a clean miss
        assert!(store.get_population(&k).unwrap().is_none());
        assert_eq!(store.stats().entries.0, 0);
    }

    #[test]
    fn partial_checkpoints_store_and_clear() {
        let store = Store::open(tmp_root("partial")).unwrap();
        let k = key_of(4);
        assert!(store.get_partial(&k).unwrap().is_none());
        let part = PartialCheckpoint {
            circuits: some_pop(0.3).circuits,
            nodes_done: 17,
        };
        store.put_partial(&k, &part).unwrap();
        let got = store.get_partial(&k).unwrap().unwrap();
        assert_eq!(got.nodes_done, 17);
        assert_eq!(got.circuits.len(), 2);
        // completing the population clears the partial
        store.put_population(&k, &some_pop(0.3)).unwrap();
        assert!(store.get_partial(&k).unwrap().is_none());
    }

    #[test]
    fn results_round_trip_through_store() {
        let store = Store::open(tmp_root("result")).unwrap();
        let k = key_of(5);
        assert!(store.get_result(&k).unwrap().is_none());
        let res = ResultArtifact {
            ref_score: 0.4,
            rows: vec![ResultRow {
                cnots: 2,
                hs_distance: 0.03,
                predicted: 0.9,
                score: 0.2,
                certified: false,
            }],
            reference_qasm: None,
        };
        store.put_result(&k, &res).unwrap();
        let got = store.get_result(&k).unwrap().unwrap();
        assert_eq!(got.rows, res.rows);
        assert_eq!(got.ref_score, 0.4);
    }

    #[test]
    fn tagged_results_are_discoverable_most_recent_first() {
        let store = Store::open(tmp_root("restags")).unwrap();
        let (a, b) = (key_of(50), key_of(51));
        let res = ResultArtifact {
            ref_score: 0.1,
            rows: Vec::new(),
            reference_qasm: Some("OPENQASM 2.0;\n".into()),
        };
        store.put_result_tagged(&a, &res, Some("equiv-x")).unwrap();
        store.put_result_tagged(&b, &res, Some("equiv-x")).unwrap();
        store.put_result(&key_of(52), &res).unwrap();
        assert_eq!(store.results_tagged("equiv-x"), vec![b, a]);
        // a read bumps the LRU clock, reordering the scan
        store.get_result(&a).unwrap().unwrap();
        assert_eq!(store.results_tagged("equiv-x"), vec![a, b]);
        assert!(store.results_tagged("equiv-y").is_empty());
    }

    #[test]
    fn gc_evicts_least_recently_used_first() {
        let store = Store::open(tmp_root("gc")).unwrap();
        for i in 0..4u64 {
            store
                .put_population(&key_of(10 + i), &some_pop(i as f64))
                .unwrap();
        }
        // touch key 10 so it becomes most recently used
        store.get_population(&key_of(10)).unwrap().unwrap();
        let before = store.stats().total_bytes;
        let per_entry = before / 4;
        // keep roughly two entries
        let report = store.gc(per_entry * 2).unwrap();
        assert!(report.evicted >= 2, "evicted {}", report.evicted);
        assert!(report.remaining_bytes <= per_entry * 2);
        // the touched entry must survive; the oldest untouched must not
        assert!(store.get_population(&key_of(10)).unwrap().is_some());
        assert!(store.get_population(&key_of(11)).unwrap().is_none());
        // gc to zero clears everything
        let report = store.gc(0).unwrap();
        assert_eq!(report.remaining_bytes, 0);
        assert_eq!(store.stats().entries, (0, 0, 0));
    }

    #[test]
    fn gc_is_a_noop_under_budget() {
        let store = Store::open(tmp_root("gcnoop")).unwrap();
        store.put_population(&key_of(20), &some_pop(0.7)).unwrap();
        let report = store.gc(u64::MAX).unwrap();
        assert_eq!(report.evicted, 0);
        assert_eq!(report.reclaimed_bytes, 0);
        assert!(store.get_population(&key_of(20)).unwrap().is_some());
    }

    #[test]
    fn tagged_populations_are_discoverable_most_recent_first() {
        let root = tmp_root("tags");
        let (a, b, c) = (key_of(30), key_of(31), key_of(32));
        {
            let store = Store::open(&root).unwrap();
            store
                .put_population_tagged(&a, &some_pop(0.1), Some("target-x"))
                .unwrap();
            store
                .put_population_tagged(&b, &some_pop(0.2), Some("target-x"))
                .unwrap();
            store
                .put_population_tagged(&c, &some_pop(0.3), Some("target-y"))
                .unwrap();
            store.put_population(&key_of(33), &some_pop(0.4)).unwrap();
            assert_eq!(store.populations_tagged("target-x"), vec![b, a]);
            // a read bumps the LRU clock, reordering the scan
            store.get_population(&a).unwrap().unwrap();
            assert_eq!(store.populations_tagged("target-x"), vec![a, b]);
            assert_eq!(store.populations_tagged("target-y"), vec![c]);
            assert!(store.populations_tagged("target-z").is_empty());
        }
        // tags survive an index round trip through disk
        let store = Store::open(&root).unwrap();
        assert_eq!(store.populations_tagged("target-x"), vec![a, b]);
        // eviction forgets the tag with the entry
        store.remove_entry(Kind::Population, &b).unwrap();
        assert_eq!(store.populations_tagged("target-x"), vec![a]);
    }
}

// Requires `--features failpoints`; `Scenario` serializes these with every
// other failpoint test in the process.
#[cfg(all(test, feature = "failpoints"))]
mod fault_tests {
    use super::tests::{key_of, some_pop, tmp_root};
    use super::*;
    use qaprox_fault::Scenario;

    /// The satellite corruption drill from the issue: a torn write lands a
    /// half-payload at the final path, the checksum catches it on read, the
    /// entry is evicted, and a recompute (fresh put) fully recovers.
    #[test]
    fn torn_write_is_detected_evicted_and_recovered_by_recompute() {
        let store = Store::open(tmp_root("torn")).unwrap();
        let k = key_of(40);
        {
            // fire exactly once, on the first write of the put (the qasm
            // dump), leaving an intact manifest whose checksum cannot match
            let _guard = Scenario::setup("store.write=after:0->torn");
            store.put_population(&k, &some_pop(0.5)).unwrap();
            assert_eq!(qaprox_fault::fires("store.write"), 1);
        }
        match store.get_population(&k) {
            Err(StoreError::Corrupt(_)) => {}
            other => panic!("torn artifact not flagged corrupt: {other:?}"),
        }
        // evicted: the follow-up read is a clean miss, the index is clean
        assert!(store.get_population(&k).unwrap().is_none());
        assert_eq!(store.stats().entries.0, 0);
        // recompute path: a fresh put round-trips again
        store.put_population(&k, &some_pop(0.5)).unwrap();
        let got = store.get_population(&k).unwrap().unwrap();
        assert_eq!(got.explored, 50);
    }

    #[test]
    fn injected_write_and_read_errors_are_transient_io_errors() {
        let store = Store::open(tmp_root("injected")).unwrap();
        let k = key_of(41);
        {
            let _guard = Scenario::setup("store.write=always");
            let err = store.put_population(&k, &some_pop(0.6)).unwrap_err();
            assert!(matches!(err, StoreError::Io(_)));
            assert!(qaprox_fault::is_transient(&err.to_string()), "{err}");
        }
        store.put_population(&k, &some_pop(0.6)).unwrap();
        {
            let _guard = Scenario::setup("store.read=after:0");
            let err = store.get_population(&k).unwrap_err();
            assert!(qaprox_fault::is_transient(&err.to_string()), "{err}");
            // after:N disarms after firing: the retry goes through
            assert!(store.get_population(&k).unwrap().is_some());
        }
        {
            let _guard = Scenario::setup("store.evict=always");
            let err = store.clear_partial(&k).unwrap_err();
            assert!(qaprox_fault::is_transient(&err.to_string()), "{err}");
        }
    }
}
