//! # qaprox
//!
//! A Rust reproduction of *"Empirical Evaluation of Circuit Approximations
//! on Noisy Quantum Devices"* (Wilson, Bassman, Mueller, Iancu — SC 2021),
//! together with every substrate the paper's Python/Qiskit/BQSKit stack
//! provided: simulators with device noise models, calibration snapshots for
//! the five IBM machines, a transpiler, and QSearch/QFast/QFactor-style
//! synthesis — all built from scratch in this workspace.
//!
//! The headline workflow (the paper's Fig. 1) lives in [`workflow`]:
//!
//! ```
//! use qaprox::prelude::*;
//!
//! // 1. reference circuit -> target unitary
//! let mut reference = Circuit::new(2);
//! reference.h(0).cx(0, 1);
//! let target = Workflow::target_unitary(&reference);
//!
//! // 2-3. generate + select approximate circuits (HS threshold 0.1)
//! let workflow = Workflow::linear_qsearch(2);
//! let population = workflow.generate(&target);
//! assert!(!population.circuits.is_empty());
//!
//! // 4-5. execute on a noisy device model and score
//! let cal = qaprox_device::devices::ourense().induced(&[0, 1]);
//! let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
//! let scored = execute_and_score(&population.circuits, &backend, |_, probs| {
//!     qaprox_metrics::magnetization(probs)
//! });
//! assert_eq!(scored.len(), population.circuits.len());
//! ```
//!
//! The experiment drivers behind the paper's figures:
//! * [`tfim_study`] — magnetization series (Figs. 2-4, 8-10, 12-13);
//! * [`sweep`] — CNOT-error sensitivity (Figs. 8-11);
//! * [`grover_study`] — success probability (Figs. 5, 14);
//! * [`toffoli_study`] — JS-distance battery (Figs. 6, 7, 15);
//! * [`mapping`] — qubit-mapping sensitivity (Figs. 16-19);
//! * [`selection`] — selection-strategy study (the open problem of Obs. 2);
//! * [`metric_correlation`] — which cheap metric predicts real-device error
//!   (Sec. 6.5's metric analysis);
//! * [`qvolume`] — quantum-volume estimation (Sec. 6.5 roadmap).

#![warn(missing_docs)]

pub mod grover_study;
pub mod mapping;
pub mod metric_correlation;
pub mod qvolume;
pub mod selection;
pub mod sweep;
pub mod tfim_study;
pub mod toffoli_study;
pub mod workflow;

pub use workflow::{
    execute_and_score, Engine, GenerateControl, Generation, Population, ResumeMode, Scored,
    Workflow,
};

/// Convenient re-exports for downstream users and examples.
pub mod prelude {
    pub use crate::workflow::{
        execute_and_score, Engine, GenerateControl, Generation, Population, ResumeMode, Scored,
        Workflow,
    };
    pub use qaprox_algos::grover::grover_circuit;
    pub use qaprox_algos::mct::{mct_reference, mct_unitary};
    pub use qaprox_algos::tfim::{tfim_circuit, tfim_series, FieldSchedule, TfimParams};
    pub use qaprox_circuit::{Circuit, Gate};
    pub use qaprox_device::devices;
    pub use qaprox_device::{Calibration, Topology};
    pub use qaprox_metrics::{hs_distance, js_distance, magnetization, success_probability};
    pub use qaprox_sim::{
        Backend, HardwareBackend, HardwareEffects, NoiseModel, TrajectoryBackend,
    };
    pub use qaprox_synth::{
        qfast, qsearch, ApproxCircuit, QFastConfig, QSearchConfig, SynthesisOutput,
    };
    pub use qaprox_transpile::{transpile, OptLevel};
}
