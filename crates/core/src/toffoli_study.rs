//! The multi-controlled Toffoli experiment driver — Figs. 6, 7, 15, 17-19.
//!
//! The Toffoli implements a *function*, so one output distribution is not
//! enough: the paper tests each circuit over a battery of inputs and scores
//! the **aggregate** output distribution with the Jensen-Shannon distance.
//! The battery used here is every control pattern with the target qubit at
//! 0; the ideal aggregate is uniform over the `2^(n-1)` distinct correct
//! outputs, which puts "random noise" at JS = 0.465 exactly as the paper
//! reports.

use crate::workflow::Scored;
use qaprox_algos::mct::mct_unitary;
use qaprox_circuit::Circuit;
use qaprox_linalg::parallel::par_map_indexed;
use qaprox_metrics::js_distance;
use qaprox_sim::Backend;
use qaprox_synth::ApproxCircuit;

/// The battery of input basis states: all control patterns, target bit 0.
pub fn battery_inputs(num_qubits: usize) -> Vec<usize> {
    (0..(1usize << (num_qubits - 1))).collect()
}

/// The ideal aggregate distribution over the battery: uniform over each
/// input's correct output.
pub fn ideal_battery_distribution(num_qubits: usize) -> Vec<f64> {
    let dim = 1usize << num_qubits;
    let controls_mask = dim / 2 - 1;
    let target_bit = dim / 2;
    let inputs = battery_inputs(num_qubits);
    let mut agg = vec![0.0; dim];
    for &input in &inputs {
        let out = if input & controls_mask == controls_mask {
            input ^ target_bit
        } else {
            input
        };
        agg[out] += 1.0 / inputs.len() as f64;
    }
    agg
}

/// Prepends X gates so the circuit starts from `|input>` instead of ground.
pub fn with_input_prep(circuit: &Circuit, input: usize) -> Circuit {
    let mut c = Circuit::new(circuit.num_qubits());
    for q in 0..circuit.num_qubits() {
        if (input >> q) & 1 == 1 {
            c.x(q);
        }
    }
    c.extend(circuit);
    c
}

/// Runs the battery on `backend` and returns the aggregate distribution.
pub fn battery_distribution(circuit: &Circuit, backend: &Backend, seed: u64) -> Vec<f64> {
    let inputs = battery_inputs(circuit.num_qubits());
    let dim = 1usize << circuit.num_qubits();
    let mut agg = vec![0.0; dim];
    for (k, &input) in inputs.iter().enumerate() {
        let prepped = with_input_prep(circuit, input);
        let probs = backend.probabilities(&prepped, seed.wrapping_add(k as u64));
        for (a, p) in agg.iter_mut().zip(&probs) {
            *a += p / inputs.len() as f64;
        }
    }
    agg
}

/// JS distance of a circuit's battery aggregate against the ideal aggregate.
pub fn battery_js(circuit: &Circuit, backend: &Backend, seed: u64) -> f64 {
    let agg = battery_distribution(circuit, backend, seed);
    let ideal = ideal_battery_distribution(circuit.num_qubits());
    js_distance(&agg, &ideal)
}

/// The JS distance random noise scores on this battery (~0.465 for any
/// width, as in the paper's Figs. 7/15 discussion).
pub fn random_noise_js(num_qubits: usize) -> f64 {
    let dim = 1usize << num_qubits;
    let uniform = vec![1.0 / dim as f64; dim];
    js_distance(&uniform, &ideal_battery_distribution(num_qubits))
}

/// Evaluates an approximate-circuit population on the battery.
pub fn evaluate_population(population: &[ApproxCircuit], backend: &Backend) -> Vec<Scored> {
    par_map_indexed(population, |i, ap| Scored {
        cnots: ap.cnots,
        hs_distance: ap.hs_distance,
        score: battery_js(&ap.circuit, backend, (i as u64) << 16),
    })
}

/// Battery JS for a circuit that is first **transpiled** onto the device
/// (level 1, trivial layout + routing), the way the paper prepares its
/// reference circuits. Returns `(js, routed_cnot_count)` — routing raises
/// the CNOT count of long-range references substantially, which is exactly
/// why the paper's references are so deep.
pub fn battery_js_transpiled(
    circuit: &Circuit,
    device: &qaprox_device::Calibration,
    backend_of: impl Fn(qaprox_device::Calibration) -> Backend,
    seed: u64,
) -> (f64, usize) {
    use qaprox_transpile::{transpile, OptLevel};
    let n = circuit.num_qubits();
    let inputs = battery_inputs(n);
    let dim = 1usize << n;
    let mut agg = vec![0.0; dim];
    let mut routed_cnots = 0usize;
    for (k, &input) in inputs.iter().enumerate() {
        let prepped = with_input_prep(circuit, input);
        let t = transpile(&prepped, device, OptLevel::L1, None);
        routed_cnots = routed_cnots.max(t.circuit.cx_count());
        let induced = t.induced_calibration(device);
        let backend = backend_of(induced);
        let compact = backend.probabilities(&t.circuit, seed.wrapping_add(k as u64));
        let logical = t.logical_probabilities(&compact, n);
        for (a, p) in agg.iter_mut().zip(&logical) {
            *a += p / inputs.len() as f64;
        }
    }
    (
        js_distance(&agg, &ideal_battery_distribution(n)),
        routed_cnots,
    )
}

/// The synthesis target for the `n`-qubit MCT.
pub fn toffoli_target(num_qubits: usize) -> qaprox_linalg::Matrix {
    mct_unitary(num_qubits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_algos::mct::mct_reference;
    use qaprox_device::devices::ourense;
    use qaprox_sim::NoiseModel;

    #[test]
    fn ideal_battery_distribution_is_uniform_over_half() {
        let d = ideal_battery_distribution(4);
        let nonzero: Vec<f64> = d.iter().copied().filter(|&x| x > 0.0).collect();
        assert_eq!(nonzero.len(), 8);
        for x in nonzero {
            assert!((x - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn reference_scores_zero_js_on_ideal_backend() {
        for n in [3usize, 4] {
            let c = mct_reference(n);
            let js = battery_js(&c, &Backend::Ideal, 0);
            assert!(js < 1e-6, "{n}-qubit reference JS {js}");
        }
    }

    #[test]
    fn random_noise_js_matches_paper_value() {
        for n in [4usize, 5] {
            let js = random_noise_js(n);
            assert!((js - 0.465).abs() < 0.002, "{n} qubits: {js}");
        }
    }

    #[test]
    fn noise_pushes_reference_js_up() {
        let c = mct_reference(4);
        let cal = ourense().induced(&[0, 1, 2, 3]).with_uniform_cx_error(0.03);
        let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
        let js = battery_js(&c, &backend, 0);
        assert!(js > 0.1, "a deep MCT under strong noise must degrade: {js}");
        assert!(js < 0.7, "JS should stay in a sane range: {js}");
    }

    #[test]
    fn input_prep_sets_basis_state() {
        let c = Circuit::new(3); // identity circuit
        let prepped = with_input_prep(&c, 0b101);
        let p = qaprox_sim::statevector::probabilities(&prepped);
        assert!((p[0b101] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn battery_distribution_sums_to_one() {
        let c = mct_reference(3);
        let cal = ourense().induced(&[0, 1, 2]);
        let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
        let agg = battery_distribution(&c, &backend, 0);
        assert!((agg.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn routing_inflates_reference_cnots_and_js() {
        use qaprox_sim::NoiseModel;
        let reference = mct_reference(4);
        let device = ourense().induced(&[0, 1, 2, 3]);
        let (routed_js, routed_cnots) = battery_js_transpiled(
            &reference,
            &device,
            |cal| Backend::Noisy(NoiseModel::from_calibration(cal)),
            0,
        );
        assert!(
            routed_cnots > reference.cx_count(),
            "routing must add SWAP CNOTs: {routed_cnots} vs {}",
            reference.cx_count()
        );
        // unrouted (lenient) evaluation under the same model
        let backend = Backend::Noisy(NoiseModel::from_calibration(device));
        let lenient_js = battery_js(&reference, &backend, 0);
        assert!(
            routed_js > lenient_js - 0.02,
            "routed reference should not be cleaner than the lenient one:              {routed_js} vs {lenient_js}"
        );
    }

    #[test]
    fn shallow_beats_deep_under_heavy_noise() {
        // an (approximate) shallow identity-ish circuit vs the deep exact MCT
        // under severe CNOT noise: the paper's central trade-off.
        let deep = mct_reference(4);
        let mut shallow = Circuit::new(4);
        // MCT acts as identity on most battery inputs; the empty circuit is
        // a (bad but short) approximation.
        shallow.h(3);
        shallow.h(3); // two gates, zero CNOTs
        let cal = ourense().induced(&[0, 1, 2, 3]).with_uniform_cx_error(0.24);
        let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
        let js_deep = battery_js(&deep, &backend, 0);
        let js_shallow = battery_js(&shallow, &backend, 1);
        assert!(
            js_shallow < js_deep,
            "under 0.24 CNOT error the 76-CNOT reference ({js_deep}) must lose \
             to even a trivial shallow circuit ({js_shallow})"
        );
    }
}
