//! CNOT-error sensitivity sweeps — Figs. 8-11.
//!
//! The paper rewrites the Ourense noise model's two-qubit error to values
//! from 0 to 0.24 and re-executes the *same* approximate-circuit populations
//! at every level, tracking which CNOT depth wins as noise grows
//! (Observations 5 and 6).

use crate::tfim_study::{evaluate, TfimPopulations, TimestepResult};
use qaprox_device::Calibration;
use qaprox_sim::{Backend, NoiseModel, TrajectoryBackend};

/// The CNOT error levels highlighted by the paper (0, device-level, 0.12
/// like the worst contemporary devices, and 0.24 beyond them).
pub fn paper_error_levels() -> Vec<f64> {
    vec![0.0, 0.00767, 0.03, 0.06, 0.12, 0.24]
}

/// One noise level's full evaluation.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The uniform CNOT error applied.
    pub cx_error: f64,
    /// Per-timestep results at this level.
    pub results: Vec<TimestepResult>,
}

/// Evaluates `pops` at every CNOT error level, holding all other noise
/// sources (from `base`) fixed.
pub fn cx_error_sweep(
    pops: &TfimPopulations,
    base: &Calibration,
    levels: &[f64],
) -> Vec<SweepPoint> {
    levels
        .iter()
        .map(|&eps| {
            let cal = base.with_uniform_cx_error(eps);
            let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
            SweepPoint {
                cx_error: eps,
                results: evaluate(pops, &backend),
            }
        })
        .collect()
}

/// The same sweep on the quantum-trajectory backend: `shots` Monte-Carlo
/// trajectories per circuit instead of a `4^n` density matrix, so the sweep
/// scales to the 27q/65q device calibrations. Seeded per job — reruns are
/// bit-identical at any thread count.
pub fn cx_error_sweep_trajectory(
    pops: &TfimPopulations,
    base: &Calibration,
    levels: &[f64],
    shots: usize,
) -> Vec<SweepPoint> {
    levels
        .iter()
        .map(|&eps| {
            let cal = base.with_uniform_cx_error(eps);
            let backend = Backend::Trajectory(TrajectoryBackend::with_shots(
                NoiseModel::from_calibration(cal),
                shots,
            ));
            SweepPoint {
                cx_error: eps,
                results: evaluate(pops, &backend),
            }
        })
        .collect()
}

/// Fig. 11's series: the CNOT depth of the best-performing circuit at each
/// timestep, per error level.
pub fn best_depth_series(sweep: &[SweepPoint]) -> Vec<(f64, Vec<usize>)> {
    sweep
        .iter()
        .map(|point| {
            let depths = point.results.iter().map(|r| r.best_approx.cnots).collect();
            (point.cx_error, depths)
        })
        .collect()
}

/// Mean best-circuit depth at each error level — the scalar trend behind
/// Observation 6 ("the more noise, the shorter the winning circuits").
pub fn mean_best_depth(sweep: &[SweepPoint]) -> Vec<(f64, f64)> {
    sweep
        .iter()
        .map(|point| {
            let n = point.results.len().max(1);
            let mean = point
                .results
                .iter()
                .map(|r| r.best_approx.cnots as f64)
                .sum::<f64>()
                / n as f64;
            (point.cx_error, mean)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tfim_study::generate_populations;
    use crate::workflow::{Engine, Workflow};
    use qaprox_algos::tfim::TfimParams;
    use qaprox_device::devices::ourense;
    use qaprox_device::Topology;
    use qaprox_synth::{InstantiateConfig, QSearchConfig};

    fn quick_pops() -> TfimPopulations {
        let workflow = Workflow {
            topology: Topology::linear(3),
            engine: Engine::QSearch(QSearchConfig {
                max_cnots: 4,
                max_nodes: 50,
                beam_width: 2,
                instantiate: InstantiateConfig {
                    starts: 1,
                    ..Default::default()
                },
                ..Default::default()
            }),
            max_hs: 0.5,
        };
        generate_populations(&TfimParams::paper_defaults(3), 4, &workflow)
    }

    #[test]
    fn sweep_produces_one_point_per_level() {
        let pops = quick_pops();
        let base = ourense().induced(&[0, 1, 2]);
        let sweep = cx_error_sweep(&pops, &base, &[0.0, 0.12]);
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep[0].results.len(), 4);
    }

    #[test]
    fn noisy_reference_degrades_with_error_level() {
        let pops = quick_pops();
        let base = ourense().induced(&[0, 1, 2]);
        let sweep = cx_error_sweep(&pops, &base, &[0.0, 0.24]);
        // at the last (deepest) timestep, the reference must be farther from
        // ideal at 0.24 than at 0
        let last = pops.references.len() - 1;
        let err_low =
            (sweep[0].results[last].noisy_ref - sweep[0].results[last].noise_free_ref).abs();
        let err_high =
            (sweep[1].results[last].noisy_ref - sweep[1].results[last].noise_free_ref).abs();
        assert!(
            err_high > err_low,
            "0.24 error should hurt more: {err_low} vs {err_high}"
        );
    }

    #[test]
    fn trajectory_sweep_tracks_the_density_sweep_on_a_27q_calibration() {
        use qaprox_device::devices::toronto;
        let pops = quick_pops();
        // induce a 3-qubit line out of the 27q Toronto calibration: the
        // trajectory sweep is what makes this device family reachable
        let base = toronto().induced(&[0, 1, 2]);
        let dense = cx_error_sweep(&pops, &base, &[0.0, 0.24]);
        let traj = cx_error_sweep_trajectory(&pops, &base, &[0.0, 0.24], 2048);
        assert_eq!(traj.len(), 2);
        assert_eq!(traj[0].results.len(), 4);
        // shot noise aside, the trajectory magnetizations estimate the
        // density-matrix ones (Hoeffding at 2048 shots is well under 0.1)
        for (d, t) in dense.iter().zip(&traj) {
            for (dr, tr) in d.results.iter().zip(&t.results) {
                assert!(
                    (dr.noisy_ref - tr.noisy_ref).abs() < 0.15,
                    "cx_error {}: density {} vs trajectory {}",
                    d.cx_error,
                    dr.noisy_ref,
                    tr.noisy_ref
                );
            }
        }
        // seeded sampling: the whole sweep is reproducible bit for bit
        let again = cx_error_sweep_trajectory(&pops, &base, &[0.0, 0.24], 2048);
        for (a, b) in traj.iter().zip(&again) {
            for (ra, rb) in a.results.iter().zip(&b.results) {
                assert_eq!(ra.noisy_ref.to_bits(), rb.noisy_ref.to_bits());
                assert_eq!(ra.minimal_hs.score.to_bits(), rb.minimal_hs.score.to_bits());
            }
        }
    }

    #[test]
    fn depth_series_has_matching_shape() {
        let pops = quick_pops();
        let base = ourense().induced(&[0, 1, 2]);
        let sweep = cx_error_sweep(&pops, &base, &paper_error_levels()[..2]);
        let series = best_depth_series(&sweep);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].1.len(), 4);
        let means = mean_best_depth(&sweep);
        assert_eq!(means.len(), 2);
    }
}
