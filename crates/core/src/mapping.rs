//! Qubit-mapping sensitivity on hardware — Figs. 16-19.
//!
//! The paper pins the 4-qubit Toffoli's approximate circuits onto four
//! manual qubit subsets of ibmq_toronto (the colored circles of Fig. 16)
//! plus Qiskit's automatic level-3 mapping, and compares the resulting JS
//! distances. Here each mapping transpiles the population onto the chosen
//! physical qubits, simulates on the induced calibration with the
//! hardware-emulation backend, and scores the battery aggregate.

use crate::toffoli_study::{battery_inputs, ideal_battery_distribution, with_input_prep};
use crate::workflow::Scored;
use qaprox_circuit::Circuit;
use qaprox_device::Calibration;
use qaprox_linalg::parallel::{par_map, par_map_indexed};
use qaprox_metrics::js_distance;
use qaprox_sim::{Backend, HardwareBackend, HardwareEffects, NoiseModel, TrajectoryBackend};
use qaprox_synth::ApproxCircuit;
use qaprox_transpile::{transpile, OptLevel};

/// How circuits are placed on the device.
#[derive(Debug, Clone)]
pub enum Placement {
    /// Pin onto these physical qubits (one of Fig. 16's circles).
    Manual(Vec<usize>),
    /// Let the level-3 transpiler choose per circuit (Fig. 19).
    Auto,
}

/// One mapping study configuration.
#[derive(Debug, Clone)]
pub struct MappingStudy {
    /// Device calibration (the paper uses Toronto).
    pub device: Calibration,
    /// Placement policy.
    pub placement: Placement,
    /// Hardware-emulation effect strengths.
    pub effects: HardwareEffects,
    /// `None` scores on the density-matrix hardware emulation (the paper's
    /// setup, exact at the cost of `4^n` state); `Some(n)` scores on the
    /// quantum-trajectory backend with `n` shots per circuit, which is what
    /// lets the study run against the 27q/65q device calibrations.
    pub shots: Option<usize>,
}

impl MappingStudy {
    /// Runs one circuit through transpile + hardware emulation + battery,
    /// returning the JS distance against the ideal battery aggregate.
    pub fn battery_js(&self, circuit: &Circuit, seed: u64) -> f64 {
        let n = circuit.num_qubits();
        let inputs = battery_inputs(n);
        let dim = 1usize << n;
        let mut agg = vec![0.0; dim];
        for (k, &input) in inputs.iter().enumerate() {
            let prepped = with_input_prep(circuit, input);
            let (level, subset) = match &self.placement {
                Placement::Manual(qubits) => (OptLevel::L1, Some(qubits.as_slice())),
                Placement::Auto => (OptLevel::L3, None),
            };
            let t = transpile(&prepped, &self.device, level, subset);
            let induced = t.induced_calibration(&self.device);
            let model = NoiseModel::from_calibration(induced);
            let backend = match self.shots {
                Some(shots) => Backend::Trajectory(TrajectoryBackend::with_shots(model, shots)),
                None => {
                    Backend::Hardware(HardwareBackend::with_effects(model, self.effects.clone()))
                }
            };
            let compact_probs = backend.probabilities(&t.circuit, seed.wrapping_add(k as u64));
            let logical = t.logical_probabilities(&compact_probs, n);
            for (a, p) in agg.iter_mut().zip(&logical) {
                *a += p / inputs.len() as f64;
            }
        }
        js_distance(&agg, &ideal_battery_distribution(n))
    }

    /// Evaluates a whole approximate population under this mapping.
    pub fn evaluate_population(&self, population: &[ApproxCircuit]) -> Vec<Scored> {
        par_map_indexed(population, |i, ap| Scored {
            cnots: ap.cnots,
            hs_distance: ap.hs_distance,
            score: self.battery_js(&ap.circuit, (i as u64) << 24),
        })
    }

    /// Scores the reference circuit under this mapping.
    pub fn reference_js(&self, reference: &Circuit) -> f64 {
        self.battery_js(reference, 0x0EF)
    }
}

/// Convenience: evaluate the same population under several placements,
/// returning `(label, reference JS, population results)` per placement.
pub fn compare_mappings(
    device: &Calibration,
    placements: &[(String, Placement)],
    reference: &Circuit,
    population: &[ApproxCircuit],
    effects: &HardwareEffects,
) -> Vec<(String, f64, Vec<Scored>)> {
    placements
        .iter()
        .map(|(label, placement)| {
            let study = MappingStudy {
                device: device.clone(),
                placement: placement.clone(),
                effects: effects.clone(),
                shots: None,
            };
            let ref_js = study.reference_js(reference);
            let pop = study.evaluate_population(population);
            (label.clone(), ref_js, pop)
        })
        .collect()
}

/// Ideal-backend sanity evaluation of a population's battery JS (no device):
/// used by tests and the harness to separate mapping effects from synthesis
/// error.
pub fn ideal_battery_js(population: &[ApproxCircuit]) -> Vec<Scored> {
    par_map(population, |ap| Scored {
        cnots: ap.cnots,
        hs_distance: ap.hs_distance,
        score: crate::toffoli_study::battery_js(&ap.circuit, &Backend::Ideal, 0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_algos::mct::mct_reference;
    use qaprox_device::devices::toronto;
    use qaprox_device::standard_mappings;

    fn mild_effects() -> HardwareEffects {
        HardwareEffects {
            shots: 2048,
            ..Default::default()
        }
    }

    #[test]
    fn manual_mapping_runs_and_scores() {
        let device = toronto();
        let maps = standard_mappings(&device, 3);
        let study = MappingStudy {
            device,
            placement: Placement::Manual(maps[0].qubits.clone()),
            effects: mild_effects(),
            shots: None,
        };
        let js = study.reference_js(&mct_reference(3));
        assert!(js.is_finite());
        assert!(js > 0.0 && js < 1.0, "JS out of range: {js}");
    }

    #[test]
    fn auto_mapping_runs() {
        let study = MappingStudy {
            device: toronto(),
            placement: Placement::Auto,
            effects: mild_effects(),
            shots: None,
        };
        let js = study.reference_js(&mct_reference(3));
        assert!(js.is_finite() && js > 0.0);
    }

    #[test]
    fn best_mapping_beats_worst_for_reference() {
        let device = toronto();
        let maps = standard_mappings(&device, 3);
        let best = MappingStudy {
            device: device.clone(),
            placement: Placement::Manual(maps[0].qubits.clone()),
            effects: mild_effects(),
            shots: None,
        };
        let worst = MappingStudy {
            device,
            placement: Placement::Manual(maps[1].qubits.clone()),
            effects: mild_effects(),
            shots: None,
        };
        let reference = mct_reference(3);
        let js_best = best.reference_js(&reference);
        let js_worst = worst.reference_js(&reference);
        assert!(
            js_best < js_worst + 0.05,
            "best mapping ({js_best}) should not lose clearly to worst ({js_worst})"
        );
    }

    #[test]
    fn trajectory_mapping_study_runs_on_the_27q_topology() {
        let device = toronto();
        assert_eq!(device.topology.num_qubits(), 27);
        let maps = standard_mappings(&device, 3);
        let study = MappingStudy {
            device,
            placement: Placement::Manual(maps[0].qubits.clone()),
            effects: mild_effects(),
            shots: Some(64),
        };
        let reference = mct_reference(3);
        let js = study.reference_js(&reference);
        assert!(
            js.is_finite() && js > 0.0 && js < 1.0,
            "JS out of range: {js}"
        );
        // seeded trajectory sampling: reruns are bit-identical
        assert_eq!(js.to_bits(), study.reference_js(&reference).to_bits());

        let pop = vec![ApproxCircuit::new(mct_reference(3), 0.0)];
        let scored = study.evaluate_population(&pop);
        assert_eq!(scored.len(), 1);
        assert!(scored[0].score.is_finite());
    }

    #[test]
    fn population_evaluation_shape() {
        let device = toronto();
        let maps = standard_mappings(&device, 3);
        let study = MappingStudy {
            device,
            placement: Placement::Manual(maps[0].qubits.clone()),
            effects: mild_effects(),
            shots: None,
        };
        let pop = vec![ApproxCircuit::new(mct_reference(3), 0.0)];
        let scored = study.evaluate_population(&pop);
        assert_eq!(scored.len(), 1);
        assert_eq!(scored[0].cnots, 6);
    }
}
