//! The TFIM experiment driver — Figs. 2-4 and 8-13.
//!
//! For each of the 21 timesteps: synthesize an approximate-circuit
//! population for that timestep's whole-evolution unitary, execute the
//! population (and the exact reference) on a backend, and report
//! magnetization against the noise-free reference.

use crate::workflow::{Population, Scored, Workflow};
use qaprox_algos::tfim::{tfim_series, TfimParams};
use qaprox_circuit::Circuit;
use qaprox_linalg::parallel::par_map_indexed;
use qaprox_metrics::{magnetization, probabilities};
use qaprox_sim::Backend;

/// Populations for every timestep, generated once and reusable across
/// backends (noise sweeps re-evaluate the same circuits).
#[derive(Debug, Clone)]
pub struct TfimPopulations {
    /// Model parameters used.
    pub params: TfimParams,
    /// The exact Trotter reference circuit per timestep.
    pub references: Vec<Circuit>,
    /// Approximate-circuit population per timestep.
    pub populations: Vec<Population>,
}

/// One timestep's evaluated results.
#[derive(Debug, Clone)]
pub struct TimestepResult {
    /// 1-based timestep index.
    pub step: usize,
    /// Magnetization of the reference circuit under ideal simulation —
    /// the paper's "Noise free reference".
    pub noise_free_ref: f64,
    /// Magnetization of the reference circuit under the backend —
    /// the paper's "Noisy reference".
    pub noisy_ref: f64,
    /// CNOT count of the reference.
    pub reference_cnots: usize,
    /// The minimal-HS circuit's result — the paper's "Minimal HS" series.
    pub minimal_hs: Scored,
    /// The output-closest-to-ideal circuit — the paper's "Best approximate".
    pub best_approx: Scored,
    /// Every approximate circuit's result (the dots of Figs. 3-4).
    pub all: Vec<Scored>,
}

/// Generates approximate populations for the first `steps` timesteps.
pub fn generate_populations(
    params: &TfimParams,
    steps: usize,
    workflow: &Workflow,
) -> TfimPopulations {
    let references = tfim_series(params, steps);
    let targets: Vec<_> = references.iter().map(Workflow::target_unitary).collect();
    let populations = workflow.generate_series(&targets);
    TfimPopulations {
        params: *params,
        references,
        populations,
    }
}

/// Evaluates the populations (and references) on `backend`.
pub fn evaluate(pops: &TfimPopulations, backend: &Backend) -> Vec<TimestepResult> {
    par_map_indexed(&pops.references, |i, reference| {
        let population = &pops.populations[i];
        {
            let step = i + 1;
            let noise_free_ref = magnetization(&probabilities(&reference.statevector()));
            let noisy_ref = magnetization(&backend.probabilities(reference, 1_000_000 + i as u64));

            let all: Vec<Scored> = population
                .circuits
                .iter()
                .enumerate()
                .map(|(j, ap)| {
                    let probs = backend.probabilities(&ap.circuit, (i as u64) << 20 | j as u64);
                    Scored {
                        cnots: ap.cnots,
                        hs_distance: ap.hs_distance,
                        score: magnetization(&probs),
                    }
                })
                .collect();

            // Minimal-HS series: execute the synthesis optimum.
            let min_probs = backend.probabilities(&population.minimal_hs.circuit, (i as u64) << 21);
            let minimal_hs = Scored {
                cnots: population.minimal_hs.cnots,
                hs_distance: population.minimal_hs.hs_distance,
                score: magnetization(&min_probs),
            };

            // Best approximate: closest output to the noise-free reference
            // (the minimal-HS circuit is always a candidate too).
            let best_approx = all
                .iter()
                .chain(std::iter::once(&minimal_hs))
                .min_by(|a, b| {
                    (a.score - noise_free_ref)
                        .abs()
                        .total_cmp(&(b.score - noise_free_ref).abs())
                })
                .cloned()
                .expect("candidate set is nonempty");

            TimestepResult {
                step,
                noise_free_ref,
                noisy_ref,
                reference_cnots: reference.cx_count(),
                minimal_hs,
                best_approx,
                all,
            }
        }
    })
}

/// Mean absolute magnetization error of a series against the noise-free
/// reference — the scalar behind the paper's "up to 60% precision gain".
pub fn series_error<F: Fn(&TimestepResult) -> f64>(results: &[TimestepResult], pick: F) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results
        .iter()
        .map(|r| (pick(r) - r.noise_free_ref).abs())
        .sum::<f64>()
        / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::Engine;
    use qaprox_device::devices::ourense;
    use qaprox_device::Topology;
    use qaprox_sim::NoiseModel;
    use qaprox_synth::{InstantiateConfig, QSearchConfig};

    fn quick_populations(steps: usize) -> TfimPopulations {
        let params = TfimParams::paper_defaults(3);
        let workflow = Workflow {
            topology: Topology::linear(3),
            engine: Engine::QSearch(QSearchConfig {
                max_cnots: 4,
                max_nodes: 40,
                beam_width: 2,
                instantiate: InstantiateConfig {
                    starts: 1,
                    ..Default::default()
                },
                ..Default::default()
            }),
            max_hs: 0.5,
        };
        generate_populations(&params, steps, &workflow)
    }

    #[test]
    fn populations_cover_every_timestep() {
        let pops = quick_populations(3);
        assert_eq!(pops.references.len(), 3);
        assert_eq!(pops.populations.len(), 3);
        for p in &pops.populations {
            assert!(!p.circuits.is_empty());
        }
    }

    #[test]
    fn evaluation_produces_consistent_rows() {
        let pops = quick_populations(2);
        let cal = ourense().induced(&[0, 1, 2]);
        let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
        let rows = evaluate(&pops, &backend);
        assert_eq!(rows.len(), 2);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.step, i + 1);
            assert!(r.noise_free_ref.abs() <= 1.0 + 1e-9);
            assert!(r.noisy_ref.abs() <= 1.0 + 1e-9);
            assert_eq!(r.all.len(), pops.populations[i].circuits.len());
            // best_approx is by construction at least as close as minimal_hs
            assert!(
                (r.best_approx.score - r.noise_free_ref).abs()
                    <= (r.minimal_hs.score - r.noise_free_ref).abs() + 1e-12
            );
        }
    }

    #[test]
    fn ideal_backend_reproduces_reference_for_exact_circuits() {
        let pops = quick_populations(1);
        let rows = evaluate(&pops, &Backend::Ideal);
        let r = &rows[0];
        // under ideal execution the noisy reference IS the noise-free one
        assert!((r.noisy_ref - r.noise_free_ref).abs() < 1e-9);
        // and a near-exact approximation lands on the reference too
        if r.minimal_hs.hs_distance < 1e-6 {
            assert!((r.minimal_hs.score - r.noise_free_ref).abs() < 1e-4);
        }
    }

    #[test]
    fn series_error_is_zero_for_perfect_series() {
        let pops = quick_populations(2);
        let rows = evaluate(&pops, &Backend::Ideal);
        let err = series_error(&rows, |r| r.noisy_ref);
        assert!(err < 1e-9);
    }
}
