//! Metric-correlation analysis — the paper's Sec. 6.5: "we are interested in
//! a thorough analysis of the numerical value of different metrics
//! (Hilbert-Schmidt distance, Kullback-Leibler divergence, Jensen-Shannon
//! distance, etc.)" as guides for selecting approximate circuits.
//!
//! For a synthesized population this module computes, at a given noise
//! level, how well each *cheap* metric predicts the *expensive* ground truth
//! (output error on the true backend): Pearson and Spearman correlations per
//! metric, per noise level.

use qaprox_circuit::Circuit;
use qaprox_linalg::parallel::{par_map, par_map_indexed};
use qaprox_metrics::stats::{pearson, spearman};
use qaprox_metrics::{js_distance, kl_divergence, total_variation};
use qaprox_sim::Backend;
use qaprox_synth::ApproxCircuit;

/// The candidate predictor metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorMetric {
    /// Hilbert-Schmidt distance recorded at synthesis time (process level).
    HsDistance,
    /// CNOT count (pure depth proxy).
    CnotCount,
    /// JS distance of the *ideal* output to the reference's ideal output.
    IdealJs,
    /// KL divergence of the ideal output to the reference's ideal output
    /// (clamped at a large finite value when supports mismatch).
    IdealKl,
    /// TVD of the ideal output to the reference's ideal output.
    IdealTvd,
}

impl PredictorMetric {
    /// All predictors in report order.
    pub const ALL: [PredictorMetric; 5] = [
        PredictorMetric::HsDistance,
        PredictorMetric::CnotCount,
        PredictorMetric::IdealJs,
        PredictorMetric::IdealKl,
        PredictorMetric::IdealTvd,
    ];

    /// Report label.
    pub fn name(&self) -> &'static str {
        match self {
            PredictorMetric::HsDistance => "hs_distance",
            PredictorMetric::CnotCount => "cnot_count",
            PredictorMetric::IdealJs => "ideal_js",
            PredictorMetric::IdealKl => "ideal_kl",
            PredictorMetric::IdealTvd => "ideal_tvd",
        }
    }
}

/// Correlation of one predictor with the ground truth.
#[derive(Debug, Clone)]
pub struct MetricCorrelation {
    /// Which predictor.
    pub metric: &'static str,
    /// Pearson correlation with true output error.
    pub pearson: f64,
    /// Spearman rank correlation with true output error.
    pub spearman: f64,
}

/// Evaluates every predictor over a population against the true backend.
///
/// `reference_ideal` is the noise-free output distribution of the reference
/// circuit; ground truth for each candidate is the TVD between its noisy
/// output and `reference_ideal`.
pub fn correlate(
    population: &[ApproxCircuit],
    reference_ideal: &[f64],
    backend: &Backend,
) -> Vec<MetricCorrelation> {
    assert!(
        population.len() >= 3,
        "need at least 3 candidates to correlate"
    );

    // ground truth: true output error per candidate
    let truth: Vec<f64> = par_map_indexed(population, |i, ap| {
        let noisy = backend.probabilities(&ap.circuit, i as u64);
        total_variation(&noisy, reference_ideal)
    });

    // predictor values
    let ideal_outputs: Vec<Vec<f64>> = par_map(population, |ap| ideal_probabilities(&ap.circuit));

    PredictorMetric::ALL
        .iter()
        .map(|metric| {
            let values: Vec<f64> = population
                .iter()
                .zip(&ideal_outputs)
                .map(|(ap, ideal)| match metric {
                    PredictorMetric::HsDistance => ap.hs_distance,
                    PredictorMetric::CnotCount => ap.cnots as f64,
                    PredictorMetric::IdealJs => js_distance(ideal, reference_ideal),
                    PredictorMetric::IdealKl => kl_divergence(ideal, reference_ideal).min(1e3),
                    PredictorMetric::IdealTvd => total_variation(ideal, reference_ideal),
                })
                .collect();
            MetricCorrelation {
                metric: metric.name(),
                pearson: pearson(&values, &truth),
                spearman: spearman(&values, &truth),
            }
        })
        .collect()
}

fn ideal_probabilities(circuit: &Circuit) -> Vec<f64> {
    qaprox_sim::statevector::probabilities(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{Engine, Workflow};
    use qaprox_algos::tfim::{tfim_circuit, TfimParams};
    use qaprox_device::devices::ourense;
    use qaprox_device::Topology;
    use qaprox_sim::NoiseModel;
    use qaprox_synth::{InstantiateConfig, QSearchConfig};

    fn study_population() -> (Vec<ApproxCircuit>, Vec<f64>) {
        let params = TfimParams::paper_defaults(3);
        let reference = tfim_circuit(&params, 5);
        let wf = Workflow {
            topology: Topology::linear(3),
            engine: Engine::QSearch(QSearchConfig {
                max_cnots: 5,
                max_nodes: 60,
                beam_width: 3,
                instantiate: InstantiateConfig {
                    starts: 1,
                    ..Default::default()
                },
                ..Default::default()
            }),
            max_hs: 0.4,
        };
        let pop = wf.generate(&Workflow::target_unitary(&reference));
        let ideal = qaprox_sim::statevector::probabilities(&reference);
        (pop.circuits, ideal)
    }

    #[test]
    fn correlations_are_well_formed() {
        let (pop, ideal) = study_population();
        let cal = ourense().induced(&[0, 1, 2]).with_uniform_cx_error(0.05);
        let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
        let report = correlate(&pop, &ideal, &backend);
        assert_eq!(report.len(), 5);
        for r in &report {
            assert!(
                r.pearson.abs() <= 1.0 + 1e-12,
                "{}: {}",
                r.metric,
                r.pearson
            );
            assert!(r.spearman.abs() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn ideal_tvd_predicts_truth_at_low_noise() {
        // with almost no noise, the ideal-output TVD *is* the ground truth
        let (pop, ideal) = study_population();
        let cal = ourense().induced(&[0, 1, 2]).with_uniform_cx_error(0.0);
        let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
        let report = correlate(&pop, &ideal, &backend);
        let tvd = report.iter().find(|r| r.metric == "ideal_tvd").unwrap();
        assert!(
            tvd.spearman > 0.9,
            "ideal TVD should rank-predict truth at zero noise: {}",
            tvd.spearman
        );
    }

    #[test]
    fn depth_matters_more_as_noise_grows() {
        let (pop, ideal) = study_population();
        let lo = {
            let cal = ourense().induced(&[0, 1, 2]).with_uniform_cx_error(0.001);
            let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
            correlate(&pop, &ideal, &backend)
        };
        let hi = {
            let cal = ourense().induced(&[0, 1, 2]).with_uniform_cx_error(0.2);
            let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
            correlate(&pop, &ideal, &backend)
        };
        let depth_lo = lo
            .iter()
            .find(|r| r.metric == "cnot_count")
            .unwrap()
            .spearman;
        let depth_hi = hi
            .iter()
            .find(|r| r.metric == "cnot_count")
            .unwrap()
            .spearman;
        assert!(
            depth_hi > depth_lo,
            "CNOT count should predict error better under heavy noise: {depth_lo} -> {depth_hi}"
        );
    }
}
