//! The Grover experiment driver — Figs. 5 and 14.
//!
//! Score = probability of measuring the marked bitstring ("selecting the
//! correct box"). The reference is the hand-coded oracle+diffuser circuit;
//! approximations are synthesized from the full Grover unitary.

use crate::workflow::{Scored, Workflow};
use qaprox_algos::grover::grover_circuit;
use qaprox_circuit::Circuit;
use qaprox_linalg::parallel::par_map_indexed;
use qaprox_metrics::success_probability;
use qaprox_sim::Backend;
use qaprox_synth::ApproxCircuit;

/// A configured Grover study.
#[derive(Debug, Clone)]
pub struct GroverStudy {
    /// Number of qubits.
    pub num_qubits: usize,
    /// Marked bitstring.
    pub target_state: usize,
    /// Grover iterations in the reference circuit.
    pub iterations: usize,
}

impl GroverStudy {
    /// The paper's study: 3 qubits, `|111>`, optimal iterations.
    pub fn paper() -> Self {
        GroverStudy {
            num_qubits: 3,
            target_state: 0b111,
            iterations: qaprox_algos::grover::optimal_iterations(3),
        }
    }

    /// The hand-coded reference circuit.
    pub fn reference(&self) -> Circuit {
        grover_circuit(self.num_qubits, self.target_state, self.iterations)
    }

    /// The synthesis target (reference unitary).
    pub fn target_unitary(&self) -> qaprox_linalg::Matrix {
        Workflow::target_unitary(&self.reference())
    }

    /// Executes the reference and returns its success probability.
    pub fn reference_score(&self, backend: &Backend) -> f64 {
        let probs = backend.probabilities(&self.reference(), 0xFEED);
        success_probability(&probs, self.target_state)
    }

    /// Executes and scores an approximate population.
    pub fn evaluate_population(
        &self,
        population: &[ApproxCircuit],
        backend: &Backend,
    ) -> Vec<Scored> {
        par_map_indexed(population, |i, ap| {
            let probs = backend.probabilities(&ap.circuit, (i as u64) << 8);
            Scored {
                cnots: ap.cnots,
                hs_distance: ap.hs_distance,
                score: success_probability(&probs, self.target_state),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_device::devices::ourense;
    use qaprox_sim::NoiseModel;

    #[test]
    fn paper_study_reference_is_strong_when_ideal() {
        let study = GroverStudy::paper();
        let score = study.reference_score(&Backend::Ideal);
        assert!(score > 0.9, "ideal Grover should find the box: {score}");
    }

    #[test]
    fn noise_degrades_reference_below_ideal() {
        let study = GroverStudy::paper();
        let cal = ourense().induced(&[0, 1, 2]).with_uniform_cx_error(0.05);
        let noisy = study.reference_score(&Backend::Noisy(NoiseModel::from_calibration(cal)));
        let ideal = study.reference_score(&Backend::Ideal);
        assert!(
            noisy < ideal - 0.2,
            "24+ CNOTs at 5% error must hurt: {noisy} vs {ideal}"
        );
    }

    #[test]
    fn population_scoring_shape() {
        let study = GroverStudy::paper();
        // tiny synthetic population: the reference itself plus a trivial circuit
        let pop = vec![
            ApproxCircuit::new(study.reference(), 0.0),
            ApproxCircuit::new(Circuit::new(3), 0.9),
        ];
        let scored = study.evaluate_population(&pop, &Backend::Ideal);
        assert_eq!(scored.len(), 2);
        assert!(scored[0].score > 0.9);
        // the empty circuit leaves |000>, which is not the marked state
        assert!(scored[1].score < 0.01);
    }
}
