//! The approximate-circuit workflow of the paper's Fig. 1:
//!
//! 1. obtain the **target unitary** of a reference circuit;
//! 2. run modified synthesis to generate **many candidate circuits**;
//! 3. **select** candidates by a Hilbert-Schmidt threshold (never < 0.1);
//! 4. **execute** the selection on a simulator/noise-model/hardware backend;
//! 5. **evaluate** outputs against the noise-free reference.

use qaprox_circuit::Circuit;
use qaprox_device::Topology;
use qaprox_linalg::parallel::{self, par_map, par_map_indexed};
use qaprox_linalg::Matrix;
use qaprox_metrics::hs_distance;
use qaprox_sim::Backend;
use qaprox_synth::{
    dedupe, qfast, qsearch, select_by_threshold, ApproxCircuit, QFastConfig, QSearchConfig,
    SynthesisOutput,
};

/// Which synthesis engine generates the candidate stream.
#[derive(Debug, Clone)]
pub enum Engine {
    /// A* search (3-4 qubits; exhaustive-ish).
    QSearch(QSearchConfig),
    /// Greedy hierarchical blocks (scales further, coarser stream).
    QFast(QFastConfig),
    /// Union of both streams (the paper uses both tools).
    Both(QSearchConfig, QFastConfig),
}

impl Engine {
    /// A QSearch engine with sensible experiment defaults.
    pub fn default_qsearch() -> Self {
        Engine::QSearch(QSearchConfig::default())
    }
}

/// The generation + selection stage.
#[derive(Debug, Clone)]
pub struct Workflow {
    /// Topology the synthesized circuits must respect (usually the linear
    /// chain the paper maps onto qubits 0..n).
    pub topology: Topology,
    /// Synthesis engine(s).
    pub engine: Engine,
    /// Selection threshold on HS distance (paper: at least 0.1).
    pub max_hs: f64,
}

/// A generated, selected candidate population for one target.
#[derive(Debug, Clone)]
pub struct Population {
    /// Selected approximate circuits (HS below threshold), deduped.
    pub circuits: Vec<ApproxCircuit>,
    /// The best (minimum-HS) circuit the synthesis found.
    pub minimal_hs: ApproxCircuit,
    /// Total candidates evaluated by synthesis before selection.
    pub explored: usize,
}

impl Workflow {
    /// A workflow over a linear chain with QSearch and the paper's 0.1
    /// threshold.
    pub fn linear_qsearch(num_qubits: usize) -> Self {
        Workflow {
            topology: Topology::linear(num_qubits),
            engine: Engine::default_qsearch(),
            max_hs: 0.1,
        }
    }

    /// Step 1 of Fig. 1: the target unitary of a reference circuit
    /// (the `Operator(circuit).data` call in the paper's Qiskit recipe).
    pub fn target_unitary(reference: &Circuit) -> Matrix {
        reference.unitary()
    }

    /// Steps 2-3: generate candidates and select by the HS threshold.
    pub fn generate(&self, target: &Matrix) -> Population {
        let outputs: Vec<SynthesisOutput> = match &self.engine {
            Engine::QSearch(cfg) => vec![qsearch(target, &self.topology, cfg)],
            Engine::QFast(cfg) => vec![qfast(target, &self.topology, cfg)],
            Engine::Both(qs, qf) => {
                let (a, b) = parallel::join(
                    || qsearch(target, &self.topology, qs),
                    || qfast(target, &self.topology, qf),
                );
                vec![a, b]
            }
        };
        let explored = outputs.iter().map(|o| o.nodes_evaluated).sum();
        let minimal_hs = outputs
            .iter()
            .map(|o| o.best.clone())
            .min_by(|a, b| a.hs_distance.total_cmp(&b.hs_distance))
            .expect("at least one engine ran");
        let all: Vec<ApproxCircuit> = outputs.into_iter().flat_map(|o| o.intermediates).collect();
        let circuits = dedupe(&select_by_threshold(&all, self.max_hs));
        Population {
            circuits,
            minimal_hs,
            explored,
        }
    }

    /// Generates populations for a series of targets in parallel (e.g. the
    /// 21 TFIM timesteps).
    pub fn generate_series(&self, targets: &[Matrix]) -> Vec<Population> {
        par_map(targets, |t| self.generate(t))
    }
}

/// One executed-and-scored circuit (a dot on the paper's figures).
#[derive(Debug, Clone)]
pub struct Scored {
    /// CNOT count of the executed circuit.
    pub cnots: usize,
    /// HS distance recorded at synthesis time.
    pub hs_distance: f64,
    /// Scalar quality score (metric-dependent: magnetization, success
    /// probability, or JS distance).
    pub score: f64,
}

/// Steps 4-5: execute every circuit of a population on `backend` and score
/// its output distribution with `metric`.
pub fn execute_and_score<F>(
    population: &[ApproxCircuit],
    backend: &Backend,
    metric: F,
) -> Vec<Scored>
where
    F: Fn(&Circuit, &[f64]) -> f64 + Sync,
{
    par_map_indexed(population, |i, ap| {
        let probs = backend.probabilities(&ap.circuit, i as u64);
        Scored {
            cnots: ap.cnots,
            hs_distance: ap.hs_distance,
            score: metric(&ap.circuit, &probs),
        }
    })
}

/// Convenience: verify a recorded population against its target (sanity
/// check used by tests and the experiment harness).
pub fn verify_population(population: &Population, target: &Matrix, tol: f64) -> bool {
    population
        .circuits
        .iter()
        .all(|ap| (hs_distance(&ap.circuit.unitary(), target) - ap.hs_distance).abs() < tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_metrics::{magnetization, probabilities};
    use qaprox_synth::InstantiateConfig;

    fn quick_workflow(n: usize) -> Workflow {
        Workflow {
            topology: Topology::linear(n),
            engine: Engine::QSearch(QSearchConfig {
                max_cnots: 4,
                max_nodes: 80,
                beam_width: 3,
                instantiate: InstantiateConfig {
                    starts: 2,
                    ..Default::default()
                },
                ..Default::default()
            }),
            max_hs: 0.4,
        }
    }

    fn ghz_reference() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn generate_produces_selected_population() {
        let wf = quick_workflow(2);
        let target = Workflow::target_unitary(&ghz_reference());
        let pop = wf.generate(&target);
        assert!(!pop.circuits.is_empty(), "population should not be empty");
        assert!(pop
            .circuits
            .iter()
            .all(|c| c.hs_distance <= wf.max_hs + 1e-12));
        assert!(
            pop.minimal_hs.hs_distance < 1e-8,
            "GHZ prep is exactly synthesizable"
        );
        assert!(pop.explored >= pop.circuits.len());
        assert!(verify_population(&pop, &target, 1e-6));
    }

    #[test]
    fn execute_and_score_on_ideal_backend() {
        let wf = quick_workflow(2);
        let target = Workflow::target_unitary(&ghz_reference());
        let pop = wf.generate(&target);
        let scored = execute_and_score(&pop.circuits, &Backend::Ideal, |_, p| magnetization(p));
        assert_eq!(scored.len(), pop.circuits.len());
        // the reference GHZ state has magnetization 0; near-exact circuits
        // must score near 0
        let exact_ref = magnetization(&probabilities(&ghz_reference().statevector()));
        for s in scored.iter().filter(|s| s.hs_distance < 1e-6) {
            assert!((s.score - exact_ref).abs() < 1e-6);
        }
    }

    #[test]
    fn series_generation_matches_individual() {
        let wf = quick_workflow(2);
        let t1 = Workflow::target_unitary(&ghz_reference());
        let mut other = Circuit::new(2);
        other.h(0).cx(0, 1).rz(0.5, 1);
        let t2 = Workflow::target_unitary(&other);
        let series = wf.generate_series(&[t1.clone(), t2.clone()]);
        assert_eq!(series.len(), 2);
        let solo = wf.generate(&t1);
        assert_eq!(series[0].circuits.len(), solo.circuits.len());
    }

    #[test]
    fn threshold_controls_population_size() {
        let mut wf = quick_workflow(2);
        let target = Workflow::target_unitary(&ghz_reference());
        wf.max_hs = 0.5;
        let loose = wf.generate(&target).circuits.len();
        wf.max_hs = 0.01;
        let tight = wf.generate(&target).circuits.len();
        assert!(loose >= tight, "looser threshold keeps more circuits");
    }
}
