//! The approximate-circuit workflow of the paper's Fig. 1:
//!
//! 1. obtain the **target unitary** of a reference circuit;
//! 2. run modified synthesis to generate **many candidate circuits**;
//! 3. **select** candidates by a Hilbert-Schmidt threshold (never < 0.1);
//! 4. **execute** the selection on a simulator/noise-model/hardware backend;
//! 5. **evaluate** outputs against the noise-free reference.

use qaprox_circuit::Circuit;
use qaprox_device::Topology;
use qaprox_linalg::parallel::{self, par_map, par_map_indexed};
use qaprox_linalg::Matrix;
use qaprox_metrics::hs_distance;
use qaprox_sim::Backend;
use qaprox_synth::{
    dedupe, qfast, qfast_with_hooks, qsearch, qsearch_resume, qsearch_with_hooks,
    select_by_threshold, ApproxCircuit, ProgressFn, QFastConfig, QSearchConfig, SearchHooks,
    SynthStats, SynthesisOutput,
};

/// Which synthesis engine generates the candidate stream.
#[derive(Debug, Clone)]
pub enum Engine {
    /// A* search (3-4 qubits; exhaustive-ish).
    QSearch(QSearchConfig),
    /// Greedy hierarchical blocks (scales further, coarser stream).
    QFast(QFastConfig),
    /// Union of both streams (the paper uses both tools).
    Both(QSearchConfig, QFastConfig),
}

impl Engine {
    /// A QSearch engine with sensible experiment defaults.
    pub fn default_qsearch() -> Self {
        Engine::QSearch(QSearchConfig::default())
    }
}

/// The generation + selection stage.
#[derive(Debug, Clone)]
pub struct Workflow {
    /// Topology the synthesized circuits must respect (usually the linear
    /// chain the paper maps onto qubits 0..n).
    pub topology: Topology,
    /// Synthesis engine(s).
    pub engine: Engine,
    /// Selection threshold on HS distance (paper: at least 0.1).
    pub max_hs: f64,
}

/// A generated, selected candidate population for one target.
#[derive(Debug, Clone)]
pub struct Population {
    /// Selected approximate circuits (HS below threshold), deduped.
    pub circuits: Vec<ApproxCircuit>,
    /// The best (minimum-HS) circuit the synthesis found.
    pub minimal_hs: ApproxCircuit,
    /// Total candidates evaluated by synthesis before selection.
    pub explored: usize,
    /// Memo-cache counters aggregated over every engine that ran.
    pub stats: SynthStats,
}

impl Workflow {
    /// A workflow over a linear chain with QSearch and the paper's 0.1
    /// threshold.
    pub fn linear_qsearch(num_qubits: usize) -> Self {
        Workflow {
            topology: Topology::linear(num_qubits),
            engine: Engine::default_qsearch(),
            max_hs: 0.1,
        }
    }

    /// Step 1 of Fig. 1: the target unitary of a reference circuit
    /// (the `Operator(circuit).data` call in the paper's Qiskit recipe).
    pub fn target_unitary(reference: &Circuit) -> Matrix {
        reference.unitary()
    }

    /// Steps 2-3: generate candidates and select by the HS threshold.
    pub fn generate(&self, target: &Matrix) -> Population {
        let outputs: Vec<SynthesisOutput> = match &self.engine {
            Engine::QSearch(cfg) => vec![qsearch(target, &self.topology, cfg)],
            Engine::QFast(cfg) => vec![qfast(target, &self.topology, cfg)],
            Engine::Both(qs, qf) => {
                let (a, b) = parallel::join(
                    || qsearch(target, &self.topology, qs),
                    || qfast(target, &self.topology, qf),
                );
                vec![a, b]
            }
        };
        let explored = outputs.iter().map(|o| o.nodes_evaluated).sum();
        let mut stats = SynthStats::default();
        for o in &outputs {
            stats.absorb(&o.stats);
        }
        let minimal_hs = outputs
            .iter()
            .map(|o| o.best.clone())
            .min_by(|a, b| a.hs_distance.total_cmp(&b.hs_distance))
            .expect("at least one engine ran");
        let all: Vec<ApproxCircuit> = outputs.into_iter().flat_map(|o| o.intermediates).collect();
        let circuits = dedupe(&select_by_threshold(&all, self.max_hs));
        Population {
            circuits,
            minimal_hs,
            explored,
            stats,
        }
    }

    /// Generates populations for a series of targets in parallel (e.g. the
    /// 21 TFIM timesteps).
    pub fn generate_series(&self, targets: &[Matrix]) -> Vec<Population> {
        par_map(targets, |t| self.generate(t))
    }

    /// [`Workflow::generate`] under external control: resume credit,
    /// cooperative cancellation, and checkpoint streaming.
    ///
    /// Engines run **sequentially** (QSearch then QFast for
    /// [`Engine::Both`]) so that resume maps onto a deterministic order.
    /// What a resumed run does with `prior`/`nodes_credit` depends on
    /// [`GenerateControl::resume`]:
    ///
    /// * [`ResumeMode::Complement`] (the default): the first `max_nodes` of
    ///   credit pay down the QSearch budget, the remainder pays down QFast
    ///   blocks, and the instantiation seed is salted by the credit so the
    ///   resumed nodes complement (rather than replay) the prior run's. The
    ///   final population unions `prior` with the new stream.
    /// * [`ResumeMode::Replay`]: the run keeps its full budget and original
    ///   seed, and `prior` pre-warms the QSearch structure memo instead —
    ///   the search replays the identical trajectory from node 0, serving
    ///   already-evaluated structures from cache, so the output is
    ///   **bit-identical** to an uninterrupted run while skipping most of
    ///   the re-instantiation cost. This is what the job service uses, so a
    ///   crash-recovered job fingerprints identically to a clean one.
    pub fn generate_with(&self, target: &Matrix, ctl: GenerateControl<'_>) -> Generation {
        let GenerateControl {
            prior,
            nodes_credit: credit,
            resume,
            cancel,
            mut checkpoint,
        } = ctl;
        let replaying = matches!(resume, ResumeMode::Replay);
        let salt = if replaying {
            0
        } else {
            (credit as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        };
        let cancelled = || cancel.as_ref().is_some_and(|f| f());

        let (qs_cfg, qf_cfg): (Option<&QSearchConfig>, Option<&QFastConfig>) = match &self.engine {
            Engine::QSearch(c) => (Some(c), None),
            Engine::QFast(c) => (None, Some(c)),
            Engine::Both(a, b) => (Some(a), Some(b)),
        };

        let mut outputs: Vec<SynthesisOutput> = Vec::new();
        let mut live_nodes = 0usize;

        if let Some(cfg) = qs_cfg {
            let mut adj = cfg.clone();
            if !replaying {
                adj.max_nodes = cfg.max_nodes.saturating_sub(credit);
                adj.instantiate.seed = adj.instantiate.seed.wrapping_add(salt);
            }
            // with the budget fully credited and prior results in hand there
            // is nothing left for this engine to add (complement mode only;
            // a replay always re-traverses its full budget)
            if (replaying || adj.max_nodes > 0 || prior.is_empty()) && !cancelled() {
                let mut hooks = SearchHooks {
                    on_progress: checkpoint.as_mut().map(|cb| {
                        // replay counts are already absolute (from node 0)
                        let base = if replaying { 0 } else { credit };
                        Box::new(move |n: usize, inter: &[ApproxCircuit]| cb(base + n, inter))
                            as Box<dyn FnMut(usize, &[ApproxCircuit])>
                    }),
                    cancel: cancel
                        .as_ref()
                        .map(|f| Box::new(f) as Box<dyn Fn() -> bool + '_>),
                };
                let out = if replaying {
                    qsearch_resume(target, &self.topology, &adj, &prior, &mut hooks)
                } else {
                    qsearch_with_hooks(target, &self.topology, &adj, &mut hooks)
                };
                live_nodes += out.nodes_evaluated;
                outputs.push(out);
            }
        }

        if let Some(cfg) = qf_cfg {
            // QFast evaluates one candidate per edge per block depth, so
            // leftover credit converts to completed depths exactly. In
            // replay mode QFast has no memo to warm, so it simply re-runs in
            // full — deterministic, hence still bit-identical.
            let edges = self.topology.edges().len().max(1);
            let qf_credit = credit.saturating_sub(qs_cfg.map_or(0, |c| c.max_nodes));
            let mut adj = cfg.clone();
            if !replaying {
                adj.max_blocks = cfg.max_blocks.saturating_sub(qf_credit / edges);
                adj.seed = adj.seed.wrapping_add(salt);
            }
            let run_anyway = replaying || (prior.is_empty() && outputs.is_empty());
            if (adj.max_blocks > 0 || run_anyway) && !cancelled() {
                // checkpoints must carry everything from THIS invocation, so
                // prepend the finished QSearch stream (QFast rounds are few)
                let prefix: Vec<ApproxCircuit> = outputs
                    .iter()
                    .flat_map(|o| o.intermediates.iter().cloned())
                    .collect();
                let base = if replaying {
                    live_nodes
                } else {
                    credit + live_nodes
                };
                let mut hooks = SearchHooks {
                    on_progress: checkpoint.as_mut().map(|cb| {
                        Box::new(move |n: usize, inter: &[ApproxCircuit]| {
                            let mut all = prefix.clone();
                            all.extend_from_slice(inter);
                            cb(base + n, &all);
                        }) as Box<dyn FnMut(usize, &[ApproxCircuit])>
                    }),
                    cancel: cancel
                        .as_ref()
                        .map(|f| Box::new(f) as Box<dyn Fn() -> bool + '_>),
                };
                let out = qfast_with_hooks(target, &self.topology, &adj, &mut hooks);
                live_nodes += out.nodes_evaluated;
                outputs.push(out);
            }
        }

        let completed = !cancelled();
        let mut stats = SynthStats::default();
        for o in &outputs {
            stats.absorb(&o.stats);
        }
        // A replay regenerates the full stream from node 0, so folding the
        // prior prefix back in would double it; complement mode unions. A
        // replay that was cancelled before any engine ran falls back to the
        // prior checkpoint unchanged.
        let mut all: Vec<ApproxCircuit> = if replaying && !outputs.is_empty() {
            Vec::new()
        } else {
            prior
        };
        for o in &outputs {
            all.extend(o.intermediates.iter().cloned());
        }
        if all.is_empty() {
            // cancelled before anything ran and no prior: fall back to the
            // empty circuit so the population stays well-formed
            let empty = Circuit::new(self.topology.num_qubits());
            let d = hs_distance(&empty.unitary(), target);
            all.push(ApproxCircuit::new(empty, d));
        }
        let minimal_hs = all
            .iter()
            .min_by(|a, b| a.hs_distance.total_cmp(&b.hs_distance))
            .cloned()
            .expect("union is non-empty by construction");
        let circuits = dedupe(&select_by_threshold(&all, self.max_hs));
        let explored = if replaying && !outputs.is_empty() {
            live_nodes
        } else {
            credit + live_nodes
        };
        Generation {
            population: Population {
                circuits,
                minimal_hs,
                explored,
                stats,
            },
            completed,
        }
    }
}

/// How [`Workflow::generate_with`] treats a prior partial run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResumeMode {
    /// Credit the prior nodes against the budget and explore complementary
    /// candidates under a salted seed; union `prior` into the result. Total
    /// work across both runs stays within one budget, but the combined
    /// stream differs from an uninterrupted run's.
    #[default]
    Complement,
    /// Replay the original trajectory from node 0 with the full budget and
    /// unsalted seed, using `prior` only to pre-warm the structure memo.
    /// The result is bit-identical to an uninterrupted run; the prior
    /// prefix costs only memo lookups instead of re-instantiation.
    Replay,
}

/// Control block for [`Workflow::generate_with`].
#[derive(Default)]
pub struct GenerateControl<'a> {
    /// Intermediates recovered from a prior partial run; unioned into the
    /// final population (complement) or used as a memo warm-start (replay).
    pub prior: Vec<ApproxCircuit>,
    /// Nodes already evaluated by prior runs. In complement mode this is
    /// credited against the engines' budgets and salts the instantiation
    /// seeds; in replay mode it is informational only (progress counts
    /// restart from zero and cover the replayed prefix).
    pub nodes_credit: usize,
    /// What to do with `prior` (see [`ResumeMode`]).
    pub resume: ResumeMode,
    /// Polled between synthesis rounds; `true` stops generation early.
    pub cancel: Option<Box<dyn Fn() -> bool + 'a>>,
    /// Called after each synthesis round with `(total nodes, every
    /// intermediate generated by this invocation)`. In complement mode the
    /// total includes the credit and the caller merges in its own `prior`
    /// when persisting a checkpoint; in replay mode both the count and the
    /// stream are absolute (they include the replayed prefix).
    pub checkpoint: Option<ProgressFn<'a>>,
}

impl std::fmt::Debug for GenerateControl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenerateControl")
            .field("prior", &self.prior.len())
            .field("nodes_credit", &self.nodes_credit)
            .field("resume", &self.resume)
            .field("cancel", &self.cancel.is_some())
            .field("checkpoint", &self.checkpoint.is_some())
            .finish()
    }
}

/// What [`Workflow::generate_with`] produced.
#[derive(Debug, Clone)]
pub struct Generation {
    /// The (possibly partial) population: prior ∪ new, selected and deduped.
    pub population: Population,
    /// False when the run was stopped by [`GenerateControl::cancel`]; the
    /// population is then a checkpoint, not a finished artifact.
    pub completed: bool,
}

/// One executed-and-scored circuit (a dot on the paper's figures).
#[derive(Debug, Clone)]
pub struct Scored {
    /// CNOT count of the executed circuit.
    pub cnots: usize,
    /// HS distance recorded at synthesis time.
    pub hs_distance: f64,
    /// Scalar quality score (metric-dependent: magnetization, success
    /// probability, or JS distance).
    pub score: f64,
}

/// Steps 4-5: execute every circuit of a population on `backend` and score
/// its output distribution with `metric`.
pub fn execute_and_score<F>(
    population: &[ApproxCircuit],
    backend: &Backend,
    metric: F,
) -> Vec<Scored>
where
    F: Fn(&Circuit, &[f64]) -> f64 + Sync,
{
    par_map_indexed(population, |i, ap| {
        let probs = backend.probabilities(&ap.circuit, i as u64);
        Scored {
            cnots: ap.cnots,
            hs_distance: ap.hs_distance,
            score: metric(&ap.circuit, &probs),
        }
    })
}

/// How a bound-first execution pass spent its population.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CertifyStats {
    /// Candidates scored statically from the certified equivalence bound
    /// (no backend call).
    pub certified: usize,
    /// Candidates the bound could not decide — executed on the backend.
    pub simulated: usize,
    /// Candidates dropped because they provably violate ε-equivalence.
    pub rejected: usize,
}

/// Steps 4-5 with a static shortcut: every candidate first gets an O(gates)
/// equivalence check against `reference` under `cal` (the QA5xx bound from
/// `qaprox-verify`). Candidates **certified** within `epsilon` inherit the
/// reference's own score padded by their certified bound — sound whenever
/// `metric` is 1-Lipschitz in total-variation distance and `[0, 1]`-bounded
/// (success probability is) — so only the *undecided* band ever touches the
/// backend. Provably-violating candidates are dropped.
pub fn execute_and_score_bound_first<F>(
    population: &[ApproxCircuit],
    reference: &Circuit,
    cal: &qaprox_device::Calibration,
    epsilon: f64,
    backend: &Backend,
    metric: F,
) -> (Vec<Scored>, CertifyStats)
where
    F: Fn(&Circuit, &[f64]) -> f64 + Sync,
{
    let bands = qaprox_synth::partition_by_bound(population, reference, cal, epsilon);
    let stats = CertifyStats {
        certified: bands.certified.len(),
        simulated: bands.undecided.len(),
        rejected: bands.rejected.len(),
    };
    let mut scored = Vec::with_capacity(bands.certified.len() + bands.undecided.len());
    if !bands.certified.is_empty() {
        let ref_probs = backend.probabilities(reference, 0);
        let ref_score = metric(reference, &ref_probs);
        for (ap, bound) in &bands.certified {
            scored.push(Scored {
                cnots: ap.cnots,
                hs_distance: ap.hs_distance,
                score: qaprox_synth::certified_score(ref_score, *bound),
            });
        }
    }
    scored.extend(execute_and_score(&bands.undecided, backend, metric));
    (scored, stats)
}

/// Convenience: verify a recorded population against its target (sanity
/// check used by tests and the experiment harness).
pub fn verify_population(population: &Population, target: &Matrix, tol: f64) -> bool {
    population
        .circuits
        .iter()
        .all(|ap| (hs_distance(&ap.circuit.unitary(), target) - ap.hs_distance).abs() < tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_metrics::{magnetization, probabilities};
    use qaprox_synth::InstantiateConfig;

    fn quick_workflow(n: usize) -> Workflow {
        Workflow {
            topology: Topology::linear(n),
            engine: Engine::QSearch(QSearchConfig {
                max_cnots: 4,
                max_nodes: 80,
                beam_width: 3,
                instantiate: InstantiateConfig {
                    starts: 2,
                    ..Default::default()
                },
                ..Default::default()
            }),
            max_hs: 0.4,
        }
    }

    fn ghz_reference() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn generate_produces_selected_population() {
        let wf = quick_workflow(2);
        let target = Workflow::target_unitary(&ghz_reference());
        let pop = wf.generate(&target);
        assert!(!pop.circuits.is_empty(), "population should not be empty");
        assert!(pop
            .circuits
            .iter()
            .all(|c| c.hs_distance <= wf.max_hs + 1e-12));
        assert!(
            pop.minimal_hs.hs_distance < 1e-8,
            "GHZ prep is exactly synthesizable"
        );
        assert!(pop.explored >= pop.circuits.len());
        assert!(verify_population(&pop, &target, 1e-6));
    }

    #[test]
    fn execute_and_score_on_ideal_backend() {
        let wf = quick_workflow(2);
        let target = Workflow::target_unitary(&ghz_reference());
        let pop = wf.generate(&target);
        let scored = execute_and_score(&pop.circuits, &Backend::Ideal, |_, p| magnetization(p));
        assert_eq!(scored.len(), pop.circuits.len());
        // the reference GHZ state has magnetization 0; near-exact circuits
        // must score near 0
        let exact_ref = magnetization(&probabilities(&ghz_reference().statevector()));
        for s in scored.iter().filter(|s| s.hs_distance < 1e-6) {
            assert!((s.score - exact_ref).abs() < 1e-6);
        }
    }

    #[test]
    fn series_generation_matches_individual() {
        let wf = quick_workflow(2);
        let t1 = Workflow::target_unitary(&ghz_reference());
        let mut other = Circuit::new(2);
        other.h(0).cx(0, 1).rz(0.5, 1);
        let t2 = Workflow::target_unitary(&other);
        let series = wf.generate_series(&[t1.clone(), t2.clone()]);
        assert_eq!(series.len(), 2);
        let solo = wf.generate(&t1);
        assert_eq!(series[0].circuits.len(), solo.circuits.len());
    }

    #[test]
    fn generate_with_defaults_matches_generate() {
        let wf = quick_workflow(2);
        let target = Workflow::target_unitary(&ghz_reference());
        let plain = wf.generate(&target);
        let gen = wf.generate_with(&target, GenerateControl::default());
        assert!(gen.completed);
        assert_eq!(gen.population.explored, plain.explored);
        assert_eq!(gen.population.circuits.len(), plain.circuits.len());
        assert_eq!(
            gen.population.minimal_hs.hs_distance,
            plain.minimal_hs.hs_distance
        );
    }

    #[test]
    fn cancelled_generation_resumes_from_checkpoint() {
        let wf = quick_workflow(2);
        let target = Workflow::target_unitary(&ghz_reference());
        let budget = match &wf.engine {
            Engine::QSearch(c) => c.max_nodes,
            _ => unreachable!(),
        };

        // first run: cancel after the first checkpoint, capturing it
        let checkpointed: std::cell::RefCell<(usize, Vec<ApproxCircuit>)> =
            std::cell::RefCell::new((0, Vec::new()));
        let first = wf.generate_with(
            &target,
            GenerateControl {
                cancel: Some(Box::new(|| checkpointed.borrow().0 > 0)),
                checkpoint: Some(Box::new(|nodes, inter| {
                    *checkpointed.borrow_mut() = (nodes, inter.to_vec());
                })),
                ..Default::default()
            },
        );
        assert!(!first.completed, "cancel must mark the run incomplete");
        let (nodes_done, circuits) = checkpointed.into_inner();
        assert!(nodes_done > 0 && nodes_done < budget);
        assert!(!circuits.is_empty());

        // second run: resume with credit — must finish within the remaining
        // budget and fold the prior circuits into the population
        let resumed = wf.generate_with(
            &target,
            GenerateControl {
                prior: circuits.clone(),
                nodes_credit: nodes_done,
                ..Default::default()
            },
        );
        assert!(resumed.completed);
        assert!(
            resumed.population.explored <= budget + 4,
            "credit must bound total work: {} vs {budget}",
            resumed.population.explored
        );
        assert!(
            resumed.population.explored > nodes_done,
            "resume ran fresh nodes"
        );
        // prior selected circuits survive into the resumed population
        let selected_prior = dedupe(&select_by_threshold(&circuits, wf.max_hs));
        assert!(resumed.population.circuits.len() >= selected_prior.len());
    }

    #[test]
    fn replay_resume_is_bit_identical_to_an_uninterrupted_run() {
        // a 3-qubit GHZ-with-phase target keeps the search running to its
        // node cap, so the cancelled run really stops mid-stream
        let wf = Workflow {
            topology: Topology::linear(3),
            engine: Engine::QSearch(QSearchConfig {
                max_cnots: 4,
                max_nodes: 50,
                beam_width: 2,
                instantiate: InstantiateConfig {
                    starts: 1,
                    ..Default::default()
                },
                ..Default::default()
            }),
            max_hs: 0.5,
        };
        let mut reference = Circuit::new(3);
        reference.h(0).cx(0, 1).cx(1, 2).rz(0.4, 2).cx(0, 1);
        let target = Workflow::target_unitary(&reference);
        let uninterrupted = wf.generate_with(&target, GenerateControl::default());
        assert!(uninterrupted.completed);

        // crash simulation: cancel after the first checkpoint
        let checkpointed: std::cell::RefCell<(usize, Vec<ApproxCircuit>)> =
            std::cell::RefCell::new((0, Vec::new()));
        let first = wf.generate_with(
            &target,
            GenerateControl {
                cancel: Some(Box::new(|| checkpointed.borrow().0 > 0)),
                checkpoint: Some(Box::new(|nodes, inter| {
                    *checkpointed.borrow_mut() = (nodes, inter.to_vec());
                })),
                ..Default::default()
            },
        );
        assert!(!first.completed);
        let (nodes_done, circuits) = checkpointed.into_inner();
        assert!(nodes_done > 0 && nodes_done < uninterrupted.population.explored);

        let resumed = wf.generate_with(
            &target,
            GenerateControl {
                prior: circuits,
                nodes_credit: nodes_done,
                resume: ResumeMode::Replay,
                ..Default::default()
            },
        );
        assert!(resumed.completed);
        assert_eq!(
            resumed.population.explored,
            uninterrupted.population.explored
        );
        let fp = |p: &Population| -> Vec<(String, u64)> {
            p.circuits
                .iter()
                .map(|c| {
                    (
                        qaprox_circuit::qasm::to_qasm(&c.circuit),
                        c.hs_distance.to_bits(),
                    )
                })
                .collect()
        };
        assert_eq!(
            fp(&resumed.population),
            fp(&uninterrupted.population),
            "replayed population must be bit-identical"
        );
        assert_eq!(
            resumed.population.minimal_hs.hs_distance.to_bits(),
            uninterrupted.population.minimal_hs.hs_distance.to_bits()
        );
        assert!(
            resumed.population.stats.memo_misses < uninterrupted.population.stats.memo_misses,
            "replay must reuse the checkpointed work"
        );
    }

    #[test]
    fn fully_credited_run_does_no_new_work() {
        let wf = quick_workflow(2);
        let target = Workflow::target_unitary(&ghz_reference());
        let full = wf.generate(&target);
        let budget = match &wf.engine {
            Engine::QSearch(c) => c.max_nodes,
            _ => unreachable!(),
        };
        let gen = wf.generate_with(
            &target,
            GenerateControl {
                prior: full.circuits.clone(),
                nodes_credit: budget,
                ..Default::default()
            },
        );
        assert!(gen.completed);
        assert_eq!(
            gen.population.explored, budget,
            "a fully credited budget leaves nothing to explore"
        );
        assert_eq!(gen.population.circuits.len(), full.circuits.len());
    }

    #[test]
    fn bound_first_execution_skips_certified_candidates() {
        let reference = ghz_reference();
        let mut cal = qaprox_device::devices::ourense()
            .induced(&[0, 1])
            .with_uniform_cx_error(0.0);
        for q in &mut cal.qubits {
            q.sx_error = 0.05;
            q.t1_us = 1e9;
            q.t2_us = 1e9;
        }
        let same = ApproxCircuit::new(ghz_reference(), 0.0);
        let mut nudged = ghz_reference();
        nudged.ry(0.2, 0);
        let nudged = ApproxCircuit::new(nudged, 0.01);
        let mut far = Circuit::new(2);
        far.x(0);
        let far = ApproxCircuit::new(far, 0.9);
        let pop = vec![same, nudged, far];
        // P(|00>) — bounded and 1-Lipschitz in TV, so certified inheritance
        // is sound
        let metric = |_: &Circuit, p: &[f64]| p[0];
        let (scored, stats) =
            execute_and_score_bound_first(&pop, &reference, &cal, 0.05, &Backend::Ideal, metric);
        assert_eq!(
            stats,
            CertifyStats {
                certified: 1,
                simulated: 1,
                rejected: 1
            }
        );
        assert_eq!(scored.len(), 2);
        // the certified copy inherits the reference's exact score (bound 0)
        assert!((scored[0].score - 0.5).abs() < 1e-12);
    }

    #[test]
    fn threshold_controls_population_size() {
        let mut wf = quick_workflow(2);
        let target = Workflow::target_unitary(&ghz_reference());
        wf.max_hs = 0.5;
        let loose = wf.generate(&target).circuits.len();
        wf.max_hs = 0.01;
        let tight = wf.generate(&target).circuits.len();
        assert!(loose >= tight, "looser threshold keeps more circuits");
    }
}
