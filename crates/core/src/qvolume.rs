//! Quantum-volume estimation — the paper's Sec. 6.5 roadmap metric.
//!
//! The QV protocol (Cross et al.): for width `m`, run `m`-qubit model
//! circuits of depth `m` (random pairings, random SU(4) blocks), and check
//! whether the noisy device keeps more than 2/3 of its output mass on the
//! ideal distribution's *heavy outputs*. `QV = 2^m` for the largest passing
//! `m`. Correlating approximate-circuit benefit with QV is the projection
//! the paper proposes for future hardware.

use qaprox_circuit::{Circuit, Gate};
use qaprox_linalg::random::haar_unitary;
use qaprox_linalg::random::Rng as _;
use qaprox_linalg::random::SplitMix64 as StdRng;
use qaprox_sim::NoiseModel;

use qaprox_linalg::parallel::par_map_range;

/// One width's aggregated trial results.
#[derive(Debug, Clone)]
pub struct QvPoint {
    /// Model-circuit width (and depth).
    pub width: usize,
    /// Mean heavy-output probability across trials.
    pub heavy_output_probability: f64,
    /// Whether the 2/3 threshold was met.
    pub passed: bool,
}

/// A full QV report.
#[derive(Debug, Clone)]
pub struct QvReport {
    /// Per-width results, ascending width.
    pub points: Vec<QvPoint>,
    /// The quantum volume `2^m` of the largest passing width (1 if none).
    pub quantum_volume: u64,
}

/// Builds one QV model circuit: `width` layers of a random qubit pairing
/// with a Haar-random SU(4) on each pair.
pub fn model_circuit(width: usize, rng: &mut StdRng) -> Circuit {
    let mut c = Circuit::new(width);
    for _ in 0..width {
        let mut order: Vec<usize> = (0..width).collect();
        rng.shuffle(&mut order);
        for pair in order.chunks(2) {
            if let &[a, b] = pair {
                let u = haar_unitary(4, rng);
                c.push(Gate::Unitary2(Box::new(u)), &[a, b]);
            }
        }
    }
    c
}

/// Heavy-output probability of one circuit under `model`.
pub fn heavy_output_probability(circuit: &Circuit, model: &NoiseModel) -> f64 {
    let ideal = qaprox_sim::statevector::probabilities(circuit);
    // heavy outputs: ideal probability above the median
    let mut sorted = ideal.clone();
    sorted.sort_by(f64::total_cmp);
    let median = if sorted.len().is_multiple_of(2) {
        0.5 * (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2])
    } else {
        sorted[sorted.len() / 2]
    };
    let noisy = model.probabilities(circuit);
    ideal
        .iter()
        .zip(&noisy)
        .filter(|(i, _)| **i > median)
        .map(|(_, n)| *n)
        .sum()
}

/// Estimates quantum volume up to `max_width` with `trials` model circuits
/// per width. The device model must cover at least `max_width` qubits; each
/// width uses its first `width` qubits (a simple but deterministic choice).
pub fn quantum_volume(
    base: &qaprox_device::Calibration,
    max_width: usize,
    trials: usize,
    seed: u64,
) -> QvReport {
    assert!(max_width >= 2, "QV starts at width 2");
    assert!(max_width <= base.topology.num_qubits(), "device too small");
    let mut points = Vec::new();
    for width in 2..=max_width {
        let qubits: Vec<usize> = (0..width).collect();
        let cal = base.induced(&qubits);
        let model = NoiseModel::from_calibration(cal);
        let hops: Vec<f64> = par_map_range(trials, |t| {
            let mut rng = StdRng::seed_from_u64(seed ^ ((width as u64) << 32) ^ t as u64);
            let c = model_circuit(width, &mut rng);
            heavy_output_probability(&c, &model)
        });
        let mean = hops.iter().sum::<f64>() / trials.max(1) as f64;
        points.push(QvPoint {
            width,
            heavy_output_probability: mean,
            passed: mean > 2.0 / 3.0,
        });
    }
    // QV = 2^m for the largest contiguous passing width from 2 upward.
    let mut qv = 1u64;
    for p in &points {
        if p.passed {
            qv = 1u64 << p.width;
        } else {
            break;
        }
    }
    QvReport {
        points,
        quantum_volume: qv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_device::devices::ourense;

    #[test]
    fn model_circuit_structure() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = model_circuit(4, &mut rng);
        // 4 layers x 2 pairs per layer
        assert_eq!(c.two_qubit_count(), 8);
        assert_eq!(c.num_qubits(), 4);
    }

    #[test]
    fn heavy_output_probability_is_high_without_noise() {
        let cal = ourense().induced(&[0, 1, 2]).with_uniform_cx_error(0.0);
        let mut quiet = NoiseModel::from_calibration(cal);
        quiet.include_relaxation = false;
        quiet.include_readout = false;
        let mut rng = StdRng::seed_from_u64(2);
        let c = model_circuit(3, &mut rng);
        let hop = heavy_output_probability(&c, &quiet);
        // for an ideal device, asymptotically ~0.85; any specific circuit
        // should clear the 2/3 threshold comfortably
        assert!(hop > 0.7, "noiseless HOP {hop}");
    }

    #[test]
    fn noise_lowers_heavy_output_probability() {
        let good = NoiseModel::from_calibration(ourense().induced(&[0, 1, 2]));
        let bad =
            NoiseModel::from_calibration(ourense().induced(&[0, 1, 2]).with_uniform_cx_error(0.2));
        let mut rng = StdRng::seed_from_u64(3);
        let c = model_circuit(3, &mut rng);
        let hop_good = heavy_output_probability(&c, &good);
        let hop_bad = heavy_output_probability(&c, &bad);
        assert!(hop_bad < hop_good, "{hop_bad} !< {hop_good}");
    }

    #[test]
    fn qv_report_has_expected_shape() {
        let report = quantum_volume(&ourense(), 3, 4, 7);
        assert_eq!(report.points.len(), 2);
        assert!(report.quantum_volume >= 1);
        for p in &report.points {
            assert!((0.0..=1.0).contains(&p.heavy_output_probability));
        }
    }

    #[test]
    fn very_noisy_device_fails_qv() {
        let noisy = ourense().with_uniform_cx_error(0.5);
        let report = quantum_volume(&noisy, 3, 4, 11);
        assert_eq!(report.quantum_volume, 1, "50% CNOT error cannot pass QV");
    }
}
