//! Approximate-circuit **selection strategies** — the paper's Observation 2:
//! "to capitalize on the potential of approximate circuits, a selection
//! method and an associated metric are required", left as an open problem.
//!
//! This module makes the problem concrete by implementing candidate
//! selectors and a harness that scores what each selector *would have
//! chosen* against the ground truth (the full noisy evaluation):
//!
//! * [`Selector::MinHs`] — the process-metric baseline (what synthesis
//!   alone suggests);
//! * [`Selector::CnotBudget`] — min-HS subject to a depth cap;
//! * [`Selector::DepthPenalized`] — trade distance against CNOTs with a
//!   noise-derived weight (each CNOT costs ~its error rate in fidelity);
//! * [`Selector::ProxyNoise`] — simulate candidates under a *cheap*
//!   depolarizing-only proxy model and pick the best predicted output;
//! * [`Selector::Oracle`] — pick using the true backend (the unattainable
//!   upper bound selectors are measured against).

use crate::workflow::Scored;
use qaprox_circuit::Circuit;
use qaprox_device::{Calibration, EdgeCal, QubitCal, Topology};
use qaprox_linalg::parallel::{par_map, par_map_indexed};
use qaprox_metrics::total_variation;
use qaprox_sim::{Backend, NoiseModel};
use qaprox_synth::ApproxCircuit;
use std::collections::BTreeMap;

/// A selection policy over an approximate-circuit population.
#[derive(Debug, Clone)]
pub enum Selector {
    /// Minimum Hilbert-Schmidt distance (process metric only).
    MinHs,
    /// Minimum HS among circuits with at most this many CNOTs.
    CnotBudget(usize),
    /// Minimize `hs_distance + weight * cnots`.
    DepthPenalized(f64),
    /// Simulate under a depolarizing-only proxy with this two-qubit error
    /// and pick the candidate whose output is closest (TVD) to the ideal.
    ProxyNoise {
        /// Uniform two-qubit error of the proxy model.
        cx_error: f64,
    },
    /// Pick using the true backend (upper bound; not realizable in practice
    /// without spending real device time per candidate).
    Oracle,
}

impl Selector {
    /// Human-readable name for reports.
    pub fn name(&self) -> String {
        match self {
            Selector::MinHs => "min-hs".into(),
            Selector::CnotBudget(k) => format!("cnot-budget({k})"),
            Selector::DepthPenalized(w) => format!("depth-penalized({w})"),
            Selector::ProxyNoise { cx_error } => format!("proxy-noise({cx_error})"),
            Selector::Oracle => "oracle".into(),
        }
    }

    /// A noise-derived depth weight: each CNOT costs roughly its average
    /// error in output fidelity, so weigh depth by the device's mean error.
    pub fn depth_penalized_for(cal: &Calibration) -> Selector {
        Selector::DepthPenalized(cal.avg_cx_error())
    }
}

/// Builds the cheap proxy calibration used by [`Selector::ProxyNoise`]:
/// a linear chain with uniform CNOT error and *no* readout/relaxation terms.
fn proxy_calibration(num_qubits: usize, cx_error: f64) -> Calibration {
    let topology = Topology::linear(num_qubits);
    let qubits = vec![
        QubitCal {
            readout_error: 0.0,
            t1_us: 1e9,
            t2_us: 1e9,
            sx_error: 0.0,
            sx_time_ns: 0.0
        };
        num_qubits
    ];
    let mut edges = BTreeMap::new();
    for &e in topology.edges() {
        edges.insert(
            e,
            EdgeCal {
                cx_error,
                cx_time_ns: 0.0,
            },
        );
    }
    Calibration {
        machine: format!("proxy(cx={cx_error})"),
        topology,
        qubits,
        edges,
    }
}

/// Evaluation context: the ideal output to approach and the metric that
/// scores a candidate's output distribution against it (lower is better).
pub struct SelectionContext<'a> {
    /// Noise-free reference distribution.
    pub ideal: &'a [f64],
    /// The true backend (used by the oracle and by the final ground-truth
    /// scoring of whatever each selector picked).
    pub backend: &'a Backend,
}

/// Applies a selector to a population, returning the chosen circuit's index.
pub fn choose(
    selector: &Selector,
    population: &[ApproxCircuit],
    ctx: &SelectionContext<'_>,
) -> usize {
    assert!(
        !population.is_empty(),
        "cannot select from an empty population"
    );
    match selector {
        Selector::MinHs => argmin_by(population, |ap| ap.hs_distance),
        Selector::CnotBudget(k) => {
            // fall back to the global min-HS when nothing fits the budget
            let within: Vec<usize> = population
                .iter()
                .enumerate()
                .filter(|(_, ap)| ap.cnots <= *k)
                .map(|(i, _)| i)
                .collect();
            if within.is_empty() {
                argmin_by(population, |ap| ap.hs_distance)
            } else {
                *within
                    .iter()
                    .min_by(|&&a, &&b| {
                        population[a]
                            .hs_distance
                            .total_cmp(&population[b].hs_distance)
                    })
                    .unwrap()
            }
        }
        Selector::DepthPenalized(w) => {
            argmin_by(population, |ap| ap.hs_distance + w * ap.cnots as f64)
        }
        Selector::ProxyNoise { cx_error } => {
            let n = population[0].circuit.num_qubits();
            let proxy = NoiseModel::from_calibration(proxy_calibration(n, *cx_error));
            let scores: Vec<f64> = par_map(population, |ap| {
                let probs = proxy.probabilities(&ap.circuit);
                total_variation(&probs, ctx.ideal)
            });
            argmin_by_idx(&scores)
        }
        Selector::Oracle => {
            let scores: Vec<f64> = par_map_indexed(population, |i, ap| {
                let probs = ctx.backend.probabilities(&ap.circuit, i as u64);
                total_variation(&probs, ctx.ideal)
            });
            argmin_by_idx(&scores)
        }
    }
}

fn argmin_by<F: Fn(&ApproxCircuit) -> f64>(population: &[ApproxCircuit], f: F) -> usize {
    population
        .iter()
        .enumerate()
        .min_by(|a, b| f(a.1).total_cmp(&f(b.1)))
        .map(|(i, _)| i)
        .unwrap()
}

fn argmin_by_idx(scores: &[f64]) -> usize {
    scores
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap()
}

/// One selector's outcome: what it chose and how that choice actually
/// performed on the true backend (TVD to ideal; lower is better).
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// Selector name.
    pub selector: String,
    /// Chosen circuit summary + its *true* score.
    pub chosen: Scored,
}

/// Scores every selector's choice on the true backend.
pub fn compare_selectors(
    selectors: &[Selector],
    population: &[ApproxCircuit],
    ctx: &SelectionContext<'_>,
) -> Vec<SelectionOutcome> {
    selectors
        .iter()
        .map(|sel| {
            let idx = choose(sel, population, ctx);
            let ap = &population[idx];
            let probs = ctx.backend.probabilities(&ap.circuit, 0xCAFE + idx as u64);
            SelectionOutcome {
                selector: sel.name(),
                chosen: Scored {
                    cnots: ap.cnots,
                    hs_distance: ap.hs_distance,
                    score: total_variation(&probs, ctx.ideal),
                },
            }
        })
        .collect()
}

/// Ground-truth regret of a selector: its true score minus the oracle's.
pub fn regret(outcomes: &[SelectionOutcome]) -> Vec<(String, f64)> {
    let oracle = outcomes
        .iter()
        .find(|o| o.selector == "oracle")
        .map(|o| o.chosen.score)
        .unwrap_or(0.0);
    outcomes
        .iter()
        .map(|o| (o.selector.clone(), o.chosen.score - oracle))
        .collect()
}

/// Reference circuit's noisy score, for context in selection reports.
pub fn reference_score(reference: &Circuit, ctx: &SelectionContext<'_>) -> f64 {
    let probs = ctx.backend.probabilities(reference, 0x5EED);
    total_variation(&probs, ctx.ideal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_device::devices::ourense;

    fn fake_population() -> Vec<ApproxCircuit> {
        // three candidates: exact-deep, close-medium, loose-shallow
        let mk = |cnots: usize, dist: f64| {
            let mut c = Circuit::new(2);
            c.h(0);
            for _ in 0..cnots {
                c.cx(0, 1);
                c.rz(0.21, 1);
            }
            ApproxCircuit::new(c, dist)
        };
        vec![mk(8, 0.0), mk(3, 0.05), mk(1, 0.3)]
    }

    fn ctx_backend() -> Backend {
        let cal = ourense().induced(&[0, 1]).with_uniform_cx_error(0.15);
        Backend::Noisy(NoiseModel::from_calibration(cal))
    }

    #[test]
    fn min_hs_picks_lowest_distance() {
        let pop = fake_population();
        let backend = Backend::Ideal;
        let ideal = vec![0.5, 0.0, 0.0, 0.5];
        let ctx = SelectionContext {
            ideal: &ideal,
            backend: &backend,
        };
        assert_eq!(choose(&Selector::MinHs, &pop, &ctx), 0);
    }

    #[test]
    fn cnot_budget_respects_cap_with_fallback() {
        let pop = fake_population();
        let backend = Backend::Ideal;
        let ideal = vec![0.5, 0.0, 0.0, 0.5];
        let ctx = SelectionContext {
            ideal: &ideal,
            backend: &backend,
        };
        assert_eq!(choose(&Selector::CnotBudget(3), &pop, &ctx), 1);
        assert_eq!(choose(&Selector::CnotBudget(1), &pop, &ctx), 2);
        // nothing fits a 0-CNOT budget: falls back to global min-HS
        assert_eq!(choose(&Selector::CnotBudget(0), &pop, &ctx), 0);
    }

    #[test]
    fn depth_penalty_shifts_choice_shallower() {
        let pop = fake_population();
        let backend = Backend::Ideal;
        let ideal = vec![0.5, 0.0, 0.0, 0.5];
        let ctx = SelectionContext {
            ideal: &ideal,
            backend: &backend,
        };
        // tiny weight: distance dominates -> deep exact circuit
        assert_eq!(choose(&Selector::DepthPenalized(1e-6), &pop, &ctx), 0);
        // heavy weight: depth dominates -> shallow circuit
        assert_eq!(choose(&Selector::DepthPenalized(1.0), &pop, &ctx), 2);
    }

    #[test]
    fn oracle_never_loses_to_other_selectors() {
        let pop = fake_population();
        let backend = ctx_backend();
        // ideal = noise-free output of the *exact* candidate
        let ideal = qaprox_sim::statevector::probabilities(&pop[0].circuit);
        let ctx = SelectionContext {
            ideal: &ideal,
            backend: &backend,
        };
        let selectors = vec![
            Selector::MinHs,
            Selector::CnotBudget(3),
            Selector::DepthPenalized(0.02),
            Selector::ProxyNoise { cx_error: 0.15 },
            Selector::Oracle,
        ];
        let outcomes = compare_selectors(&selectors, &pop, &ctx);
        let oracle = outcomes
            .iter()
            .find(|o| o.selector == "oracle")
            .unwrap()
            .chosen
            .score;
        for o in &outcomes {
            assert!(
                oracle <= o.chosen.score + 1e-12,
                "oracle ({oracle:.4}) must not lose to {} ({:.4})",
                o.selector,
                o.chosen.score
            );
        }
        // regrets are nonnegative, oracle's regret is zero
        for (name, r) in regret(&outcomes) {
            assert!(r >= -1e-12, "{name} has negative regret {r}");
        }
    }

    #[test]
    fn proxy_noise_tracks_the_true_backend_better_than_min_hs_under_heavy_noise() {
        // With strong noise, min-HS picks the deep circuit while the proxy
        // predicts its degradation and picks a shallower one.
        let pop = fake_population();
        let backend = ctx_backend();
        let ideal = qaprox_sim::statevector::probabilities(&pop[0].circuit);
        let ctx = SelectionContext {
            ideal: &ideal,
            backend: &backend,
        };
        let outcomes = compare_selectors(
            &[Selector::MinHs, Selector::ProxyNoise { cx_error: 0.15 }],
            &pop,
            &ctx,
        );
        let min_hs = &outcomes[0].chosen;
        let proxy = &outcomes[1].chosen;
        assert!(
            proxy.score <= min_hs.score + 1e-9,
            "proxy selection ({:.4}) should beat blind min-HS ({:.4}) at 15% error",
            proxy.score,
            min_hs.score
        );
    }
}
