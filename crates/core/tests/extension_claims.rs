//! Executable claims for the extension studies (beyond the paper's own
//! figures): selection strategies, mitigation interplay, partitioned
//! synthesis, and metric correlation.

use qaprox::metric_correlation::correlate;
use qaprox::prelude::*;
use qaprox::selection::{compare_selectors, SelectionContext, Selector};
use qaprox_sim::mitigation::{errors_from_calibration, mitigate_readout};
use qaprox_synth::{synthesize_partitioned, InstantiateConfig, PartitionConfig};

fn quick_qsearch() -> QSearchConfig {
    QSearchConfig {
        max_cnots: 5,
        max_nodes: 70,
        beam_width: 3,
        instantiate: InstantiateConfig {
            starts: 1,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn tfim_population(step: usize) -> (Circuit, Vec<qaprox_synth::ApproxCircuit>) {
    let params = TfimParams::paper_defaults(3);
    let reference = tfim_circuit(&params, step);
    let wf = Workflow {
        topology: Topology::linear(3),
        engine: Engine::QSearch(quick_qsearch()),
        max_hs: 0.35,
    };
    let pop = wf.generate(&Workflow::target_unitary(&reference));
    (reference, pop.circuits)
}

#[test]
fn proxy_selection_has_low_regret_under_heavy_noise() {
    let (reference, pop) = tfim_population(6);
    assert!(pop.len() >= 3);
    let ideal = qaprox_sim::statevector::probabilities(&reference);
    let cal = devices::ourense()
        .induced(&[0, 1, 2])
        .with_uniform_cx_error(0.15);
    let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
    let ctx = SelectionContext {
        ideal: &ideal,
        backend: &backend,
    };
    let outcomes = compare_selectors(
        &[
            Selector::MinHs,
            Selector::ProxyNoise { cx_error: 0.15 },
            Selector::Oracle,
        ],
        &pop,
        &ctx,
    );
    let find = |name: &str| {
        outcomes
            .iter()
            .find(|o| o.selector == name)
            .unwrap()
            .chosen
            .score
    };
    let oracle = find("oracle");
    let proxy = find("proxy-noise(0.15)");
    let min_hs = find("min-hs");
    assert!(
        proxy - oracle <= min_hs - oracle + 1e-9,
        "proxy regret ({:.4}) should not exceed min-HS regret ({:.4})",
        proxy - oracle,
        min_hs - oracle
    );
}

#[test]
fn mitigation_composes_with_approximation() {
    // The Related-Work question: after readout mitigation, approximate
    // circuits must still beat the reference (mitigation does not remove the
    // CNOT-noise advantage they exploit).
    let (reference, pop) = tfim_population(8);
    let cal = devices::toronto().induced(&[0, 1, 2]);
    let errors = errors_from_calibration(&cal);
    let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
    let ideal_m = magnetization(&qaprox_sim::statevector::probabilities(&reference));

    let ref_raw = backend.probabilities(&reference, 0);
    let ref_mit = mitigate_readout(&ref_raw, &errors);
    let ref_err_mit = (magnetization(&ref_mit) - ideal_m).abs();

    let best_err_mit = pop
        .iter()
        .enumerate()
        .map(|(i, ap)| {
            let raw = backend.probabilities(&ap.circuit, 1 + i as u64);
            let mit = mitigate_readout(&raw, &errors);
            (magnetization(&mit) - ideal_m).abs()
        })
        .min_by(f64::total_cmp)
        .unwrap();

    assert!(
        best_err_mit < ref_err_mit,
        "after mitigation the best approximation ({best_err_mit:.4}) must still \
         beat the reference ({ref_err_mit:.4})"
    );
}

#[test]
fn partitioned_synthesis_beats_reference_on_deep_circuits() {
    let params = TfimParams::paper_defaults(3);
    let reference = tfim_circuit(&params, 10); // 40 CNOTs
    let topo = Topology::linear(3);
    let cfg = PartitionConfig {
        segment_cnots: 8,
        qsearch: quick_qsearch(),
    };
    let result = synthesize_partitioned(&reference, &topo, &cfg);
    assert!(
        result.circuit.cx_count() < reference.cx_count(),
        "pieces strategy should shorten the circuit: {} vs {}",
        result.circuit.cx_count(),
        reference.cx_count()
    );

    // Score by full output distribution (TVD), which cannot cancel the way a
    // scalar observable can.
    let cal = devices::toronto()
        .induced(&[0, 1, 2])
        .with_scaled_cx_error(2.0);
    let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
    let ideal = qaprox_sim::statevector::probabilities(&reference);
    let tvd = |p: &[f64]| qaprox_metrics::total_variation(p, &ideal);
    let ref_err = tvd(&backend.probabilities(&reference, 0));
    let part_err = tvd(&backend.probabilities(&result.circuit, 1));
    assert!(
        part_err < ref_err,
        "partitioned circuit ({part_err:.4}) should beat the exact reference \
         ({ref_err:.4}) under doubled noise"
    );
}

#[test]
fn metric_predictive_power_shifts_with_noise() {
    // Sec. 6.5's metric question, resolved empirically: at negligible noise
    // the ideal-output TVD is a near-perfect predictor of true error, and as
    // CNOT error grows, circuit depth gains predictive power.
    let (reference, pop) = tfim_population(6);
    assert!(pop.len() >= 3, "population too thin");
    let ideal = qaprox_sim::statevector::probabilities(&reference);
    let base = devices::ourense().induced(&[0, 1, 2]);

    let spearman_at = |eps: f64, metric: &str| -> f64 {
        let backend = Backend::Noisy(NoiseModel::from_calibration(
            base.with_uniform_cx_error(eps),
        ));
        correlate(&pop, &ideal, &backend)
            .iter()
            .find(|r| r.metric == metric)
            .unwrap()
            .spearman
    };

    let tvd_low = spearman_at(0.0, "ideal_tvd");
    assert!(
        tvd_low > 0.7,
        "ideal TVD must predict truth at zero noise: {tvd_low}"
    );

    let depth_low = spearman_at(0.001, "cnot_count");
    let depth_high = spearman_at(0.24, "cnot_count");
    assert!(
        depth_high > depth_low,
        "depth should gain predictive power with noise: {depth_low} -> {depth_high}"
    );
}
