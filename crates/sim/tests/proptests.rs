//! Property-style tests for the simulators and noise machinery, driven by
//! the in-repo seeded RNG.

use qaprox_circuit::{Circuit, Gate};
use qaprox_linalg::random::{Rng, SplitMix64};
use qaprox_sim::channels::*;
use qaprox_sim::readout::{apply_confusion, ReadoutError};
use qaprox_sim::{sample_counts, DensityMatrix};

const CASES: usize = 32;

fn random_circuit(n: usize, rng: &mut SplitMix64) -> Circuit {
    let len = rng.gen_range(0usize..15);
    let mut c = Circuit::new(n);
    for _ in 0..len {
        let kind = rng.gen_range(0usize..5);
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let t = rng.gen_range(-3.0..3.0);
        match kind {
            0 => {
                c.h(a);
            }
            1 => {
                c.rx(t, a);
            }
            2 => {
                c.rz(t, a);
            }
            3 if a != b => {
                c.cx(a, b);
            }
            4 if a != b => {
                c.push(Gate::CP(t), &[a, b]);
            }
            _ => {}
        }
    }
    c
}

#[test]
fn density_matrix_trace_is_preserved_by_unitaries() {
    let mut rng = SplitMix64::seed_from_u64(1);
    for _ in 0..CASES {
        let c = random_circuit(3, &mut rng);
        let mut dm = DensityMatrix::ground(3);
        dm.apply_circuit(&c);
        assert!((dm.trace() - 1.0).abs() < 1e-10);
        assert!(
            (dm.purity() - 1.0).abs() < 1e-9,
            "unitary evolution keeps purity"
        );
    }
}

#[test]
fn channels_are_trace_preserving() {
    let mut rng = SplitMix64::seed_from_u64(2);
    for _ in 0..CASES {
        let p = rng.gen_range(0.0..1.0);
        let t = rng.gen_range(0.0..2000.0);
        for kraus in [
            bit_flip(p),
            phase_flip(p),
            depolarizing_1q(p),
            amplitude_damping(p),
            phase_damping(p),
            thermal_relaxation(t, 80.0, 70.0),
        ] {
            assert!(is_trace_preserving(&kraus, 1e-10));
        }
    }
}

#[test]
fn channels_keep_density_matrices_physical() {
    let mut rng = SplitMix64::seed_from_u64(3);
    for _ in 0..CASES {
        let c = random_circuit(2, &mut rng);
        let p = rng.gen_range(0.0..1.0);
        let mut dm = DensityMatrix::ground(2);
        dm.apply_circuit(&c);
        dm.apply_kraus_1q(0, &depolarizing_1q(p));
        dm.apply_kraus_1q(1, &amplitude_damping(p * 0.5));
        assert!((dm.trace() - 1.0).abs() < 1e-9);
        let probs = dm.probabilities();
        assert!(probs.iter().all(|&x| x >= -1e-12));
        assert!(dm.purity() <= 1.0 + 1e-9);
    }
}

#[test]
fn depolarize_interpolates_purity() {
    let mut rng = SplitMix64::seed_from_u64(4);
    for _ in 0..CASES {
        let c = random_circuit(2, &mut rng);
        let lambda = rng.gen_range(0.0..1.0);
        let mut dm = DensityMatrix::ground(2);
        dm.apply_circuit(&c);
        let before = dm.purity();
        dm.depolarize(&[0, 1], lambda);
        let after = dm.purity();
        assert!(after <= before + 1e-9, "depolarizing cannot raise purity");
        assert!((dm.trace() - 1.0).abs() < 1e-9);
    }
}

#[test]
fn readout_confusion_is_stochastic() {
    let mut rng = SplitMix64::seed_from_u64(5);
    for _ in 0..CASES {
        let p: Vec<f64> = (0..8).map(|_| rng.gen_range(0.0..1.0)).collect();
        let e = rng.gen_range(0.0..0.5);
        let sum: f64 = p.iter().sum();
        if sum <= 1e-6 {
            continue;
        }
        let mut probs: Vec<f64> = p.iter().map(|x| x / sum).collect();
        apply_confusion(&mut probs, &[ReadoutError::symmetric(e); 3]);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(probs.iter().all(|&x| x >= -1e-12));
    }
}

#[test]
fn sampling_conserves_shots() {
    let mut rng = SplitMix64::seed_from_u64(6);
    for seed in 0..CASES as u64 {
        let shots = rng.gen_range(1usize..4096);
        let probs = [0.4, 0.3, 0.2, 0.1];
        let counts = sample_counts(&probs, shots, seed);
        assert_eq!(counts.iter().sum::<u64>() as usize, shots);
    }
}

#[test]
fn partial_trace_keeps_unit_trace() {
    let mut rng = SplitMix64::seed_from_u64(7);
    for _ in 0..CASES {
        let c = random_circuit(3, &mut rng);
        let mut dm = DensityMatrix::ground(3);
        dm.apply_circuit(&c);
        for q in 0..3 {
            let reduced = dm.partial_trace(&[q]);
            assert!((reduced.trace().re - 1.0).abs() < 1e-9);
            assert!(reduced.trace().im.abs() < 1e-10);
        }
    }
}

#[test]
fn statevector_and_density_agree() {
    let mut rng = SplitMix64::seed_from_u64(8);
    for _ in 0..CASES {
        let c = random_circuit(3, &mut rng);
        let sv: Vec<f64> = qaprox_sim::statevector::probabilities(&c);
        let mut dm = DensityMatrix::ground(3);
        dm.apply_circuit(&c);
        let dp = dm.probabilities();
        for (a, b) in sv.iter().zip(&dp) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
