//! Property-based tests for the simulators and noise machinery.

use proptest::prelude::*;
use qaprox_circuit::{Circuit, Gate};
use qaprox_sim::channels::*;
use qaprox_sim::readout::{apply_confusion, ReadoutError};
use qaprox_sim::{sample_counts, DensityMatrix};

fn random_circuit(n: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec((0usize..5, 0..n, 0..n, -3.0f64..3.0), 0..15).prop_map(
        move |ops| {
            let mut c = Circuit::new(n);
            for (kind, a, b, t) in ops {
                match kind {
                    0 => {
                        c.h(a);
                    }
                    1 => {
                        c.rx(t, a);
                    }
                    2 => {
                        c.rz(t, a);
                    }
                    3 if a != b => {
                        c.cx(a, b);
                    }
                    4 if a != b => {
                        c.push(Gate::CP(t), &[a, b]);
                    }
                    _ => {}
                }
            }
            c
        },
    )
}

proptest! {
    #[test]
    fn density_matrix_trace_is_preserved_by_unitaries(c in random_circuit(3)) {
        let mut dm = DensityMatrix::ground(3);
        dm.apply_circuit(&c);
        prop_assert!((dm.trace() - 1.0).abs() < 1e-10);
        prop_assert!((dm.purity() - 1.0).abs() < 1e-9, "unitary evolution keeps purity");
    }

    #[test]
    fn channels_are_trace_preserving(p in 0.0f64..1.0, t in 0.0f64..2000.0) {
        for kraus in [
            bit_flip(p),
            phase_flip(p),
            depolarizing_1q(p),
            amplitude_damping(p),
            phase_damping(p),
            thermal_relaxation(t, 80.0, 70.0),
        ] {
            prop_assert!(is_trace_preserving(&kraus, 1e-10));
        }
    }

    #[test]
    fn channels_keep_density_matrices_physical(c in random_circuit(2), p in 0.0f64..1.0) {
        let mut dm = DensityMatrix::ground(2);
        dm.apply_circuit(&c);
        dm.apply_kraus_1q(0, &depolarizing_1q(p));
        dm.apply_kraus_1q(1, &amplitude_damping(p * 0.5));
        prop_assert!((dm.trace() - 1.0).abs() < 1e-9);
        let probs = dm.probabilities();
        prop_assert!(probs.iter().all(|&x| x >= -1e-12));
        prop_assert!(dm.purity() <= 1.0 + 1e-9);
    }

    #[test]
    fn depolarize_interpolates_purity(c in random_circuit(2), lambda in 0.0f64..1.0) {
        let mut dm = DensityMatrix::ground(2);
        dm.apply_circuit(&c);
        let before = dm.purity();
        dm.depolarize(&[0, 1], lambda);
        let after = dm.purity();
        prop_assert!(after <= before + 1e-9, "depolarizing cannot raise purity");
        prop_assert!((dm.trace() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn readout_confusion_is_stochastic(
        p in proptest::collection::vec(0.0f64..1.0, 8),
        e in 0.0f64..0.5,
    ) {
        let sum: f64 = p.iter().sum();
        prop_assume!(sum > 1e-6);
        let mut probs: Vec<f64> = p.iter().map(|x| x / sum).collect();
        apply_confusion(&mut probs, &[ReadoutError::symmetric(e); 3]);
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(probs.iter().all(|&x| x >= -1e-12));
    }

    #[test]
    fn sampling_conserves_shots(seed in 0u64..500, shots in 1usize..4096) {
        let probs = [0.4, 0.3, 0.2, 0.1];
        let counts = sample_counts(&probs, shots, seed);
        prop_assert_eq!(counts.iter().sum::<u64>() as usize, shots);
    }

    #[test]
    fn partial_trace_keeps_unit_trace(c in random_circuit(3)) {
        let mut dm = DensityMatrix::ground(3);
        dm.apply_circuit(&c);
        for q in 0..3 {
            let reduced = dm.partial_trace(&[q]);
            prop_assert!((reduced.trace().re - 1.0).abs() < 1e-9);
            prop_assert!(reduced.trace().im.abs() < 1e-10);
        }
    }

    #[test]
    fn statevector_and_density_agree(c in random_circuit(3)) {
        let sv: Vec<f64> = qaprox_sim::statevector::probabilities(&c);
        let mut dm = DensityMatrix::ground(3);
        dm.apply_circuit(&c);
        let dp = dm.probabilities();
        for (a, b) in sv.iter().zip(&dp) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
