//! # qaprox-sim
//!
//! Quantum circuit simulators — the Rust stand-in for Qiskit-Aer:
//!
//! * [`statevector`] — ideal simulation ("noise free reference");
//! * [`density`] — density-matrix states with Kraus-channel support;
//! * [`channels`] — depolarizing / damping / thermal-relaxation channels;
//! * [`noise_model`] — device noise models built from calibration snapshots
//!   (the paper's "hardware specific noise models");
//! * [`readout`] — per-qubit measurement confusion;
//! * [`hardware`] — emulated physical machines: model noise plus coherent
//!   over-rotation, ZZ crosstalk, readout drift, finite shots (the
//!   substitute for the paper's IBM Q hardware runs);
//! * [`sampler`] — finite-shot sampling;
//! * [`trajectory`] — Monte-Carlo trajectory simulation (cross-validates the
//!   density matrix; scales to wider circuits);
//! * [`mitigation`] — readout-error mitigation (confusion-matrix inversion);
//! * [`executor`] — parallel batch execution over circuit populations.

#![warn(missing_docs)]

pub mod channels;
pub mod density;
pub mod executor;
pub mod hardware;
pub mod mitigation;
pub mod noise_model;
pub mod readout;
pub mod sampler;
pub mod statevector;
pub mod trajectory;

pub use density::DensityMatrix;
pub use executor::Backend;
pub use hardware::{HardwareBackend, HardwareEffects};
pub use mitigation::mitigate_readout;
pub use noise_model::NoiseModel;
pub use readout::ReadoutError;
pub use sampler::{counts_to_probs, sample_counts, DEFAULT_SHOTS};
pub use trajectory::{
    batch_reset_total, trajectory_probabilities, BatchStats, FusedProgram, HealthReport,
    TrajectoryBackend, TrajectoryBatch, DEFAULT_TRAJECTORY_SHOTS, NORM_DRIFT_TOL,
};
