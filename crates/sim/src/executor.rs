//! Batch execution.
//!
//! Every figure in the paper runs *hundreds* of approximate circuits (often
//! x21 timesteps x several noise levels). Individual density matrices are
//! tiny, so the parallelism lives here: a parallel map over circuits.

use crate::hardware::HardwareBackend;
use crate::noise_model::NoiseModel;
use crate::statevector;
use crate::trajectory::{HealthReport, TrajectoryBackend};
use qaprox_circuit::Circuit;
use qaprox_linalg::parallel::par_map_indexed;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Where a circuit executes — mirrors the paper's three execution methods
/// (ideal simulator, device-noise-model simulator, physical machine), plus
/// the trajectory simulator that reaches widths the density matrix cannot.
#[derive(Debug, Clone)]
pub enum Backend {
    /// Noise-free statevector simulation.
    Ideal,
    /// Density-matrix simulation under a device noise model.
    Noisy(NoiseModel),
    /// Emulated physical hardware (noise model + unreported effects + shots).
    Hardware(HardwareBackend),
    /// Monte-Carlo trajectory simulation under a device noise model:
    /// `2^n` per shot instead of `4^n`, seeded per job.
    Trajectory(TrajectoryBackend),
}

impl Backend {
    /// Statically validates a circuit before execution: any deny-level
    /// finding from `qaprox-verify`'s circuit lints (out-of-range operands,
    /// duplicate operands, wrong arity, non-finite parameters, non-unitary
    /// embedded gates) is returned as an error with the rendered report.
    ///
    /// With the `strict-invariants` feature enabled, every execution entry
    /// point asserts this automatically.
    pub fn validate(circuit: &Circuit) -> Result<(), String> {
        let cfg = qaprox_verify::LintConfig::new();
        let report = qaprox_verify::lint_circuit(circuit, None, &cfg);
        if report.has_errors() {
            Err(format!(
                "circuit failed pre-run validation:\n{}",
                report.to_text()
            ))
        } else {
            Ok(())
        }
    }

    /// Output distribution of one circuit. `job_seed` matters only for the
    /// hardware backend's shot sampling.
    pub fn probabilities(&self, circuit: &Circuit, job_seed: u64) -> Vec<f64> {
        #[cfg(feature = "strict-invariants")]
        if let Err(e) = Backend::validate(circuit) {
            panic!("{e}");
        }
        match self {
            Backend::Ideal => statevector::probabilities(circuit),
            Backend::Noisy(model) => model.probabilities(circuit),
            Backend::Hardware(hw) => hw.probabilities(circuit, job_seed),
            Backend::Trajectory(tb) => tb.probabilities(circuit, job_seed),
        }
    }

    /// Executes a batch of circuits in parallel; result order matches input.
    pub fn run_batch(&self, circuits: &[Circuit]) -> Vec<Vec<f64>> {
        par_map_indexed(circuits, |i, c| self.probabilities(c, i as u64))
    }

    /// Maps an arbitrary evaluation over circuits in parallel, giving each
    /// the backend and a stable per-circuit seed.
    pub fn run_batch_with<T, F>(&self, circuits: &[Circuit], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Circuit, Vec<f64>) -> T + Sync,
    {
        par_map_indexed(circuits, |i, c| f(c, self.probabilities(c, i as u64)))
    }

    /// [`Backend::run_batch`] with failures surfaced instead of swallowed.
    ///
    /// Every circuit is statically validated first: a deny-lint circuit
    /// turns the whole batch into an error naming the offending index, so a
    /// bad member never costs the batch's compute. A circuit that *panics*
    /// during simulation (an engine bug, not an input bug) is likewise
    /// reported by index rather than poisoning the worker pool. Successful
    /// batches preserve input order exactly.
    pub fn probabilities_batch(&self, circuits: &[Circuit]) -> Result<Vec<Vec<f64>>, String> {
        Ok(self.probabilities_batch_health(circuits)?.0)
    }

    /// [`Backend::probabilities_batch`] plus one [`HealthReport`] per row.
    ///
    /// Trajectory rows carry real shot-level health accounting (aborted
    /// corrupt shots, cooperative cancellation); exact backends never abort
    /// shots and report a default (healthy, zero-shot) record.
    pub fn probabilities_batch_health(
        &self,
        circuits: &[Circuit],
    ) -> Result<(Vec<Vec<f64>>, Vec<HealthReport>), String> {
        // Failpoint `hardware.shot`: the emulated analogue of a physical
        // backend rejecting or dropping a submitted job. `error` fails the
        // whole batch with a transient (retryable) message, `panic` emulates
        // the executing worker crashing mid-job.
        qaprox_fault::fail_point!("hardware.shot", |_action| {
            Err(qaprox_fault::injected_error("hardware.shot"))
        });
        for (i, c) in circuits.iter().enumerate() {
            Backend::validate(c).map_err(|e| format!("circuit {i} of {}: {e}", circuits.len()))?;
        }
        // Trajectory fast path: score the whole batch in one shot-batched
        // pass (a single arena reset per shot instead of one per candidate),
        // bit-identical to the per-candidate loop below. Mixed widths, an
        // injected `traj.batch` fault, or a mid-batch panic fall through to
        // per-candidate evaluation rather than failing the job.
        if let Backend::Trajectory(tb) = self {
            if circuits.len() > 1 {
                let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    tb.probabilities_batch_health(circuits)
                }));
                if let Ok(Ok(out)) = attempt {
                    return Ok(out);
                }
            }
        }
        let runs: Vec<std::thread::Result<(Vec<f64>, HealthReport)>> =
            par_map_indexed(circuits, |i, c| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match self {
                    Backend::Trajectory(tb) => tb.probabilities_health(c, i as u64),
                    other => (other.probabilities(c, i as u64), HealthReport::default()),
                }))
            });
        let mut rows = Vec::with_capacity(runs.len());
        let mut healths = Vec::with_capacity(runs.len());
        for (i, r) in runs.into_iter().enumerate() {
            match r {
                Ok((p, h)) => {
                    rows.push(p);
                    healths.push(h);
                }
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("non-string panic payload");
                    return Err(format!("circuit {i} panicked during simulation: {msg}"));
                }
            }
        }
        Ok((rows, healths))
    }

    /// Attaches a cooperative cancellation token to backends that support
    /// mid-job cancellation — the trajectory backend checks it at shot
    /// granularity; exact backends ignore it (their per-circuit runs are
    /// short enough to cancel between circuits at the scheduler layer).
    pub fn with_cancel(self, flag: Arc<AtomicBool>) -> Self {
        match self {
            Backend::Trajectory(tb) => Backend::Trajectory(tb.with_cancel(flag)),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_device::devices::ourense;

    fn some_circuits(n: usize) -> Vec<Circuit> {
        (0..n)
            .map(|i| {
                let mut c = Circuit::new(3);
                c.h(0).cx(0, 1).rz(0.1 * i as f64, 1).cx(1, 2);
                c
            })
            .collect()
    }

    #[test]
    fn batch_matches_individual_ideal() {
        let circuits = some_circuits(8);
        let backend = Backend::Ideal;
        let batch = backend.run_batch(&circuits);
        for (i, c) in circuits.iter().enumerate() {
            let solo = statevector::probabilities(c);
            for (a, b) in batch[i].iter().zip(&solo) {
                assert!((a - b).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn batch_matches_individual_noisy() {
        let cal = ourense().induced(&[0, 1, 2]);
        let model = NoiseModel::from_calibration(cal);
        let circuits = some_circuits(4);
        let backend = Backend::Noisy(model.clone());
        let batch = backend.run_batch(&circuits);
        for (i, c) in circuits.iter().enumerate() {
            let solo = model.probabilities(c);
            for (a, b) in batch[i].iter().zip(&solo) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn hardware_batch_is_reproducible() {
        let cal = ourense().induced(&[0, 1, 2]);
        let hw = HardwareBackend::new(NoiseModel::from_calibration(cal));
        let backend = Backend::Hardware(hw);
        let circuits = some_circuits(3);
        let a = backend.run_batch(&circuits);
        let b = backend.run_batch(&circuits);
        assert_eq!(a, b, "per-index job seeds make batches deterministic");
    }

    #[test]
    fn ideal_backend_ignores_job_seed() {
        let c = some_circuits(1).pop().unwrap();
        let b = Backend::Ideal;
        assert_eq!(b.probabilities(&c, 0), b.probabilities(&c, 999));
    }

    #[test]
    fn hardware_backend_depends_on_job_seed() {
        let cal = ourense().induced(&[0, 1, 2]);
        let hw = HardwareBackend::new(NoiseModel::from_calibration(cal));
        let b = Backend::Hardware(hw);
        let c = some_circuits(1).pop().unwrap();
        assert_ne!(
            b.probabilities(&c, 0),
            b.probabilities(&c, 1),
            "shots must differ by seed"
        );
    }

    #[test]
    fn trajectory_backend_depends_on_job_seed() {
        let cal = ourense().induced(&[0, 1, 2]);
        let tb = TrajectoryBackend::with_shots(NoiseModel::from_calibration(cal), 32);
        let b = Backend::Trajectory(tb);
        let c = some_circuits(1).pop().unwrap();
        assert_eq!(b.probabilities(&c, 3), b.probabilities(&c, 3));
        assert_ne!(
            b.probabilities(&c, 0),
            b.probabilities(&c, 1),
            "trajectory streams must differ by job seed"
        );
    }

    #[test]
    fn trajectory_batch_matches_run_batch_seeding() {
        let cal = ourense().induced(&[0, 1, 2]);
        let tb = TrajectoryBackend::with_shots(NoiseModel::from_calibration(cal), 16);
        let backend = Backend::Trajectory(tb);
        let circuits = some_circuits(4);
        assert_eq!(
            backend.probabilities_batch(&circuits).unwrap(),
            backend.run_batch(&circuits)
        );
    }

    #[test]
    fn empty_batch_is_empty() {
        let b = Backend::Ideal;
        assert!(b.run_batch(&[]).is_empty());
    }

    #[test]
    fn probabilities_batch_preserves_input_order() {
        let circuits = some_circuits(8);
        let backend = Backend::Ideal;
        let batch = backend.probabilities_batch(&circuits).unwrap();
        assert_eq!(batch.len(), circuits.len());
        for (i, c) in circuits.iter().enumerate() {
            let solo = statevector::probabilities(c);
            assert_eq!(batch[i].len(), solo.len());
            for (a, b) in batch[i].iter().zip(&solo) {
                assert!((a - b).abs() < 1e-14, "row {i} out of order");
            }
        }
        assert!(backend.probabilities_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn probabilities_batch_names_the_offending_circuit() {
        let mut circuits = some_circuits(3);
        circuits[1].rz(f64::NAN, 0); // non-finite parameter is a deny lint
        let err = Backend::Ideal.probabilities_batch(&circuits).unwrap_err();
        assert!(err.contains("circuit 1 of 3"), "{err}");
        assert!(err.contains("validation"), "{err}");
        // the clean prefix/suffix did not mask the failure into a partial batch
        assert!(Backend::Ideal.probabilities_batch(&circuits[..1]).is_ok());
    }

    #[test]
    fn probabilities_batch_matches_run_batch_seeding() {
        // hardware sampling is seeded by index, so both entry points agree
        let cal = ourense().induced(&[0, 1, 2]);
        let hw = HardwareBackend::new(NoiseModel::from_calibration(cal));
        let backend = Backend::Hardware(hw);
        let circuits = some_circuits(4);
        assert_eq!(
            backend.probabilities_batch(&circuits).unwrap(),
            backend.run_batch(&circuits)
        );
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_shot_fault_fails_the_batch_transiently() {
        let _guard = qaprox_fault::Scenario::setup("hardware.shot=after:0");
        let backend = Backend::Ideal;
        let circuits = some_circuits(2);
        let err = backend.probabilities_batch(&circuits).unwrap_err();
        assert!(qaprox_fault::is_transient(&err), "{err}");
        // after:N disarms once fired: the retry succeeds
        assert_eq!(backend.probabilities_batch(&circuits).unwrap().len(), 2);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_batch_fault_degrades_to_per_candidate() {
        // a `traj.batch` fault kills the shot-batched fast path, but the
        // executor degrades to per-candidate evaluation: the job still
        // succeeds and — because both paths are bit-identical by contract —
        // produces exactly the rows the fast path would have
        let cal = ourense().induced(&[0, 1, 2]);
        let tb = TrajectoryBackend::with_shots(NoiseModel::from_calibration(cal), 16);
        let backend = Backend::Trajectory(tb);
        let circuits = some_circuits(3);
        let clean = backend.probabilities_batch(&circuits).unwrap();
        let _guard = qaprox_fault::Scenario::setup("traj.batch=always");
        let degraded = backend.probabilities_batch(&circuits).unwrap();
        assert_eq!(clean, degraded, "degraded path must match the fast path");
    }

    #[test]
    fn run_batch_with_computes_derived_metric() {
        let circuits = some_circuits(5);
        let backend = Backend::Ideal;
        let sums: Vec<f64> = backend.run_batch_with(&circuits, |_, p| p.iter().sum());
        for s in sums {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }
}
