//! Emulated physical-hardware backend — the substitute for the paper's runs
//! on the real ibmq_manhattan / ibmq_toronto / ibmq_rome chips.
//!
//! The paper observes (Obs. 7-9) that real hardware behaves like its noise
//! model *plus* effects IBM does not report: crosstalk, coherent gate
//! miscalibration, and readout drift. This backend layers exactly those
//! unmodeled terms on top of [`NoiseModel`]:
//!
//! * **coherent CNOT over-rotation** — each edge gets a fixed miscalibration
//!   angle (deterministic per edge, seeded), applied as an extra `RZZ`-like
//!   rotation with each CNOT; unlike depolarizing noise this error is
//!   *coherent* and can interfere constructively or destructively;
//! * **ZZ crosstalk** — while a CNOT plays, spectator qubits coupled to the
//!   gate qubits pick up a conditional phase;
//! * **readout drift** — assignment errors are inflated relative to the
//!   reported calibration (stale-calibration effect);
//! * **shot noise** — outputs are sampled (default 8192 shots), never exact.

use crate::density::DensityMatrix;
use crate::noise_model::NoiseModel;
use crate::readout::{apply_confusion, ReadoutError};
use crate::sampler::{counts_to_probs, sample_counts, DEFAULT_SHOTS};
use qaprox_circuit::{Circuit, Gate};
use qaprox_linalg::matrix::Matrix;
use qaprox_linalg::Complex64;

/// Strengths of the unreported-noise terms.
#[derive(Debug, Clone)]
pub struct HardwareEffects {
    /// Peak coherent over-rotation per CNOT, radians.
    pub overrotation_rad: f64,
    /// ZZ crosstalk phase picked up by each spectator per CNOT, radians.
    pub zz_crosstalk_rad: f64,
    /// Multiplier (> 1) applied to calibrated readout errors.
    pub readout_drift: f64,
    /// Shots per execution.
    pub shots: usize,
    /// Seed for per-edge static miscalibration angles and shot sampling.
    pub seed: u64,
}

impl Default for HardwareEffects {
    fn default() -> Self {
        // Calibrated against the paper's hardware sections: 2021 chips were
        // substantially worse than their reported noise models for deep
        // circuits (coherent errors compound quadratically with depth), to
        // the point where a ~40-CNOT Toffoli reference scored at or above
        // the 0.465 random-noise floor (Fig. 15) while shallow circuits
        // survived. These defaults reproduce that regime.
        HardwareEffects {
            overrotation_rad: 0.12,
            zz_crosstalk_rad: 0.06,
            readout_drift: 1.8,
            shots: DEFAULT_SHOTS,
            seed: 0xD15C,
        }
    }
}

impl HardwareEffects {
    /// The regime of the paper's Toffoli-on-Toronto sections (Figs. 15,
    /// 17-19): 2021 hardware degraded a routed ~40-CNOT reference to the
    /// 0.465 random-noise floor. These strengths are calibrated so the
    /// emulation lands in the same regime; shallow approximate circuits
    /// survive where the deep exact reference does not.
    pub fn heavy_2021() -> Self {
        HardwareEffects {
            overrotation_rad: 0.30,
            zz_crosstalk_rad: 0.15,
            readout_drift: 2.5,
            shots: DEFAULT_SHOTS,
            seed: 0xD15C,
        }
    }
}

/// The emulated physical machine.
#[derive(Debug, Clone)]
pub struct HardwareBackend {
    model: NoiseModel,
    effects: HardwareEffects,
}

/// `RZZ(theta) = exp(-i theta Z(x)Z / 2)` as a 4x4 matrix.
fn rzz_matrix(theta: f64) -> Matrix {
    let m = Complex64::cis(-theta / 2.0);
    let p = Complex64::cis(theta / 2.0);
    Matrix::diag(&[m, p, p, m])
}

/// Deterministic per-edge pseudo-random in `[-1, 1]` (static miscalibration).
fn edge_hash(seed: u64, a: usize, b: usize) -> f64 {
    let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
    let mut h = seed ^ 0x9E3779B97F4A7C15;
    for v in [lo, hi] {
        h ^= v
            .wrapping_add(0x9E3779B97F4A7C15)
            .wrapping_add(h << 6)
            .wrapping_add(h >> 2);
        h = h.wrapping_mul(0xBF58476D1CE4E5B9);
        h ^= h >> 31;
    }
    ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

impl HardwareBackend {
    /// Wraps a noise model with default hardware effects.
    pub fn new(model: NoiseModel) -> Self {
        HardwareBackend {
            model,
            effects: HardwareEffects::default(),
        }
    }

    /// Wraps with explicit effect strengths.
    pub fn with_effects(model: NoiseModel, effects: HardwareEffects) -> Self {
        HardwareBackend { model, effects }
    }

    /// The underlying noise model.
    pub fn model(&self) -> &NoiseModel {
        &self.model
    }

    /// Effect strengths in use.
    pub fn effects(&self) -> &HardwareEffects {
        &self.effects
    }

    /// Evolves the ground state through `circuit` with model noise plus the
    /// coherent hardware effects (no readout or shot noise yet).
    pub fn run_density(&self, circuit: &Circuit) -> DensityMatrix {
        let n = circuit.num_qubits();
        assert_eq!(
            n,
            self.model.num_qubits(),
            "circuit width must match device"
        );
        let topo = self.model.calibration().topology.clone();
        let mut dm = DensityMatrix::ground(n);
        for inst in circuit.iter() {
            dm.apply_gate(&inst.gate, &inst.qubits);
            if inst.qubits.len() == 2 {
                let (a, b) = (inst.qubits[0], inst.qubits[1]);
                // static coherent miscalibration of this resonance channel
                let angle = self.effects.overrotation_rad * edge_hash(self.effects.seed, a, b);
                if angle != 0.0 {
                    dm.apply_gate(&Gate::Unitary2(Box::new(rzz_matrix(angle))), &[a, b]);
                }
                // ZZ crosstalk onto spectators coupled to either gate qubit
                if self.effects.zz_crosstalk_rad != 0.0 {
                    for &g in &[a, b] {
                        for nb in topo.neighbors(g) {
                            if nb == a || nb == b {
                                continue;
                            }
                            let xt = self.effects.zz_crosstalk_rad
                                * edge_hash(self.effects.seed ^ 0xC0FFEE, g, nb);
                            dm.apply_gate(&Gate::Unitary2(Box::new(rzz_matrix(xt))), &[g, nb]);
                        }
                    }
                }
            }
            self.model.apply_gate_noise(&mut dm, inst);
        }
        dm
    }

    /// Exact outcome distribution including drifted readout confusion
    /// (before shot sampling).
    pub fn exact_probabilities(&self, circuit: &Circuit) -> Vec<f64> {
        let dm = self.run_density(circuit);
        let mut probs = dm.probabilities();
        let errs: Vec<ReadoutError> = self
            .model
            .calibration()
            .qubits
            .iter()
            .map(|q| {
                ReadoutError::symmetric((q.readout_error * self.effects.readout_drift).min(0.5))
            })
            .collect();
        apply_confusion(&mut probs, &errs);
        probs
    }

    /// One full "job": noisy evolution, drifted readout, finite shots.
    /// `job_seed` distinguishes repeated submissions of the same circuit.
    pub fn probabilities(&self, circuit: &Circuit, job_seed: u64) -> Vec<f64> {
        let exact = self.exact_probabilities(circuit);
        let counts = sample_counts(&exact, self.effects.shots, self.effects.seed ^ job_seed);
        counts_to_probs(&counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_device::devices::ourense;

    fn backend_3q() -> HardwareBackend {
        let cal = ourense().induced(&[0, 1, 2]);
        HardwareBackend::new(NoiseModel::from_calibration(cal))
    }

    #[test]
    fn rzz_is_unitary_diagonal() {
        let m = rzz_matrix(0.7);
        assert!(m.is_unitary(1e-13));
        assert!(m[(0, 1)].abs() < 1e-15);
    }

    #[test]
    fn edge_hash_is_deterministic_and_symmetric() {
        assert_eq!(edge_hash(1, 2, 5), edge_hash(1, 5, 2));
        assert_ne!(edge_hash(1, 2, 5), edge_hash(1, 2, 6));
        let v = edge_hash(99, 0, 1);
        assert!((-1.0..=1.0).contains(&v));
    }

    #[test]
    fn hardware_is_noisier_than_model() {
        let hw = backend_3q();
        let mut c = Circuit::new(3);
        c.h(0);
        for _ in 0..8 {
            c.cx(0, 1).cx(1, 2);
        }
        let ideal = c.statevector();
        let fid_model = hw.model().run_density(&c).fidelity_pure(&ideal);
        let fid_hw = hw.run_density(&c).fidelity_pure(&ideal);
        assert!(
            fid_hw < fid_model + 1e-9,
            "hardware ({fid_hw}) should be at most as faithful as the model ({fid_model})"
        );
    }

    #[test]
    fn shot_noise_present_but_bounded() {
        let hw = backend_3q();
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let exact = hw.exact_probabilities(&c);
        let sampled = hw.probabilities(&c, 11);
        let tvd: f64 = 0.5
            * exact
                .iter()
                .zip(&sampled)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>();
        assert!(tvd > 0.0, "shot noise should perturb the distribution");
        assert!(tvd < 0.05, "8192 shots should keep TVD small, got {tvd}");
    }

    #[test]
    fn jobs_with_same_seed_reproduce() {
        let hw = backend_3q();
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1);
        assert_eq!(hw.probabilities(&c, 7), hw.probabilities(&c, 7));
        assert_ne!(hw.probabilities(&c, 7), hw.probabilities(&c, 8));
    }

    #[test]
    fn effects_can_be_disabled_to_recover_model() {
        let cal = ourense().induced(&[0, 1, 2]);
        let model = NoiseModel::from_calibration(cal);
        let quiet = HardwareEffects {
            overrotation_rad: 0.0,
            zz_crosstalk_rad: 0.0,
            readout_drift: 1.0,
            shots: 8192,
            seed: 0,
        };
        let hw = HardwareBackend::with_effects(model.clone(), quiet);
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let a = hw.exact_probabilities(&c);
        let b = model.probabilities(&c);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-10);
        }
    }
}
