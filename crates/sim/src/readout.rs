//! Readout (measurement assignment) error.
//!
//! IBM backends report a per-qubit assignment error; Qiskit models it as a
//! confusion matrix applied to the ideal outcome distribution. We support an
//! asymmetric per-qubit confusion `P(read 1 | true 0) = e01`,
//! `P(read 0 | true 1) = e10`, applied qubit-by-qubit in `O(n 2^n)`.

/// Per-qubit confusion probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadoutError {
    /// Probability of reading 1 when the qubit is 0.
    pub e01: f64,
    /// Probability of reading 0 when the qubit is 1.
    pub e10: f64,
}

impl ReadoutError {
    /// Symmetric confusion with flip probability `e`.
    pub fn symmetric(e: f64) -> Self {
        ReadoutError { e01: e, e10: e }
    }
}

/// Applies per-qubit confusion to a basis-state distribution in place.
pub fn apply_confusion(probs: &mut [f64], errors: &[ReadoutError]) {
    let dim = probs.len();
    assert!(dim.is_power_of_two(), "distribution length must be 2^n");
    let n = dim.trailing_zeros() as usize;
    assert_eq!(errors.len(), n, "need one readout error per qubit");
    for (q, err) in errors.iter().enumerate() {
        if err.e01 == 0.0 && err.e10 == 0.0 {
            continue;
        }
        let mask = 1usize << q;
        for base in 0..dim {
            if base & mask != 0 {
                continue;
            }
            let hi = base | mask;
            let p0 = probs[base];
            let p1 = probs[hi];
            probs[base] = (1.0 - err.e01) * p0 + err.e10 * p1;
            probs[hi] = err.e01 * p0 + (1.0 - err.e10) * p1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_is_identity() {
        let mut p = vec![0.1, 0.2, 0.3, 0.4];
        let orig = p.clone();
        apply_confusion(&mut p, &[ReadoutError::symmetric(0.0); 2]);
        assert_eq!(p, orig);
    }

    #[test]
    fn symmetric_flip_on_deterministic_state() {
        // |00> with 10% flip each qubit
        let mut p = vec![1.0, 0.0, 0.0, 0.0];
        apply_confusion(&mut p, &[ReadoutError::symmetric(0.1); 2]);
        assert!((p[0b00] - 0.81).abs() < 1e-12);
        assert!((p[0b01] - 0.09).abs() < 1e-12);
        assert!((p[0b10] - 0.09).abs() < 1e-12);
        assert!((p[0b11] - 0.01).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_error_biases_toward_zero() {
        // excited state more likely to relax during readout: e10 > e01
        let mut p = vec![0.0, 1.0]; // |1>
        apply_confusion(
            &mut p,
            &[ReadoutError {
                e01: 0.01,
                e10: 0.2,
            }],
        );
        assert!((p[0] - 0.2).abs() < 1e-12);
        assert!((p[1] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn confusion_preserves_total_probability() {
        let mut p = vec![0.25, 0.25, 0.3, 0.2];
        apply_confusion(
            &mut p,
            &[
                ReadoutError {
                    e01: 0.05,
                    e10: 0.12,
                },
                ReadoutError::symmetric(0.07),
            ],
        );
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn full_flip_inverts_bits() {
        let mut p = vec![1.0, 0.0, 0.0, 0.0];
        apply_confusion(&mut p, &[ReadoutError::symmetric(1.0); 2]);
        assert!((p[0b11] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_distribution_is_fixed_point_of_symmetric_confusion() {
        let mut p = vec![0.25; 4];
        apply_confusion(&mut p, &[ReadoutError::symmetric(0.3); 2]);
        for &x in &p {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }
}
