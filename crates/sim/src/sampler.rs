//! Shot sampling: turning exact distributions into finite-shot counts.
//!
//! Hardware experiments in the paper use 8192 shots; the hardware-emulation
//! backend samples rather than reporting exact probabilities so that shot
//! noise is part of the reproduction.

use qaprox_linalg::random::Rng;
use qaprox_linalg::random::SplitMix64 as StdRng;

/// Default shot count used across experiments (matches IBM's common setting).
pub const DEFAULT_SHOTS: usize = 8192;

/// Draws `shots` samples from `probs` and returns per-outcome counts.
pub fn sample_counts(probs: &[f64], shots: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    sample_counts_with(probs, shots, &mut rng)
}

/// Sampling with a caller-provided RNG (inverse-CDF with binary search).
pub fn sample_counts_with<R: Rng>(probs: &[f64], shots: usize, rng: &mut R) -> Vec<u64> {
    assert!(!probs.is_empty(), "empty distribution");
    let total: f64 = probs.iter().sum();
    assert!(total > 0.0, "zero-mass distribution");
    let mut cdf = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for &p in probs {
        acc += p.max(0.0) / total;
        cdf.push(acc);
    }
    // guard against rounding: force the last bin to 1
    *cdf.last_mut().unwrap() = 1.0;

    let mut counts = vec![0u64; probs.len()];
    for _ in 0..shots {
        let u: f64 = rng.gen();
        let idx = cdf.partition_point(|&c| c < u).min(probs.len() - 1);
        counts[idx] += 1;
    }
    counts
}

/// Normalizes counts back into an empirical distribution.
pub fn counts_to_probs(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    assert!(total > 0, "no shots recorded");
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_distribution_samples_deterministically() {
        let counts = sample_counts(&[0.0, 1.0, 0.0, 0.0], 1000, 1);
        assert_eq!(counts[1], 1000);
        assert_eq!(counts.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn empirical_frequencies_converge() {
        let probs = [0.5, 0.25, 0.125, 0.125];
        let counts = sample_counts(&probs, 100_000, 7);
        let emp = counts_to_probs(&counts);
        for (e, p) in emp.iter().zip(&probs) {
            assert!((e - p).abs() < 0.01, "empirical {e} vs true {p}");
        }
    }

    #[test]
    fn unnormalized_input_is_handled() {
        let counts = sample_counts(&[3.0, 1.0], 40_000, 3);
        let emp = counts_to_probs(&counts);
        assert!((emp[0] - 0.75).abs() < 0.02);
    }

    #[test]
    fn seeded_sampling_reproduces() {
        let a = sample_counts(&[0.3, 0.7], 1000, 42);
        let b = sample_counts(&[0.3, 0.7], 1000, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn total_count_equals_shots() {
        let counts = sample_counts(&[0.1; 10], 8192, 5);
        assert_eq!(counts.iter().sum::<u64>(), 8192);
    }
}
