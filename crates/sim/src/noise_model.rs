//! Device noise models built from calibration snapshots.
//!
//! Mirrors Qiskit-Aer's `NoiseModel.from_backend`: each gate is followed by
//! a depolarizing channel sized from the reported gate error, plus thermal
//! relaxation over the gate duration from T1/T2; measurement applies the
//! per-qubit readout confusion. The paper's error-sensitivity sweeps
//! (Figs. 8-11) are produced by rewriting the calibration's CNOT errors
//! before building the model.

use crate::channels::thermal_relaxation;
use crate::density::DensityMatrix;
use crate::readout::{apply_confusion, ReadoutError};
use qaprox_circuit::{Circuit, Instruction};
use qaprox_device::{Calibration, EdgeCal};

/// A gate-level noise model for one device.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    cal: Calibration,
    /// Apply T1/T2 relaxation over gate durations.
    pub include_relaxation: bool,
    /// Apply readout confusion to the final distribution.
    pub include_readout: bool,
}

impl NoiseModel {
    /// Builds the standard model from a calibration snapshot.
    pub fn from_calibration(cal: Calibration) -> Self {
        NoiseModel {
            cal,
            include_relaxation: true,
            include_readout: true,
        }
    }

    /// The underlying calibration.
    pub fn calibration(&self) -> &Calibration {
        &self.cal
    }

    /// Number of physical qubits the model covers.
    pub fn num_qubits(&self) -> usize {
        self.cal.topology.num_qubits()
    }

    /// Depolarizing parameter for a one-qubit gate on `q`:
    /// `lambda = err * d/(d-1)` with `d = 2`.
    pub(crate) fn lambda_1q(&self, q: usize) -> f64 {
        (self.cal.qubits[q].sx_error * 2.0).clamp(0.0, 1.0)
    }

    /// Edge calibration with a fallback to device averages for uncoupled
    /// pairs (lenient mode: lets logical circuits run before routing).
    pub(crate) fn edge_cal(&self, a: usize, b: usize) -> EdgeCal {
        self.cal.edge(a, b).copied().unwrap_or(EdgeCal {
            cx_error: self.cal.avg_cx_error(),
            cx_time_ns: 400.0,
        })
    }

    /// Depolarizing parameter for a two-qubit gate: `lambda = err * 4/3`.
    pub(crate) fn lambda_2q(&self, a: usize, b: usize) -> f64 {
        (self.edge_cal(a, b).cx_error * 4.0 / 3.0).clamp(0.0, 1.0)
    }

    /// Applies the post-gate noise for one instruction to `dm`.
    pub fn apply_gate_noise(&self, dm: &mut DensityMatrix, inst: &Instruction) {
        match inst.qubits.len() {
            1 => {
                let q = inst.qubits[0];
                let l = self.lambda_1q(q);
                if l > 0.0 {
                    dm.depolarize(&[q], l);
                }
                if self.include_relaxation {
                    let qc = &self.cal.qubits[q];
                    let kraus = thermal_relaxation(qc.sx_time_ns, qc.t1_us, qc.t2_us);
                    dm.apply_kraus_1q(q, &kraus);
                }
            }
            2 => {
                let (a, b) = (inst.qubits[0], inst.qubits[1]);
                let l = self.lambda_2q(a, b);
                if l > 0.0 {
                    dm.depolarize(&[a, b], l);
                }
                if self.include_relaxation {
                    let t = self.edge_cal(a, b).cx_time_ns;
                    for &q in &[a, b] {
                        let qc = &self.cal.qubits[q];
                        let kraus = thermal_relaxation(t, qc.t1_us, qc.t2_us);
                        dm.apply_kraus_1q(q, &kraus);
                    }
                }
            }
            _ => unreachable!("IR only holds 1- and 2-qubit gates"),
        }
    }

    /// Evolves the ground state through `circuit` under this noise model.
    pub fn run_density(&self, circuit: &Circuit) -> DensityMatrix {
        assert_eq!(
            circuit.num_qubits(),
            self.num_qubits(),
            "circuit width must match the device model (induce the calibration first)"
        );
        let mut dm = DensityMatrix::ground(circuit.num_qubits());
        for inst in circuit.iter() {
            dm.apply_gate(&inst.gate, &inst.qubits);
            self.apply_gate_noise(&mut dm, inst);
        }
        dm
    }

    /// Static analysis of `circuit` under this model's parameters, without
    /// simulating: delegates to [`qaprox_verify::analyze`] with this model's
    /// relaxation/readout switches. The returned `fidelity_bound` upper
    /// bounds what [`NoiseModel::run_density`] +
    /// `DensityMatrix::fidelity_pure` would measure.
    pub fn analyze(&self, circuit: &Circuit) -> qaprox_verify::AnalysisReport {
        let opts = qaprox_verify::AnalyzeOptions {
            include_relaxation: self.include_relaxation,
            include_readout: self.include_readout,
            ..Default::default()
        };
        qaprox_verify::analyze(circuit, &self.cal, &opts)
    }

    /// Full noisy output distribution, including readout confusion.
    pub fn probabilities(&self, circuit: &Circuit) -> Vec<f64> {
        let dm = self.run_density(circuit);
        let mut probs = dm.probabilities();
        if self.include_readout {
            let errs: Vec<ReadoutError> = self
                .cal
                .qubits
                .iter()
                .map(|q| ReadoutError::symmetric(q.readout_error))
                .collect();
            apply_confusion(&mut probs, &errs);
        }
        probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_device::devices::ourense;
    use qaprox_device::{QubitCal, Topology};
    use std::collections::BTreeMap;

    fn noiseless_cal(n: usize) -> Calibration {
        let topology = Topology::linear(n);
        let qubits = vec![
            QubitCal {
                readout_error: 0.0,
                t1_us: 1e9,
                t2_us: 1e9,
                sx_error: 0.0,
                sx_time_ns: 0.0,
            };
            n
        ];
        let mut edges = BTreeMap::new();
        for &e in topology.edges() {
            edges.insert(
                e,
                EdgeCal {
                    cx_error: 0.0,
                    cx_time_ns: 0.0,
                },
            );
        }
        Calibration {
            machine: "noiseless".into(),
            topology,
            qubits,
            edges,
        }
    }

    #[test]
    fn noiseless_model_matches_ideal() {
        let model = NoiseModel::from_calibration(noiseless_cal(3));
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).rz(0.4, 2);
        let noisy = model.probabilities(&c);
        let ideal = crate::statevector::probabilities(&c);
        for (a, b) in noisy.iter().zip(&ideal) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn noise_reduces_fidelity_monotonically_in_depth() {
        let cal = ourense().induced(&[0, 1, 2]);
        let model = NoiseModel::from_calibration(cal);
        let mut fid_prev = 1.0;
        for depth in [1usize, 5, 15, 40] {
            let mut c = Circuit::new(3);
            for _ in 0..depth {
                c.cx(0, 1).cx(1, 2);
            }
            let ideal = c.statevector();
            let dm = model.run_density(&c);
            let fid = dm.fidelity_pure(&ideal);
            assert!(fid <= fid_prev + 1e-9, "fidelity should fall with depth");
            fid_prev = fid;
        }
        assert!(
            fid_prev < 0.7,
            "deep circuit should be visibly degraded: {fid_prev}"
        );
    }

    #[test]
    fn uniform_cx_error_override_controls_noise() {
        let base = ourense().induced(&[0, 1, 2]);
        let mut c = Circuit::new(3);
        for _ in 0..6 {
            c.cx(0, 1).cx(1, 2);
        }
        let ideal = c.statevector();
        let mut fids = Vec::new();
        for eps in [0.0, 0.06, 0.24] {
            let model = NoiseModel::from_calibration(base.with_uniform_cx_error(eps));
            let fid = model.run_density(&c).fidelity_pure(&ideal);
            fids.push(fid);
        }
        assert!(
            fids[0] > fids[1] && fids[1] > fids[2],
            "fidelity vs cx error: {fids:?}"
        );
    }

    #[test]
    fn probabilities_are_normalized_under_noise() {
        let cal = ourense().induced(&[0, 1, 2]);
        let model = NoiseModel::from_calibration(cal);
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).ry(1.0, 0);
        let p = model.probabilities(&c);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn readout_error_applies_even_to_empty_circuit() {
        let cal = ourense().induced(&[0, 1, 2]);
        let ro = cal.qubits[0].readout_error;
        let model = NoiseModel::from_calibration(cal);
        let c = Circuit::new(3);
        let p = model.probabilities(&c);
        // ground state should be misread with roughly the readout error rate
        assert!(p[0] < 1.0 - ro / 2.0);
        assert!(p[0] > 0.8);
    }

    #[test]
    fn static_bound_upper_bounds_measured_fidelity() {
        let cal = ourense().induced(&[0, 1, 2]);
        for eps in [0.0, 0.02, 0.1] {
            let model = NoiseModel::from_calibration(cal.with_uniform_cx_error(eps));
            let mut c = Circuit::new(3);
            c.h(0).cx(0, 1).cx(1, 2).rz(0.4, 2).cx(0, 1);
            let measured = model.run_density(&c).fidelity_pure(&c.statevector());
            let report = model.analyze(&c);
            assert!(
                report.fidelity_bound >= measured - 1e-12,
                "bound {} undercuts measured {measured} at eps={eps}",
                report.fidelity_bound
            );
        }
    }

    #[test]
    fn relaxation_toggle_changes_output() {
        let cal = ourense().induced(&[0, 1, 2]);
        let mut with = NoiseModel::from_calibration(cal.clone());
        with.include_readout = false;
        let mut without = with.clone();
        without.include_relaxation = false;
        let mut c = Circuit::new(3);
        c.x(0);
        for _ in 0..20 {
            c.cx(0, 1).cx(1, 2);
        }
        let pw = with.probabilities(&c);
        let po = without.probabilities(&c);
        let diff: f64 = pw.iter().zip(&po).map(|(a, b)| (a - b).abs()).sum();
        assert!(
            diff > 1e-4,
            "relaxation should be visible on a deep circuit"
        );
    }
}
