//! Standard noise channels as Kraus operator sets.
//!
//! These are the same ingredients Qiskit's device noise models are built
//! from: depolarizing errors sized from reported gate error rates, thermal
//! relaxation from T1/T2 and gate durations, and (for completeness and tests)
//! the textbook bit/phase-flip and damping channels.

use qaprox_linalg::matrix::{pauli_x, pauli_y, pauli_z, Matrix};
use qaprox_linalg::{c64, Complex64};

/// Checks Kraus completeness: `sum K_i^dagger K_i = I`.
pub fn is_trace_preserving(kraus: &[Matrix], tol: f64) -> bool {
    let dim = kraus[0].rows();
    let mut acc = Matrix::zeros(dim, dim);
    for k in kraus {
        acc.axpy(Complex64::ONE, &k.adjoint().matmul(k));
    }
    acc.approx_eq(&Matrix::identity(dim), tol)
}

/// Bit-flip channel: applies X with probability `p`.
pub fn bit_flip(p: f64) -> Vec<Matrix> {
    assert!((0.0..=1.0).contains(&p));
    vec![
        Matrix::identity(2).scale_re((1.0 - p).sqrt()),
        pauli_x().scale_re(p.sqrt()),
    ]
}

/// Phase-flip channel: applies Z with probability `p`.
pub fn phase_flip(p: f64) -> Vec<Matrix> {
    assert!((0.0..=1.0).contains(&p));
    vec![
        Matrix::identity(2).scale_re((1.0 - p).sqrt()),
        pauli_z().scale_re(p.sqrt()),
    ]
}

/// One-qubit depolarizing channel with parameter `lambda`
/// (`rho -> (1-lambda) rho + lambda I/2`), expressed with 4 Kraus operators.
pub fn depolarizing_1q(lambda: f64) -> Vec<Matrix> {
    assert!((0.0..=1.0).contains(&lambda), "lambda out of range");
    let p = lambda / 4.0;
    vec![
        Matrix::identity(2).scale_re((1.0 - 3.0 * p).max(0.0).sqrt()),
        pauli_x().scale_re(p.sqrt()),
        pauli_y().scale_re(p.sqrt()),
        pauli_z().scale_re(p.sqrt()),
    ]
}

/// Two-qubit depolarizing channel with parameter `lambda`, expressed with
/// all 16 two-qubit Pauli Kraus operators. Used in tests to cross-check the
/// closed-form partial-trace implementation in
/// [`crate::density::DensityMatrix::depolarize`].
pub fn depolarizing_2q(lambda: f64) -> Vec<Matrix> {
    assert!((0.0..=1.0).contains(&lambda), "lambda out of range");
    let p = lambda / 16.0;
    let singles = [Matrix::identity(2), pauli_x(), pauli_y(), pauli_z()];
    let mut out = Vec::with_capacity(16);
    for (i, a) in singles.iter().enumerate() {
        for (j, b) in singles.iter().enumerate() {
            let weight = if i == 0 && j == 0 {
                (1.0 - 15.0 * p).max(0.0)
            } else {
                p
            };
            out.push(a.kron(b).scale_re(weight.sqrt()));
        }
    }
    out
}

/// Amplitude damping with decay probability `gamma` (T1 process).
pub fn amplitude_damping(gamma: f64) -> Vec<Matrix> {
    assert!((0.0..=1.0).contains(&gamma));
    let k0 = Matrix::from_rows(&[
        &[Complex64::ONE, Complex64::ZERO],
        &[Complex64::ZERO, c64((1.0 - gamma).sqrt(), 0.0)],
    ]);
    let k1 = Matrix::from_rows(&[
        &[Complex64::ZERO, c64(gamma.sqrt(), 0.0)],
        &[Complex64::ZERO, Complex64::ZERO],
    ]);
    vec![k0, k1]
}

/// Phase damping with parameter `lambda` (pure dephasing).
pub fn phase_damping(lambda: f64) -> Vec<Matrix> {
    assert!((0.0..=1.0).contains(&lambda));
    let k0 = Matrix::diag(&[Complex64::ONE, c64((1.0 - lambda).sqrt(), 0.0)]);
    let k1 = Matrix::diag(&[Complex64::ZERO, c64(lambda.sqrt(), 0.0)]);
    vec![k0, k1]
}

/// Thermal relaxation over duration `t_ns` for a qubit with the given
/// coherence times: amplitude damping composed with the pure dephasing that
/// makes the total off-diagonal decay `exp(-t/T2)`.
///
/// Requires `T2 <= 2 T1` (physical); the excess dephasing rate is
/// `1/T_phi = 1/T2 - 1/(2 T1)`.
pub fn thermal_relaxation(t_ns: f64, t1_us: f64, t2_us: f64) -> Vec<Matrix> {
    assert!(t_ns >= 0.0 && t1_us > 0.0 && t2_us > 0.0);
    let t_us = t_ns * 1e-3;
    let gamma = 1.0 - (-t_us / t1_us).exp();
    // residual dephasing after accounting for T1's contribution to T2
    let inv_tphi = (1.0 / t2_us - 0.5 / t1_us).max(0.0);
    let lambda = 1.0 - (-2.0 * t_us * inv_tphi).exp();
    // Compose: K_total = {A_i * P_j} over amplitude damping A and phase damping P.
    let ad = amplitude_damping(gamma);
    let pd = phase_damping(lambda);
    let mut out = Vec::with_capacity(ad.len() * pd.len());
    for a in &ad {
        for p in &pd {
            out.push(a.matmul(p));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::DensityMatrix;
    use qaprox_circuit::Circuit;

    #[test]
    fn all_channels_are_trace_preserving() {
        for kraus in [
            bit_flip(0.3),
            phase_flip(0.1),
            depolarizing_1q(0.25),
            amplitude_damping(0.4),
            phase_damping(0.2),
            thermal_relaxation(300.0, 80.0, 70.0),
        ] {
            assert!(is_trace_preserving(&kraus, 1e-12));
        }
    }

    #[test]
    fn depolarizing_matches_closed_form() {
        // Kraus form vs the partial-trace closed form in DensityMatrix
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rz(0.3, 0);
        let lambda = 0.37;

        let mut via_kraus = DensityMatrix::ground(2);
        via_kraus.apply_circuit(&c);
        via_kraus.apply_kraus_1q(0, &depolarizing_1q(lambda));

        let mut via_closed = DensityMatrix::ground(2);
        via_closed.apply_circuit(&c);
        via_closed.depolarize(&[0], lambda);

        assert!(via_kraus.matrix().approx_eq(via_closed.matrix(), 1e-12));
    }

    #[test]
    fn depolarizing_2q_is_trace_preserving_and_matches_closed_form() {
        let lambda = 0.41;
        let kraus = depolarizing_2q(lambda);
        assert_eq!(kraus.len(), 16);
        assert!(is_trace_preserving(&kraus, 1e-12));

        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).rz(0.4, 2);
        let mut via_kraus = DensityMatrix::ground(3);
        via_kraus.apply_circuit(&c);
        via_kraus.apply_kraus_2q(0, 2, &kraus);

        let mut via_closed = DensityMatrix::ground(3);
        via_closed.apply_circuit(&c);
        via_closed.depolarize(&[0, 2], lambda);

        assert!(via_kraus.matrix().approx_eq(via_closed.matrix(), 1e-11));
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let mut dm = DensityMatrix::basis(1, 1); // |1>
        dm.apply_kraus_1q(0, &amplitude_damping(0.3));
        let p = dm.probabilities();
        assert!((p[1] - 0.7).abs() < 1e-13);
        assert!((p[0] - 0.3).abs() < 1e-13);
    }

    #[test]
    fn phase_damping_kills_coherence_not_populations() {
        let mut c = Circuit::new(1);
        c.h(0);
        let mut dm = DensityMatrix::ground(1);
        dm.apply_circuit(&c);
        dm.apply_kraus_1q(0, &phase_damping(1.0));
        let p = dm.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-13);
        assert!((p[1] - 0.5).abs() < 1e-13);
        assert!(dm.matrix()[(0, 1)].abs() < 1e-13, "coherence should vanish");
    }

    #[test]
    fn thermal_relaxation_zero_time_is_identity() {
        let mut c = Circuit::new(1);
        c.h(0);
        let mut dm = DensityMatrix::ground(1);
        dm.apply_circuit(&c);
        let before = dm.clone();
        dm.apply_kraus_1q(0, &thermal_relaxation(0.0, 80.0, 70.0));
        assert!(dm.matrix().approx_eq(before.matrix(), 1e-12));
    }

    #[test]
    fn thermal_relaxation_off_diagonal_decays_at_t2() {
        let (t1, t2) = (80.0, 60.0);
        let t_ns = 50_000.0; // 50 us
        let mut c = Circuit::new(1);
        c.h(0);
        let mut dm = DensityMatrix::ground(1);
        dm.apply_circuit(&c);
        dm.apply_kraus_1q(0, &thermal_relaxation(t_ns, t1, t2));
        let expected = 0.5 * (-(t_ns * 1e-3) / t2).exp();
        assert!(
            (dm.matrix()[(0, 1)].abs() - expected).abs() < 1e-10,
            "off-diagonal {} vs expected {expected}",
            dm.matrix()[(0, 1)].abs()
        );
    }

    #[test]
    fn thermal_relaxation_population_decays_at_t1() {
        let (t1, t2) = (80.0, 60.0);
        let t_ns = 80_000.0; // one T1
        let mut dm = DensityMatrix::basis(1, 1);
        dm.apply_kraus_1q(0, &thermal_relaxation(t_ns, t1, t2));
        let p = dm.probabilities();
        let expected = (-1.0f64).exp();
        assert!((p[1] - expected).abs() < 1e-10);
    }

    #[test]
    fn long_relaxation_reaches_ground_state() {
        let mut dm = DensityMatrix::basis(1, 1);
        dm.apply_kraus_1q(0, &thermal_relaxation(10_000_000.0, 50.0, 40.0));
        let p = dm.probabilities();
        assert!(p[0] > 0.999);
    }
}
