//! Density-matrix state and operations.
//!
//! Noisy execution needs mixed states: a [`DensityMatrix`] is a `2^n x 2^n`
//! Hermitian, unit-trace matrix evolved by unitaries (`U rho U^dagger`, via
//! the embedding-free kernels) and by Kraus channels. The paper's circuits
//! top out at 5 qubits, so rho is at most 32x32 — the cost center is the
//! *number* of circuits (hundreds per figure), which the batch executor
//! parallelizes instead.

use qaprox_circuit::{Circuit, Gate};
use qaprox_linalg::kernels::{
    accum_conj_1q, accum_conj_2q, apply_1q_mat_left, apply_1q_mat_right_dag, apply_2q_mat_left,
    apply_2q_mat_right_dag, mat2_to_array, mat4_to_array,
};
use qaprox_linalg::matrix::Matrix;
use qaprox_linalg::{c64, Complex64};

/// A mixed quantum state on `n` qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    num_qubits: usize,
    rho: Matrix,
}

impl DensityMatrix {
    /// The pure state `|0...0><0...0|`.
    pub fn ground(num_qubits: usize) -> Self {
        let dim = 1usize << num_qubits;
        let mut rho = Matrix::zeros(dim, dim);
        rho[(0, 0)] = Complex64::ONE;
        DensityMatrix { num_qubits, rho }
    }

    /// The pure state `|basis><basis|`.
    pub fn basis(num_qubits: usize, basis: usize) -> Self {
        let dim = 1usize << num_qubits;
        assert!(basis < dim, "basis state out of range");
        let mut rho = Matrix::zeros(dim, dim);
        rho[(basis, basis)] = Complex64::ONE;
        DensityMatrix { num_qubits, rho }
    }

    /// The maximally mixed state `I / 2^n`.
    pub fn maximally_mixed(num_qubits: usize) -> Self {
        let dim = 1usize << num_qubits;
        let rho = Matrix::identity(dim).scale_re(1.0 / dim as f64);
        DensityMatrix { num_qubits, rho }
    }

    /// Builds from a pure statevector.
    pub fn from_statevector(state: &[Complex64]) -> Self {
        let dim = state.len();
        assert!(dim.is_power_of_two(), "statevector length must be 2^n");
        let num_qubits = dim.trailing_zeros() as usize;
        let mut rho = Matrix::zeros(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                rho[(i, j)] = state[i] * state[j].conj();
            }
        }
        DensityMatrix { num_qubits, rho }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Hilbert dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        1usize << self.num_qubits
    }

    /// Immutable access to the underlying matrix.
    #[inline]
    pub fn matrix(&self) -> &Matrix {
        &self.rho
    }

    /// Applies a placed gate: `rho <- U rho U^dagger`.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) {
        match gate.arity() {
            1 => {
                let u = mat2_to_array(&gate.matrix());
                apply_1q_mat_left(&mut self.rho, qubits[0], &u);
                apply_1q_mat_right_dag(&mut self.rho, qubits[0], &u);
            }
            2 => {
                let u = mat4_to_array(&gate.matrix());
                apply_2q_mat_left(&mut self.rho, qubits[0], qubits[1], &u);
                apply_2q_mat_right_dag(&mut self.rho, qubits[0], qubits[1], &u);
            }
            _ => unreachable!("IR only holds 1- and 2-qubit gates"),
        }
    }

    /// Applies a whole circuit without noise.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert_eq!(
            circuit.num_qubits(),
            self.num_qubits,
            "circuit width mismatch"
        );
        for inst in circuit.iter() {
            self.apply_gate(&inst.gate, &inst.qubits);
        }
    }

    /// Applies a one-qubit Kraus channel `{K_i}` on qubit `q`:
    /// `rho <- sum_i K_i rho K_i^dagger`.
    pub fn apply_kraus_1q(&mut self, q: usize, kraus: &[Matrix]) {
        #[cfg(feature = "strict-invariants")]
        let trace_before = self.trace();
        // One scratch accumulator for the whole channel: each Kraus term is
        // accumulated as `acc += K rho K^dagger` block-wise in registers
        // (previously: one full `rho.clone()` per Kraus operator — 4 clones
        // for a depolarizing channel; now exactly one allocation per call).
        let mut acc = Matrix::zeros(self.dim(), self.dim());
        for k in kraus {
            let ka = mat2_to_array(k);
            accum_conj_1q(&mut acc, &self.rho, q, &ka);
        }
        self.rho = acc;
        #[cfg(feature = "strict-invariants")]
        debug_assert!(
            (self.trace() - trace_before).abs() < 1e-8,
            "1q Kraus set on qubit {q} is not trace preserving"
        );
    }

    /// Applies a two-qubit Kraus channel on `(a, b)`.
    pub fn apply_kraus_2q(&mut self, a: usize, b: usize, kraus: &[Matrix]) {
        #[cfg(feature = "strict-invariants")]
        let trace_before = self.trace();
        // Same single-scratch pattern as `apply_kraus_1q`: one accumulator
        // allocation per call instead of one `rho.clone()` per Kraus operator
        // (a 2q amplitude-damping pair of channels used to clone 16 times).
        let mut acc = Matrix::zeros(self.dim(), self.dim());
        for k in kraus {
            let ka = mat4_to_array(k);
            accum_conj_2q(&mut acc, &self.rho, a, b, &ka);
        }
        self.rho = acc;
        #[cfg(feature = "strict-invariants")]
        debug_assert!(
            (self.trace() - trace_before).abs() < 1e-8,
            "2q Kraus set on qubits ({a}, {b}) is not trace preserving"
        );
    }

    /// Depolarizes the given qubits with strength `lambda`:
    /// `rho <- (1 - lambda) rho + lambda * (Tr_q rho) (x) I/d_q`.
    ///
    /// This closed form equals the uniform Pauli-twirl channel and avoids
    /// enumerating 4^k Kraus operators.
    pub fn depolarize(&mut self, qubits: &[usize], lambda: f64) {
        assert!((0.0..=1.0 + 1e-12).contains(&lambda), "lambda out of range");
        if lambda == 0.0 {
            return;
        }
        let reduced = self.partial_trace(qubits);
        let dq = 1usize << qubits.len();
        // Rebuild lambda * (I/dq (x) reduced) embedded at the right qubit positions.
        let dim = self.dim();
        let rest_qubits: Vec<usize> = (0..self.num_qubits)
            .filter(|q| !qubits.contains(q))
            .collect();
        let mut mixed = Matrix::zeros(dim, dim);
        // index helpers: compose a full index from (rest_index_bits, traced_bits)
        for ri in 0..(1usize << rest_qubits.len()) {
            for rj in 0..(1usize << rest_qubits.len()) {
                let val = reduced[(ri, rj)] / dq as f64;
                if val.abs() < 1e-300 {
                    continue;
                }
                for t in 0..dq {
                    let mut i_full = 0usize;
                    let mut j_full = 0usize;
                    for (k, &q) in rest_qubits.iter().enumerate() {
                        i_full |= ((ri >> k) & 1) << q;
                        j_full |= ((rj >> k) & 1) << q;
                    }
                    for (k, &q) in qubits.iter().enumerate() {
                        let bit = (t >> k) & 1;
                        i_full |= bit << q;
                        j_full |= bit << q;
                    }
                    mixed[(i_full, j_full)] += val;
                }
            }
        }
        let mut out = self.rho.scale_re(1.0 - lambda);
        out.axpy(c64(lambda, 0.0), &mixed);
        self.rho = out;
    }

    /// Partial trace over `qubits`, returning the reduced density matrix on
    /// the remaining qubits (in ascending qubit order).
    pub fn partial_trace(&self, qubits: &[usize]) -> Matrix {
        for &q in qubits {
            assert!(q < self.num_qubits, "trace qubit out of range");
        }
        let rest: Vec<usize> = (0..self.num_qubits)
            .filter(|q| !qubits.contains(q))
            .collect();
        let rdim = 1usize << rest.len();
        let tdim = 1usize << qubits.len();
        let mut out = Matrix::zeros(rdim, rdim);
        for ri in 0..rdim {
            for rj in 0..rdim {
                let mut acc = Complex64::ZERO;
                for t in 0..tdim {
                    let mut i_full = 0usize;
                    let mut j_full = 0usize;
                    for (k, &q) in rest.iter().enumerate() {
                        i_full |= ((ri >> k) & 1) << q;
                        j_full |= ((rj >> k) & 1) << q;
                    }
                    for (k, &q) in qubits.iter().enumerate() {
                        let bit = (t >> k) & 1;
                        i_full |= bit << q;
                        j_full |= bit << q;
                    }
                    acc += self.rho[(i_full, j_full)];
                }
                out[(ri, rj)] = acc;
            }
        }
        out
    }

    /// Measurement distribution: the real diagonal of rho.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim())
            .map(|i| self.rho[(i, i)].re.max(0.0))
            .collect()
    }

    /// Trace (should stay 1 under trace-preserving evolution).
    pub fn trace(&self) -> f64 {
        self.rho.trace().re
    }

    /// Purity `Tr(rho^2)`: 1 for pure states, `1/2^n` for maximally mixed.
    pub fn purity(&self) -> f64 {
        // Tr(rho^2) = sum_ij rho_ij rho_ji = sum_ij |rho_ij|^2 for Hermitian rho
        self.rho.data().iter().map(|z| z.norm_sqr()).sum()
    }

    /// Entanglement (von Neumann) entropy of the subsystem left after
    /// tracing out `qubits`, in nats. For a globally pure state this is the
    /// entanglement between the two partitions (a Bell pair gives `ln 2`).
    pub fn entanglement_entropy(&self, traced_qubits: &[usize]) -> f64 {
        let reduced = self.partial_trace(traced_qubits);
        qaprox_linalg::von_neumann_entropy(&reduced)
    }

    /// Fidelity against a pure state: `<psi| rho |psi>`.
    pub fn fidelity_pure(&self, psi: &[Complex64]) -> f64 {
        assert_eq!(psi.len(), self.dim(), "state dimension mismatch");
        let rho_psi = self.rho.matvec(psi);
        let mut acc = Complex64::ZERO;
        for (a, b) in psi.iter().zip(&rho_psi) {
            acc = acc.mul_add(a.conj(), *b);
        }
        acc.re.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_state_properties() {
        let dm = DensityMatrix::ground(3);
        assert!((dm.trace() - 1.0).abs() < 1e-14);
        assert!((dm.purity() - 1.0).abs() < 1e-14);
        let p = dm.probabilities();
        assert!((p[0] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(0.9, 1).cx(1, 2).ry(0.4, 2);
        let sv = c.statevector();
        let mut dm = DensityMatrix::ground(3);
        dm.apply_circuit(&c);
        let expect = DensityMatrix::from_statevector(&sv);
        assert!(dm.matrix().approx_eq(expect.matrix(), 1e-12));
        assert!((dm.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn maximally_mixed_is_invariant_under_unitaries() {
        let mut dm = DensityMatrix::maximally_mixed(2);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rz(1.0, 1);
        dm.apply_circuit(&c);
        let expect = DensityMatrix::maximally_mixed(2);
        assert!(dm.matrix().approx_eq(expect.matrix(), 1e-12));
    }

    #[test]
    fn full_depolarize_gives_maximally_mixed_on_target() {
        let mut dm = DensityMatrix::ground(2);
        dm.depolarize(&[0], 1.0);
        // qubit 0 fully mixed, qubit 1 still |0>
        let p = dm.probabilities();
        assert!((p[0b00] - 0.5).abs() < 1e-13);
        assert!((p[0b01] - 0.5).abs() < 1e-13);
        assert!(p[0b10].abs() < 1e-13);
        assert!((dm.trace() - 1.0).abs() < 1e-13);
    }

    #[test]
    fn depolarize_both_qubits_fully() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut dm = DensityMatrix::ground(2);
        dm.apply_circuit(&c);
        dm.depolarize(&[0, 1], 1.0);
        assert!(dm
            .matrix()
            .approx_eq(DensityMatrix::maximally_mixed(2).matrix(), 1e-12));
    }

    #[test]
    fn depolarize_preserves_trace_and_reduces_purity() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let mut dm = DensityMatrix::ground(3);
        dm.apply_circuit(&c);
        let p0 = dm.purity();
        dm.depolarize(&[1], 0.3);
        assert!((dm.trace() - 1.0).abs() < 1e-12);
        assert!(dm.purity() < p0);
    }

    #[test]
    fn partial_trace_of_bell_state_is_mixed() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut dm = DensityMatrix::ground(2);
        dm.apply_circuit(&c);
        let reduced = dm.partial_trace(&[1]);
        assert_eq!(reduced.rows(), 2);
        assert!((reduced[(0, 0)].re - 0.5).abs() < 1e-13);
        assert!((reduced[(1, 1)].re - 0.5).abs() < 1e-13);
        assert!(reduced[(0, 1)].abs() < 1e-13);
    }

    #[test]
    fn partial_trace_of_product_state_is_pure() {
        let mut c = Circuit::new(2);
        c.h(0); // qubit 0 in |+>, qubit 1 in |0>
        let mut dm = DensityMatrix::ground(2);
        dm.apply_circuit(&c);
        let reduced = dm.partial_trace(&[1]); // keep qubit 0
                                              // |+><+| has purity 1
        let purity: f64 = reduced.data().iter().map(|z| z.norm_sqr()).sum();
        assert!((purity - 1.0).abs() < 1e-12);
        assert!((reduced[(0, 1)].re - 0.5).abs() < 1e-13);
    }

    #[test]
    fn kraus_bit_flip_channel() {
        // bit flip with p = 0.25 on |0>: P(1) = 0.25
        let p: f64 = 0.25;
        let k0 = Matrix::identity(2).scale_re((1.0 - p).sqrt());
        let k1 = qaprox_linalg::matrix::pauli_x().scale_re(p.sqrt());
        let mut dm = DensityMatrix::ground(1);
        dm.apply_kraus_1q(0, &[k0, k1]);
        let probs = dm.probabilities();
        assert!((probs[0] - 0.75).abs() < 1e-13);
        assert!((probs[1] - 0.25).abs() < 1e-13);
        assert!((dm.trace() - 1.0).abs() < 1e-13);
    }

    #[test]
    fn fidelity_pure_detects_match_and_mismatch() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = c.statevector();
        let mut dm = DensityMatrix::ground(2);
        dm.apply_circuit(&c);
        assert!((dm.fidelity_pure(&sv) - 1.0).abs() < 1e-12);
        let ground: Vec<Complex64> = {
            let mut v = vec![Complex64::ZERO; 4];
            v[0] = Complex64::ONE;
            v
        };
        assert!((dm.fidelity_pure(&ground) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bell_pair_entanglement_entropy_is_ln2() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut dm = DensityMatrix::ground(2);
        dm.apply_circuit(&c);
        let s = dm.entanglement_entropy(&[1]);
        assert!(
            (s - std::f64::consts::LN_2).abs() < 1e-9,
            "Bell entropy {s}"
        );
        // product state: zero entanglement
        let mut prod = DensityMatrix::ground(2);
        let mut pc = Circuit::new(2);
        pc.h(0).rx(0.3, 1);
        prod.apply_circuit(&pc);
        assert!(prod.entanglement_entropy(&[1]).abs() < 1e-9);
    }

    #[test]
    fn ghz_entropy_of_single_qubit_cut() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let mut dm = DensityMatrix::ground(3);
        dm.apply_circuit(&c);
        // tracing two qubits of GHZ leaves a classical 50/50 mixture: ln 2
        let s = dm.entanglement_entropy(&[1, 2]);
        assert!((s - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn basis_constructor() {
        let dm = DensityMatrix::basis(3, 0b101);
        let p = dm.probabilities();
        assert!((p[5] - 1.0).abs() < 1e-14);
    }
}
