//! Ideal (noise-free) statevector simulation.
//!
//! This is the stand-in for Qiskit-Aer's ideal backend: it produces the
//! "noise free reference" series of every TFIM figure and the exact output
//! distributions that the JS/TVD metrics compare against.
//!
//! The apply path is `Circuit::apply_to_state`, which since the SIMD PR
//! rides the same blocked, runtime-dispatched amplitude kernels as the
//! trajectory backend (`qaprox_linalg::simd`) — there is no separate
//! statevector gate loop to keep in sync.

use qaprox_circuit::Circuit;
use qaprox_linalg::Complex64;

/// Runs `circuit` on `|0...0>` and returns the final statevector.
pub fn run(circuit: &Circuit) -> Vec<Complex64> {
    let state = circuit.statevector();
    #[cfg(feature = "strict-invariants")]
    {
        let norm: f64 = state.iter().map(|z| z.norm_sqr()).sum();
        debug_assert!(
            (norm - 1.0).abs() < 1e-9,
            "statevector norm drifted to {norm}"
        );
    }
    state
}

/// Runs `circuit` from an arbitrary initial basis state.
pub fn run_from_basis(circuit: &Circuit, basis: usize) -> Vec<Complex64> {
    let dim = circuit.dim();
    assert!(basis < dim, "initial basis state out of range");
    let mut state = vec![Complex64::ZERO; dim];
    state[basis] = Complex64::ONE;
    circuit.apply_to_state(&mut state);
    state
}

/// Ideal measurement distribution of `circuit` from `|0...0>`.
pub fn probabilities(circuit: &Circuit) -> Vec<f64> {
    run(circuit).iter().map(|z| z.norm_sqr()).collect()
}

/// Ideal measurement distribution from a given basis state.
pub fn probabilities_from_basis(circuit: &Circuit, basis: usize) -> Vec<f64> {
    run_from_basis(circuit, basis)
        .iter()
        .map(|z| z.norm_sqr())
        .collect()
}

/// Deterministic measurement-shot counts from the ideal distribution, via
/// the shared shot sampler ([`crate::sampler`]). This is the one sampling
/// path every backend uses — statevector and trajectory alike — so callers
/// never hand-roll their own inverse-CDF loop.
pub fn sample_shots(circuit: &Circuit, shots: usize, seed: u64) -> Vec<u64> {
    crate::sampler::sample_counts(&probabilities(circuit), shots, seed)
}

/// Empirical finite-shot distribution: [`sample_shots`] normalized.
pub fn sampled_probabilities(circuit: &Circuit, shots: usize, seed: u64) -> Vec<f64> {
    crate::sampler::counts_to_probs(&sample_shots(circuit, shots, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_probabilities() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let p = probabilities(&c);
        assert!((p[0] - 0.5).abs() < 1e-13);
        assert!((p[3] - 0.5).abs() < 1e-13);
        assert!(p[1].abs() < 1e-13 && p[2].abs() < 1e-13);
    }

    #[test]
    fn run_from_basis_prepares_state() {
        let c = Circuit::new(3); // empty circuit
        let sv = run_from_basis(&c, 5);
        assert!((sv[5] - Complex64::ONE).abs() < 1e-15);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2).cx(0, 1).rz(0.7, 2).cx(1, 2);
        let p = probabilities(&c);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shot_sampling_is_deterministic_and_converges() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let a = sample_shots(&c, 4096, 11);
        let b = sample_shots(&c, 4096, 11);
        assert_eq!(a, b, "same seed must reproduce the same shots");
        assert_eq!(a.iter().sum::<u64>(), 4096);
        let emp = sampled_probabilities(&c, 65_536, 13);
        let exact = probabilities(&c);
        for (e, p) in emp.iter().zip(&exact) {
            assert!((e - p).abs() < 0.01, "empirical {e} vs exact {p}");
        }
    }

    #[test]
    fn x_on_basis_flips_bit() {
        let mut c = Circuit::new(2);
        c.x(1);
        let p = probabilities_from_basis(&c, 0b01);
        assert!((p[0b11] - 1.0).abs() < 1e-13);
    }
}
