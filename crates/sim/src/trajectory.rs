//! Monte-Carlo quantum-trajectory simulation.
//!
//! An independent implementation of noisy execution: instead of evolving a
//! `4^n`-entry density matrix, each *trajectory* evolves a `2^n` statevector
//! and samples one Kraus branch per noise event. Averaging trajectories
//! converges to the density-matrix result (a strong cross-validation target
//! for the test suite) and scales to circuit widths where the density matrix
//! does not — the route to the "wider circuits" the paper's Sec. 6.5 wants.

use crate::noise_model::NoiseModel;
use qaprox_circuit::{Circuit, Instruction};
use qaprox_linalg::kernels::{apply_1q_vec, apply_2q_vec, mat2_to_array};
use qaprox_linalg::matrix::Matrix;
use qaprox_linalg::parallel::par_map_range;
use qaprox_linalg::random::Rng;
use qaprox_linalg::random::SplitMix64 as StdRng;
use qaprox_linalg::Complex64;

/// Applies one Kraus channel stochastically to a statevector: branch `i` is
/// chosen with probability `||K_i psi||^2`, then the state is renormalized.
pub fn apply_kraus_1q_stochastic<R: Rng>(
    state: &mut [Complex64],
    q: usize,
    kraus: &[Matrix],
    rng: &mut R,
) {
    debug_assert!(!kraus.is_empty());
    // Compute branch probabilities by applying each operator to a copy.
    let mut branch_norms = Vec::with_capacity(kraus.len());
    let mut branches: Vec<Vec<Complex64>> = Vec::with_capacity(kraus.len());
    for k in kraus {
        let mut trial = state.to_vec();
        apply_1q_vec(&mut trial, q, &mat2_to_array(k));
        let norm: f64 = trial.iter().map(|z| z.norm_sqr()).sum();
        branch_norms.push(norm);
        branches.push(trial);
    }
    let total: f64 = branch_norms.iter().sum();
    debug_assert!((total - 1.0).abs() < 1e-6, "Kraus set not trace preserving");
    let u: f64 = rng.gen::<f64>() * total;
    let mut acc = 0.0;
    for (norm, branch) in branch_norms.iter().zip(branches) {
        acc += norm;
        if u <= acc || acc >= total {
            let inv = 1.0 / norm.sqrt().max(1e-150);
            for (s, b) in state.iter_mut().zip(&branch) {
                *s = *b * inv;
            }
            return;
        }
    }
}

/// Samples the depolarizing channel on arbitrary qubits: with probability
/// `lambda` the marked qubits are replaced by uniformly random Paulis.
fn depolarize_stochastic<R: Rng>(
    state: &mut [Complex64],
    qubits: &[usize],
    lambda: f64,
    rng: &mut R,
) {
    if rng.gen::<f64>() >= lambda {
        return;
    }
    use qaprox_linalg::matrix::{pauli_x, pauli_y, pauli_z};
    for &q in qubits {
        // uniform over {I, X, Y, Z}
        let which: u8 = rng.gen_range(0..4);
        let p = match which {
            0 => continue,
            1 => pauli_x(),
            2 => pauli_y(),
            _ => pauli_z(),
        };
        apply_1q_vec(state, q, &mat2_to_array(&p));
    }
}

/// One stochastic run of `circuit` under `model`'s gate noise; returns the
/// final statevector (readout error is applied at the distribution level by
/// the caller).
pub fn run_trajectory(circuit: &Circuit, model: &NoiseModel, seed: u64) -> Vec<Complex64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = circuit.num_qubits();
    let mut state = vec![Complex64::ZERO; 1 << n];
    state[0] = Complex64::ONE;
    let cal = model.calibration();

    for inst in circuit.iter() {
        apply_instruction(&mut state, inst);
        match *inst.qubits.as_slice() {
            [q] => {
                let lambda = (cal.qubits[q].sx_error * 2.0).clamp(0.0, 1.0);
                depolarize_stochastic(&mut state, &[q], lambda, &mut rng);
                if model.include_relaxation {
                    let qc = &cal.qubits[q];
                    let kraus =
                        crate::channels::thermal_relaxation(qc.sx_time_ns, qc.t1_us, qc.t2_us);
                    apply_kraus_1q_stochastic(&mut state, q, &kraus, &mut rng);
                }
            }
            [a, b] => {
                let err = cal
                    .edge(a, b)
                    .map(|e| e.cx_error)
                    .unwrap_or_else(|| cal.avg_cx_error());
                let lambda = (err * 4.0 / 3.0).clamp(0.0, 1.0);
                depolarize_stochastic(&mut state, &[a, b], lambda, &mut rng);
                if model.include_relaxation {
                    let t = cal.edge(a, b).map(|e| e.cx_time_ns).unwrap_or(400.0);
                    for &q in &[a, b] {
                        let qc = &cal.qubits[q];
                        let kraus = crate::channels::thermal_relaxation(t, qc.t1_us, qc.t2_us);
                        apply_kraus_1q_stochastic(&mut state, q, &kraus, &mut rng);
                    }
                }
            }
            _ => unreachable!(),
        }
    }
    state
}

fn apply_instruction(state: &mut [Complex64], inst: &Instruction) {
    match *inst.qubits.as_slice() {
        [q] => {
            apply_1q_vec(state, q, &mat2_to_array(&inst.gate.matrix()));
        }
        [a, b] => {
            let u = qaprox_linalg::kernels::mat4_to_array(&inst.gate.matrix());
            apply_2q_vec(state, a, b, &u);
        }
        _ => unreachable!(),
    }
}

/// Averages `trajectories` stochastic runs into an outcome distribution
/// (including the model's readout confusion when enabled).
pub fn trajectory_probabilities(
    circuit: &Circuit,
    model: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> Vec<f64> {
    let dim = circuit.dim();
    let partials: Vec<Vec<f64>> = par_map_range(trajectories, |t| {
        let state = run_trajectory(circuit, model, seed ^ (t as u64).wrapping_mul(0x9E3779B9));
        state.iter().map(|z| z.norm_sqr()).collect()
    });
    let mut probs = vec![0.0; dim];
    for p in &partials {
        for (acc, x) in probs.iter_mut().zip(p) {
            *acc += x / trajectories as f64;
        }
    }
    if model.include_readout {
        let errs: Vec<crate::readout::ReadoutError> = model
            .calibration()
            .qubits
            .iter()
            .map(|q| crate::readout::ReadoutError::symmetric(q.readout_error))
            .collect();
        crate::readout::apply_confusion(&mut probs, &errs);
    }
    probs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::amplitude_damping;
    use qaprox_device::devices::ourense;
    use qaprox_metrics_shim::total_variation;

    // a tiny local TVD to avoid a dev-dependency cycle
    mod qaprox_metrics_shim {
        pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
            0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
        }
    }

    #[test]
    fn noiseless_trajectory_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).rz(0.7, 2);
        let cal = ourense().induced(&[0, 1, 2]).with_uniform_cx_error(0.0);
        let mut model = NoiseModel::from_calibration(cal);
        model.include_relaxation = false;
        model.include_readout = false;
        // zero out 1q errors by overriding sx_error through a fresh cal is
        // not possible here, but ourense sx errors are ~3e-4; with a single
        // trajectory and no sampling noise sources triggered the state is
        // near-ideal. Use many trajectories and a loose bound.
        let probs = trajectory_probabilities(&c, &model, 200, 42);
        let ideal = crate::statevector::probabilities(&c);
        assert!(total_variation(&probs, &ideal) < 0.02);
    }

    #[test]
    fn trajectories_converge_to_density_matrix() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rx(0.4, 1).cx(0, 1);
        let cal = ourense().induced(&[0, 1]).with_uniform_cx_error(0.15);
        let model = NoiseModel::from_calibration(cal);
        let dm_probs = model.probabilities(&c);
        let tj_probs = trajectory_probabilities(&c, &model, 4000, 7);
        let tvd = total_variation(&dm_probs, &tj_probs);
        assert!(
            tvd < 0.03,
            "trajectory average should match density matrix: TVD {tvd}"
        );
    }

    #[test]
    fn stochastic_kraus_preserves_norm() {
        let mut state = vec![Complex64::ZERO; 4];
        state[3] = Complex64::ONE;
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            apply_kraus_1q_stochastic(&mut state, 0, &amplitude_damping(0.3), &mut rng);
            let norm: f64 = state.iter().map(|z| z.norm_sqr()).sum();
            assert!((norm - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn amplitude_damping_statistics() {
        // |1> under repeated stochastic damping: excited population decays
        let gamma: f64 = 0.2;
        let trials = 3000;
        let mut stays = 0usize;
        for t in 0..trials {
            let mut state = vec![Complex64::ZERO, Complex64::ONE];
            let mut rng = StdRng::seed_from_u64(t as u64);
            apply_kraus_1q_stochastic(&mut state, 0, &amplitude_damping(gamma), &mut rng);
            if state[1].norm_sqr() > 0.5 {
                stays += 1;
            }
        }
        let p_stay = stays as f64 / trials as f64;
        assert!((p_stay - (1.0 - gamma)).abs() < 0.03, "P(stay) = {p_stay}");
    }

    #[test]
    fn seeded_trajectories_are_deterministic() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let cal = ourense().induced(&[0, 1]);
        let model = NoiseModel::from_calibration(cal);
        let a = trajectory_probabilities(&c, &model, 50, 9);
        let b = trajectory_probabilities(&c, &model, 50, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn scales_beyond_density_matrix_comfort_zone() {
        // 10 qubits: statevector trajectories are fine where rho would be 4^10.
        let n = 10;
        let mut c = Circuit::new(n);
        for q in 0..n - 1 {
            c.h(q);
            c.cx(q, q + 1);
        }
        let cal = {
            // synthetic linear device of 10 qubits
            use qaprox_device::{Calibration, EdgeCal, QubitCal, Topology};
            use std::collections::BTreeMap;
            let topology = Topology::linear(n);
            let qubits = vec![
                QubitCal {
                    readout_error: 0.02,
                    t1_us: 80.0,
                    t2_us: 70.0,
                    sx_error: 3e-4,
                    sx_time_ns: 35.0,
                };
                n
            ];
            let mut edges = BTreeMap::new();
            for &e in topology.edges() {
                edges.insert(
                    e,
                    EdgeCal {
                        cx_error: 0.01,
                        cx_time_ns: 300.0,
                    },
                );
            }
            Calibration {
                machine: "line10".into(),
                topology,
                qubits,
                edges,
            }
        };
        let model = NoiseModel::from_calibration(cal);
        let probs = trajectory_probabilities(&c, &model, 20, 3);
        assert_eq!(probs.len(), 1 << n);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
