//! Monte-Carlo quantum-trajectory simulation.
//!
//! An independent implementation of noisy execution: instead of evolving a
//! `4^n`-entry density matrix, each *shot* (trajectory) evolves a `2^n`
//! statevector and samples one Kraus branch per noise event. Averaging shots
//! converges to the density-matrix result (a strong cross-validation target
//! for the test suite) and scales to circuit widths where the density matrix
//! does not — this is what unlocks the 27q/65q heavy-hex devices.
//!
//! The engine works in two stages:
//!
//! 1. **Compile** ([`FusedProgram::compile`]): the commutation engine's
//!    fusion plan ([`qaprox_verify::fusion_plan`]) groups gates into runs —
//!    same-support gates as before, plus *cross-support* absorption of 1q
//!    gates into the 2q run that last touched their qubit (legal because
//!    every gate in between acts on disjoint qubits, so the whole noisy
//!    block slides — channels on disjoint subsystems commute exactly). Each
//!    run fuses into a single 1q/2q matrix, and the noise events that sat
//!    between its gates are conjugated by the suffix unitary so channel
//!    semantics are preserved exactly — `U ∘ N = (U N U†) ∘ U` for any
//!    channel `N`. Depolarizing channels are invariant under same-support
//!    conjugation (the uniform-Pauli unraveling implements the full twirl),
//!    so they stay cheap λ-draws; relaxation Kraus sets are conjugated at
//!    compile time (small 2x2/4x4 matmuls).
//! 2. **Run** ([`FusedProgram::run_shot`]): the per-shot loop touches only
//!    precompiled fixed-size matrices, applied with the blocked kernels, and
//!    samples Kraus branches allocation-free: branch norms are computed with
//!    the read-only [`norm_sqr_1q`]/[`norm_sqr_2q`] kernels and only the
//!    selected branch is applied in place.
//!
//! Shot-level parallelism is **bit-for-bit thread-count invariant**: shots
//! are grouped into structural chunks (a function of circuit width only),
//! each shot draws from its own [`SplitMix64`] stream derived from
//! `(seed, shot index)` — never from thread identity — and chunk partials
//! are reduced sequentially in index order.
//!
//! [`SplitMix64`]: qaprox_linalg::random::SplitMix64

use crate::noise_model::NoiseModel;
use qaprox_circuit::Circuit;
use qaprox_linalg::kernels::{
    apply_1q_vec_blocked, apply_2q_vec_blocked, mat2_to_array, mat4_to_array, norm_sqr_1q,
    norm_sqr_2q,
};
use qaprox_linalg::matrix::Matrix;
use qaprox_linalg::parallel::par_map_range;
use qaprox_linalg::random::Rng;
use qaprox_linalg::random::SplitMix64 as StdRng;
use qaprox_linalg::Complex64;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Default shot count when the caller does not specify one. Chosen so the
/// sampling error (~`sqrt(dim / shots)` in TV distance) sits below the noise
/// effects being measured for the paper's 2-6 qubit studies, while a 27-qubit
/// smoke run stays tractable.
pub const DEFAULT_TRAJECTORY_SHOTS: usize = 512;

/// Structural shot-chunk size: a deterministic function of circuit width
/// only (never of the thread count), so the floating-point reduction tree is
/// identical for any worker pool. Wide states use one big chunk to bound the
/// number of `2^n`-sized accumulators alive at once: beyond 20 qubits each
/// partial is ≥ 8 MiB and memory, not parallelism, is the binding
/// constraint (a 27q chunk needs ~3 GiB of state + accumulator).
fn shot_chunk(num_qubits: usize) -> usize {
    if num_qubits <= 20 {
        16
    } else {
        1024
    }
}

/// Derives the independent RNG stream for one shot. Keyed by shot *index*
/// (never thread identity), so results do not depend on how shots are
/// scheduled across workers.
fn shot_rng(seed: u64, shot: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ shot.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

// ---------------------------------------------------------------------------
// small fixed-size matrix helpers (compile-time conjugation)
// ---------------------------------------------------------------------------

fn mul2(a: &[Complex64; 4], b: &[Complex64; 4]) -> [Complex64; 4] {
    let mut out = [Complex64::ZERO; 4];
    for r in 0..2 {
        for c in 0..2 {
            out[r * 2 + c] = a[r * 2] * b[c] + a[r * 2 + 1] * b[2 + c];
        }
    }
    out
}

fn mul4(a: &[Complex64; 16], b: &[Complex64; 16]) -> [Complex64; 16] {
    let mut out = [Complex64::ZERO; 16];
    for r in 0..4 {
        for c in 0..4 {
            let mut acc = Complex64::ZERO;
            for k in 0..4 {
                acc = acc.mul_add(a[r * 4 + k], b[k * 4 + c]);
            }
            out[r * 4 + c] = acc;
        }
    }
    out
}

fn dag2(a: &[Complex64; 4]) -> [Complex64; 4] {
    [a[0].conj(), a[2].conj(), a[1].conj(), a[3].conj()]
}

fn dag4(a: &[Complex64; 16]) -> [Complex64; 16] {
    let mut out = [Complex64::ZERO; 16];
    for r in 0..4 {
        for c in 0..4 {
            out[r * 4 + c] = a[c * 4 + r].conj();
        }
    }
    out
}

/// `V K V†` for 2x2 matrices.
fn conj2(v: &[Complex64; 4], k: &[Complex64; 4]) -> [Complex64; 4] {
    mul2(&mul2(v, k), &dag2(v))
}

/// `V K V†` for 4x4 matrices.
fn conj4(v: &[Complex64; 16], k: &[Complex64; 16]) -> [Complex64; 16] {
    mul4(&mul4(v, k), &dag4(v))
}

/// Reorients a 4x4 matrix written for qubit order `(a, b)` to order
/// `(b, a)`: swap the two bits of both indices (`p = [0, 2, 1, 3]`).
fn swap_qubit_order_4(u: &[Complex64; 16]) -> [Complex64; 16] {
    const P: [usize; 4] = [0, 2, 1, 3];
    let mut out = [Complex64::ZERO; 16];
    for i in 0..4 {
        for j in 0..4 {
            out[i * 4 + j] = u[P[i] * 4 + P[j]];
        }
    }
    out
}

/// Embeds a 2x2 operator on the *high* bit of a 4x4 (i.e. `K ⊗ I`).
fn embed_high(k: &[Complex64; 4]) -> [Complex64; 16] {
    let mut out = [Complex64::ZERO; 16];
    for i in 0..2 {
        for ip in 0..2 {
            for j in 0..2 {
                out[(2 * i + j) * 4 + (2 * ip + j)] = k[i * 2 + ip];
            }
        }
    }
    out
}

/// Embeds a 2x2 operator on the *low* bit of a 4x4 (i.e. `I ⊗ K`).
fn embed_low(k: &[Complex64; 4]) -> [Complex64; 16] {
    let mut out = [Complex64::ZERO; 16];
    for i in 0..2 {
        for j in 0..2 {
            for jp in 0..2 {
                out[(2 * i + j) * 4 + (2 * i + jp)] = k[j * 2 + jp];
            }
        }
    }
    out
}

fn kraus_arrays_1q(kraus: &[Matrix]) -> Vec<[Complex64; 4]> {
    kraus.iter().map(mat2_to_array).collect()
}

// ---------------------------------------------------------------------------
// compiled program
// ---------------------------------------------------------------------------

/// One precompiled noise event of the shot loop.
#[derive(Debug, Clone)]
enum NoiseEvent {
    /// Depolarizing on one qubit: with probability `lambda`, a uniformly
    /// random Pauli. Invariant under same-qubit unitary conjugation, so
    /// fusion leaves it untouched.
    Dep1 { q: usize, lambda: f64 },
    /// Two-qubit depolarizing: with probability `lambda`, an independent
    /// uniform Pauli on each qubit (uniform over the 16 two-qubit Paulis —
    /// the full twirl, hence invariant under same-pair conjugation).
    Dep2 { a: usize, b: usize, lambda: f64 },
    /// A general one-qubit Kraus channel (e.g. thermal relaxation), possibly
    /// conjugated by later same-qubit gates in its fusion run.
    Kraus1 { q: usize, ops: Vec<[Complex64; 4]> },
    /// A one-qubit Kraus channel promoted to the 4x4 support of a two-qubit
    /// fusion run by embedding + conjugation with the run's suffix unitary.
    Kraus2 {
        a: usize,
        b: usize,
        ops: Vec<[Complex64; 16]>,
    },
    /// A mixed-unitary channel on a two-qubit run: branch `k` fires with the
    /// *fixed* probability `branches[k].0` (state-independent, because every
    /// branch is unitary), and the leftover mass is an implicit identity.
    /// This is what a `Dep1` becomes when a genuine 2q gate conjugates it:
    /// the Pauli unraveling stays unitary, so sampling needs no branch-norm
    /// sweeps and no renormalization — with probability `1 - 3λ/4` the event
    /// costs one RNG draw, exactly like the `Dep1` it came from.
    MixedU2 {
        a: usize,
        b: usize,
        branches: Vec<(f64, [Complex64; 16])>,
    },
}

/// One fused gate plus the noise events it carries (in program order).
#[derive(Debug, Clone)]
enum FusedOp {
    One {
        q: usize,
        u: [Complex64; 4],
        events: Vec<NoiseEvent>,
    },
    Two {
        a: usize,
        b: usize,
        u: [Complex64; 16],
        events: Vec<NoiseEvent>,
    },
}

/// Conjugates an event inside a 1q fusion run by the newly appended gate.
fn conjugate_event_1q(ev: &mut NoiseEvent, g: &[Complex64; 4]) {
    match ev {
        NoiseEvent::Dep1 { .. } => {} // depolarizing is conjugation-invariant
        NoiseEvent::Kraus1 { ops, .. } => {
            for k in ops.iter_mut() {
                *k = conj2(g, k);
            }
        }
        _ => unreachable!("1q runs only carry 1q events"),
    }
}

/// Conjugates an event inside a 2q fusion run by the newly appended gate
/// (already oriented to the run's `(ra, rb)`). Relaxation events from
/// earlier instructions become 4x4 Kraus sets.
fn conjugate_event_2q(ev: &mut NoiseEvent, ra: usize, rb: usize, g: &[Complex64; 16]) {
    match ev {
        NoiseEvent::Dep2 { .. } => {} // depolarizing is conjugation-invariant
        NoiseEvent::Kraus2 { ops, .. } => {
            for k in ops.iter_mut() {
                *k = conj4(g, k);
            }
        }
        NoiseEvent::Kraus1 { q, ops } => {
            let on_high = *q == ra;
            debug_assert!(on_high || *q == rb);
            let promoted: Vec<[Complex64; 16]> = ops
                .iter()
                .map(|k| {
                    let e = if on_high { embed_high(k) } else { embed_low(k) };
                    conj4(g, &e)
                })
                .collect();
            *ev = NoiseEvent::Kraus2 {
                a: ra,
                b: rb,
                ops: promoted,
            };
        }
        NoiseEvent::Dep1 { q, lambda } => {
            // a 1q depolarizing from an absorbed run, conjugated by a
            // genuine 2q gate: no longer a twirl, but still mixed-unitary —
            // each Pauli branch conjugates to a unitary with the *same*
            // fixed probability, so promote to `MixedU2` (state-independent
            // sampling, implicit identity branch) instead of a Kraus set
            let p = *lambda / 4.0;
            let one = Complex64::ONE;
            let i = Complex64::new(0.0, 1.0);
            let z = Complex64::ZERO;
            let paulis: [[Complex64; 4]; 3] = [
                [z, one, one, z],  // X
                [z, -i, i, z],     // Y
                [one, z, z, -one], // Z
            ];
            let on_high = *q == ra;
            debug_assert!(on_high || *q == rb);
            let branches: Vec<(f64, [Complex64; 16])> = paulis
                .iter()
                .map(|k| {
                    let e = if on_high { embed_high(k) } else { embed_low(k) };
                    (p, conj4(g, &e))
                })
                .collect();
            *ev = NoiseEvent::MixedU2 {
                a: ra,
                b: rb,
                branches,
            };
        }
        NoiseEvent::MixedU2 { branches, .. } => {
            for (_, m) in branches.iter_mut() {
                *m = conj4(g, m);
            }
        }
    }
}

/// Conjugates an event inside a 2q fusion run by a newly absorbed *1q* gate
/// on qubit `q` (cross-support fusion). Exact and support-preserving:
/// depolarizing events are invariant (same-qubit or disjoint for `Dep1`,
/// any-unitary for the full-twirl `Dep2`), a same-qubit `Kraus1` conjugates
/// in 2x2, and only already-promoted `Kraus2` sets pay a 4x4 conjugation.
fn conjugate_event_by_1q(ev: &mut NoiseEvent, ra: usize, q: usize, g: &[Complex64; 4]) {
    match ev {
        NoiseEvent::Dep1 { .. } => {} // same-qubit or disjoint: invariant
        NoiseEvent::Dep2 { .. } => {} // full twirl: invariant under any unitary
        NoiseEvent::Kraus1 { q: kq, ops } => {
            if *kq == q {
                for k in ops.iter_mut() {
                    *k = conj2(g, k);
                }
            } // other qubit of the pair: disjoint, invariant
        }
        NoiseEvent::Kraus2 { ops, .. } => {
            let g4 = if q == ra { embed_high(g) } else { embed_low(g) };
            for k in ops.iter_mut() {
                *k = conj4(&g4, k);
            }
        }
        NoiseEvent::MixedU2 { branches, .. } => {
            let g4 = if q == ra { embed_high(g) } else { embed_low(g) };
            for (_, m) in branches.iter_mut() {
                *m = conj4(&g4, m);
            }
        }
    }
}

/// A circuit + noise model compiled for the trajectory shot loop: fused
/// same-support gates, precompiled (and suffix-conjugated) noise events.
/// Compile once per circuit; every shot then runs over fixed-size arrays
/// with no per-shot allocation beyond the reusable state buffer.
#[derive(Debug, Clone)]
pub struct FusedProgram {
    num_qubits: usize,
    ops: Vec<FusedOp>,
    include_readout: bool,
    readout: Vec<crate::readout::ReadoutError>,
}

impl FusedProgram {
    /// Compiles `circuit` under `model`'s gate noise, executing the
    /// commutation engine's fusion plan ([`qaprox_verify::fusion_plan`]):
    /// same-support runs fuse as before (swapped pair order handled by an
    /// index permutation), and *cross-support* steps absorb 1q gates into
    /// the 2q run that last touched their qubit — legal because every gate
    /// in between acts on disjoint qubits, so the whole noisy block slides.
    /// Noise events crossed by a later gate of their run are conjugated by
    /// it at compile time, so the compiled program implements exactly the
    /// same channel as the gate-by-gate interleaving.
    pub fn compile(circuit: &Circuit, model: &NoiseModel) -> Self {
        let cal = model.calibration();
        assert!(
            circuit.num_qubits() <= cal.topology.num_qubits(),
            "circuit width {} exceeds the device model ({} qubits)",
            circuit.num_qubits(),
            cal.topology.num_qubits()
        );
        let plan = qaprox_verify::fusion_plan(circuit.num_qubits(), circuit.instructions());
        // `runs` stays index-aligned with the plan's run numbering; absorbed
        // runs are take()n out and their slot left as a tombstone
        let mut runs: Vec<Option<FusedOp>> = Vec::new();
        for (inst, step) in circuit.iter().zip(&plan) {
            match *inst.qubits.as_slice() {
                [q] => {
                    let g = mat2_to_array(&inst.gate.matrix());
                    let mut events = Vec::new();
                    let lambda = model.lambda_1q(q);
                    if lambda > 0.0 {
                        events.push(NoiseEvent::Dep1 { q, lambda });
                    }
                    if model.include_relaxation {
                        let qc = &cal.qubits[q];
                        events.push(NoiseEvent::Kraus1 {
                            q,
                            ops: kraus_arrays_1q(&crate::channels::thermal_relaxation(
                                qc.sx_time_ns,
                                qc.t1_us,
                                qc.t2_us,
                            )),
                        });
                    }
                    match step {
                        qaprox_verify::FusionStep::Join(r) => {
                            match runs[*r].as_mut().expect("joined run is still open") {
                                FusedOp::One {
                                    u,
                                    events: run_events,
                                    ..
                                } => {
                                    for ev in run_events.iter_mut() {
                                        conjugate_event_1q(ev, &g);
                                    }
                                    *u = mul2(&g, u);
                                    run_events.extend(events);
                                }
                                FusedOp::Two {
                                    a: ra,
                                    b: rb,
                                    u,
                                    events: run_events,
                                } => {
                                    // cross-support absorption into a 2q run
                                    let (ra, rb) = (*ra, *rb);
                                    debug_assert!(q == ra || q == rb);
                                    for ev in run_events.iter_mut() {
                                        conjugate_event_by_1q(ev, ra, q, &g);
                                    }
                                    let g4 = if q == ra {
                                        embed_high(&g)
                                    } else {
                                        embed_low(&g)
                                    };
                                    *u = mul4(&g4, u);
                                    run_events.extend(events);
                                }
                            }
                        }
                        _ => runs.push(Some(FusedOp::One { q, u: g, events })),
                    }
                }
                [a, b] => {
                    let mut g = mat4_to_array(&inst.gate.matrix());
                    let mut events = Vec::new();
                    let lambda = model.lambda_2q(a, b);
                    if lambda > 0.0 {
                        events.push(NoiseEvent::Dep2 { a, b, lambda });
                    }
                    if model.include_relaxation {
                        let t = model.edge_cal(a, b).cx_time_ns;
                        for &q in &[a, b] {
                            let qc = &cal.qubits[q];
                            events.push(NoiseEvent::Kraus1 {
                                q,
                                ops: kraus_arrays_1q(&crate::channels::thermal_relaxation(
                                    t, qc.t1_us, qc.t2_us,
                                )),
                            });
                        }
                    }
                    match step {
                        qaprox_verify::FusionStep::Join(r) => {
                            let Some(FusedOp::Two {
                                a: ra,
                                b: rb,
                                u,
                                events: run_events,
                            }) = runs[*r].as_mut()
                            else {
                                unreachable!("a 2q gate only joins an open 2q run");
                            };
                            if *ra != a {
                                g = swap_qubit_order_4(&g);
                            }
                            let (ra, rb) = (*ra, *rb);
                            for ev in run_events.iter_mut() {
                                conjugate_event_2q(ev, ra, rb, &g);
                            }
                            *u = mul4(&g, u);
                            run_events.extend(events);
                        }
                        qaprox_verify::FusionStep::StartAbsorbing(absorbed) => {
                            // fold the still-open 1q runs (last touchers of
                            // `a` / `b`) into the new 2q run: the folded
                            // channel is  E_g ∘ (G E G†) ∘ (G · embed(U))
                            let mut u = g;
                            let mut run_events = Vec::new();
                            for &ri in absorbed {
                                let Some(FusedOp::One {
                                    q,
                                    u: one_u,
                                    events: one_events,
                                }) = runs[ri].take()
                                else {
                                    unreachable!("absorbed run is an open 1q run");
                                };
                                debug_assert!(q == a || q == b);
                                let e4 = if q == a {
                                    embed_high(&one_u)
                                } else {
                                    embed_low(&one_u)
                                };
                                u = mul4(&u, &e4);
                                for mut ev in one_events {
                                    conjugate_event_2q(&mut ev, a, b, &g);
                                    run_events.push(ev);
                                }
                            }
                            run_events.extend(events);
                            runs.push(Some(FusedOp::Two {
                                a,
                                b,
                                u,
                                events: run_events,
                            }));
                        }
                        qaprox_verify::FusionStep::Start => {
                            runs.push(Some(FusedOp::Two { a, b, u: g, events }));
                        }
                    }
                }
                _ => unreachable!("IR only holds 1- and 2-qubit gates"),
            }
        }
        let ops: Vec<FusedOp> = runs.into_iter().flatten().collect();
        FusedProgram {
            num_qubits: circuit.num_qubits(),
            ops,
            include_readout: model.include_readout,
            readout: cal
                .qubits
                .iter()
                .take(circuit.num_qubits())
                .map(|q| crate::readout::ReadoutError::symmetric(q.readout_error))
                .collect(),
        }
    }

    /// Number of fused operations (≤ the source circuit's gate count).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the program holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Circuit width in qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Runs one trajectory in place: `state` is reset to the ground state,
    /// evolved through the fused program, sampling one branch per noise
    /// event from `rng`. `state.len()` must be `2^num_qubits`.
    pub fn run_shot<R: Rng>(&self, state: &mut [Complex64], rng: &mut R) {
        debug_assert_eq!(state.len(), 1usize << self.num_qubits);
        state.fill(Complex64::ZERO);
        state[0] = Complex64::ONE;
        self.run_ops(state, rng);
    }

    /// The ops-only inner loop of [`run_shot`](Self::run_shot): assumes
    /// `state` is already zeroed with `state[0] = 1`. Split out so
    /// [`TrajectoryBatch`] can share **one** arena-wide reset across all
    /// candidates of a shot instead of one fill per candidate.
    fn run_ops<R: Rng>(&self, state: &mut [Complex64], rng: &mut R) {
        for op in &self.ops {
            match op {
                FusedOp::One { q, u, events } => {
                    apply_1q_vec_blocked(state, *q, u);
                    for ev in events {
                        apply_event(state, ev, rng);
                    }
                }
                FusedOp::Two { a, b, u, events } => {
                    apply_2q_vec_blocked(state, *a, *b, u);
                    for ev in events {
                        apply_event(state, ev, rng);
                    }
                }
            }
        }
    }

    /// Applies this program's readout confusion to a distribution (when the
    /// model it was compiled from enables it).
    fn fold_readout(&self, probs: &mut [f64]) {
        if self.include_readout {
            crate::readout::apply_confusion(probs, &self.readout);
        }
    }

    /// Averages `shots` trajectories into an outcome distribution (before
    /// readout confusion). Bit-for-bit thread-count invariant: shots are
    /// partitioned into structural chunks keyed by shot index, each chunk
    /// reuses one state buffer and one accumulator, and chunk partials are
    /// reduced sequentially in index order.
    pub fn shot_average(&self, shots: usize, seed: u64) -> Vec<f64> {
        self.shot_average_health(shots, seed, None).0
    }

    /// [`shot_average`](Self::shot_average) plus the per-shot health
    /// sentinels and an optional cooperative cancellation token.
    ///
    /// Every finished shot is vetted before it reaches the accumulator: a
    /// non-finite amplitude ([`HealthReport::nan_events`]) or a state norm
    /// drifted beyond [`NORM_DRIFT_TOL`] ([`HealthReport::norm_drift_events`])
    /// aborts the shot, so corrupt trajectories never contaminate the
    /// averaged row. Clean rows are averaged over the clean-shot count —
    /// when every shot is clean that equals `shots` and the result is
    /// bit-identical to [`shot_average`](Self::shot_average).
    ///
    /// `cancel` is checked once per shot: once it reads `true` the remaining
    /// shots are skipped, [`HealthReport::cancelled`] is set, and the
    /// (partial) row should be discarded by the caller.
    ///
    /// Failpoint `traj.shot` evaluates once per shot (sleep actions emulate
    /// a stalled kernel; the serve watchdog quarantines jobs stuck here).
    pub fn shot_average_health(
        &self,
        shots: usize,
        seed: u64,
        cancel: Option<&AtomicBool>,
    ) -> (Vec<f64>, HealthReport) {
        let dim = 1usize << self.num_qubits;
        if shots == 0 {
            return (vec![0.0; dim], HealthReport::default());
        }
        let chunk = shot_chunk(self.num_qubits);
        let chunks = shots.div_ceil(chunk);
        let partials: Vec<(Vec<f64>, HealthReport)> = par_map_range(chunks, |c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(shots);
            let mut state = vec![Complex64::ZERO; dim];
            let mut acc = vec![0.0f64; dim];
            let mut health = HealthReport::default();
            for shot in lo..hi {
                if cancel.is_some_and(|f| f.load(Ordering::Relaxed)) {
                    health.cancelled = true;
                    break;
                }
                qaprox_fault::fail_point!("traj.shot");
                let mut rng = shot_rng(seed, shot as u64);
                self.run_shot(&mut state, &mut rng);
                inject_shot_corruption(&mut state);
                match shot_verdict(&state) {
                    ShotVerdict::Clean => {
                        health.clean_shots += 1;
                        for (a, z) in acc.iter_mut().zip(state.iter()) {
                            *a += z.norm_sqr();
                        }
                    }
                    ShotVerdict::Nan => {
                        health.aborted_shots += 1;
                        health.nan_events += 1;
                    }
                    ShotVerdict::Drift => {
                        health.aborted_shots += 1;
                        health.norm_drift_events += 1;
                    }
                }
            }
            (acc, health)
        });
        let mut probs = vec![0.0f64; dim];
        let mut health = HealthReport::default();
        for (p, h) in &partials {
            for (dst, &x) in probs.iter_mut().zip(p) {
                *dst += x;
            }
            health.merge(h);
        }
        if health.clean_shots > 0 {
            let inv = 1.0 / health.clean_shots as f64;
            for x in probs.iter_mut() {
                *x *= inv;
            }
        }
        (probs, health)
    }

    /// [`FusedProgram::shot_average`] plus the model's readout confusion
    /// (when the model it was compiled from enables it).
    pub fn probabilities(&self, shots: usize, seed: u64) -> Vec<f64> {
        let mut probs = self.shot_average(shots, seed);
        self.fold_readout(&mut probs);
        probs
    }
}

// ---------------------------------------------------------------------------
// numerical health sentinels
// ---------------------------------------------------------------------------

/// Norm-drift tolerance for the per-shot health sentinel. Every operation a
/// trajectory applies is norm-preserving (gates and mixed-unitary branches
/// are unitary, Kraus selections renormalize), so a finished shot's total
/// probability mass is `1 ± rounding` — drifting past this tolerance means
/// the state is numerically corrupt, not merely inexact.
pub const NORM_DRIFT_TOL: f64 = 1e-6;

/// Per-candidate numerical health from one shot-averaged run.
///
/// Recorded by [`FusedProgram::shot_average_health`] and
/// [`TrajectoryBatch::shot_average_health`]: shots whose final state carries
/// a NaN/Inf amplitude or a norm drifted beyond [`NORM_DRIFT_TOL`] are
/// **aborted** — excluded from the averaged row — instead of contaminating
/// it, and the abort is counted here. A report with `aborted_shots > 0` (or
/// `cancelled`) marks the row as degraded: it averages fewer trajectories
/// than requested and callers should surface that rather than treat the row
/// as a full-budget estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Shots that finished cleanly and entered the average.
    pub clean_shots: u64,
    /// Shots aborted by a sentinel (excluded from the average).
    pub aborted_shots: u64,
    /// Aborts caused by a non-finite amplitude.
    pub nan_events: u64,
    /// Aborts caused by norm drift beyond [`NORM_DRIFT_TOL`].
    pub norm_drift_events: u64,
    /// True when a cooperative cancellation token stopped the run early;
    /// the partial row should be discarded.
    pub cancelled: bool,
}

impl HealthReport {
    /// True when every requested shot ran and entered the average.
    pub fn is_healthy(&self) -> bool {
        self.aborted_shots == 0 && !self.cancelled
    }

    /// Folds another report (e.g. a parallel chunk's partial) into this one.
    pub fn merge(&mut self, other: &HealthReport) {
        self.clean_shots += other.clean_shots;
        self.aborted_shots += other.aborted_shots;
        self.nan_events += other.nan_events;
        self.norm_drift_events += other.norm_drift_events;
        self.cancelled |= other.cancelled;
    }
}

/// What the sentinels concluded about one finished shot.
enum ShotVerdict {
    Clean,
    Nan,
    Drift,
}

/// Vets a finished trajectory: total probability mass must be finite and
/// within [`NORM_DRIFT_TOL`] of 1.
fn shot_verdict(state: &[Complex64]) -> ShotVerdict {
    let mass: f64 = state.iter().map(|z| z.norm_sqr()).sum();
    if !mass.is_finite() {
        ShotVerdict::Nan
    } else if (mass - 1.0).abs() > NORM_DRIFT_TOL {
        ShotVerdict::Drift
    } else {
        ShotVerdict::Clean
    }
}

/// Failpoint `traj.corrupt`: deterministically corrupts the state of the
/// shot that fires it so the health sentinels can be exercised end to end —
/// `torn` plants a NaN amplitude, `error` doubles every amplitude (norm
/// drift). Compiled out entirely without the `failpoints` feature.
#[cfg(feature = "failpoints")]
fn inject_shot_corruption(state: &mut [Complex64]) {
    match qaprox_fault::eval("traj.corrupt") {
        Some(qaprox_fault::FaultAction::Torn) => state[0] = Complex64::new(f64::NAN, 0.0),
        Some(qaprox_fault::FaultAction::Error) => {
            for z in state.iter_mut() {
                *z = Complex64::new(z.re * 2.0, z.im * 2.0);
            }
        }
        _ => {}
    }
}

#[cfg(not(feature = "failpoints"))]
#[inline(always)]
fn inject_shot_corruption(_state: &mut [Complex64]) {}

/// Applies one precompiled noise event, consuming draws from `rng`.
fn apply_event<R: Rng>(state: &mut [Complex64], ev: &NoiseEvent, rng: &mut R) {
    match ev {
        NoiseEvent::Dep1 { q, lambda } => {
            if rng.gen::<f64>() < *lambda {
                apply_random_pauli(state, *q, rng);
            }
        }
        NoiseEvent::Dep2 { a, b, lambda } => {
            if rng.gen::<f64>() < *lambda {
                apply_random_pauli(state, *a, rng);
                apply_random_pauli(state, *b, rng);
            }
        }
        NoiseEvent::Kraus1 { q, ops } => select_and_apply_1q(state, *q, ops, rng),
        NoiseEvent::Kraus2 { a, b, ops } => select_and_apply_2q(state, *a, *b, ops, rng),
        NoiseEvent::MixedU2 { a, b, branches } => {
            // every branch is unitary, so probabilities are fixed and the
            // norm is preserved: one draw, no sweeps unless a branch fires
            // (the identity branch owns the tail of the unit interval)
            let u: f64 = rng.gen();
            let mut acc = 0.0f64;
            for (w, m) in branches {
                acc += w;
                if u < acc {
                    apply_2q_vec_blocked(state, *a, *b, m);
                    return;
                }
            }
        }
    }
}

/// Applies a uniformly random Pauli from `{I, X, Y, Z}` to qubit `q`,
/// in place and without matrix dispatch.
fn apply_random_pauli<R: Rng>(state: &mut [Complex64], q: usize, rng: &mut R) {
    let which: u8 = rng.gen_range(0..4);
    if which == 0 {
        return;
    }
    let mask = 1usize << q;
    let dim = state.len();
    match which {
        1 => {
            // X: swap the pair
            for i in 0..dim {
                if i & mask == 0 {
                    state.swap(i, i | mask);
                }
            }
        }
        2 => {
            // Y: swap with ±i phases
            for i in 0..dim {
                if i & mask == 0 {
                    let a = state[i];
                    let b = state[i | mask];
                    state[i] = Complex64::new(b.im, -b.re); // -i * b
                    state[i | mask] = Complex64::new(-a.im, a.re); // i * a
                }
            }
        }
        _ => {
            // Z: negate the |1> half
            for (i, z) in state.iter_mut().enumerate() {
                if i & mask != 0 {
                    *z = -*z;
                }
            }
        }
    }
}

/// Stochastic Kraus selection, allocation-free: branch norms are computed
/// with the read-only kernel, the selected branch is applied in place and
/// renormalized. Relies on trace preservation (`Σ ||K_i ψ||² = 1`); the last
/// operator is a guaranteed fallback against rounding.
fn select_and_apply_1q<R: Rng>(
    state: &mut [Complex64],
    q: usize,
    ops: &[[Complex64; 4]],
    rng: &mut R,
) {
    let u: f64 = rng.gen();
    let mut acc = 0.0f64;
    for (i, k) in ops.iter().enumerate() {
        let norm = norm_sqr_1q(state, q, k);
        acc += norm;
        if u < acc || i + 1 == ops.len() {
            apply_1q_vec_blocked(state, q, k);
            renormalize(state, norm);
            return;
        }
    }
}

/// Two-qubit analogue of [`select_and_apply_1q`].
fn select_and_apply_2q<R: Rng>(
    state: &mut [Complex64],
    a: usize,
    b: usize,
    ops: &[[Complex64; 16]],
    rng: &mut R,
) {
    let u: f64 = rng.gen();
    let mut acc = 0.0f64;
    for (i, k) in ops.iter().enumerate() {
        let norm = norm_sqr_2q(state, a, b, k);
        acc += norm;
        if u < acc || i + 1 == ops.len() {
            apply_2q_vec_blocked(state, a, b, k);
            renormalize(state, norm);
            return;
        }
    }
}

fn renormalize(state: &mut [Complex64], norm_sqr: f64) {
    let inv = 1.0 / norm_sqr.sqrt().max(1e-150);
    // dispatched elementwise sweep — this runs once per noise event, so at
    // wide widths it is as hot as the gate kernels themselves
    qaprox_linalg::kernels::scale(state, inv);
}

/// Applies one Kraus channel stochastically to a statevector: branch `i` is
/// chosen with probability `||K_i psi||^2`, then the state is renormalized.
/// Allocation-free: norms come from the read-only kernel and only the
/// selected branch is applied.
pub fn apply_kraus_1q_stochastic<R: Rng>(
    state: &mut [Complex64],
    q: usize,
    kraus: &[Matrix],
    rng: &mut R,
) {
    debug_assert!(!kraus.is_empty());
    let u: f64 = rng.gen();
    let mut acc = 0.0f64;
    for (i, k) in kraus.iter().enumerate() {
        let arr = mat2_to_array(k);
        let norm = norm_sqr_1q(state, q, &arr);
        acc += norm;
        if u < acc || i + 1 == kraus.len() {
            apply_1q_vec_blocked(state, q, &arr);
            renormalize(state, norm);
            return;
        }
    }
}

/// One stochastic run of `circuit` under `model`'s gate noise; returns the
/// final statevector (readout error is applied at the distribution level by
/// the caller). Compiles a fresh [`FusedProgram`] — callers running many
/// shots should compile once and use [`FusedProgram::run_shot`].
pub fn run_trajectory(circuit: &Circuit, model: &NoiseModel, seed: u64) -> Vec<Complex64> {
    let program = FusedProgram::compile(circuit, model);
    let mut state = vec![Complex64::ZERO; circuit.dim()];
    let mut rng = StdRng::seed_from_u64(seed);
    program.run_shot(&mut state, &mut rng);
    state
}

/// Averages `trajectories` stochastic runs into an outcome distribution
/// (including the model's readout confusion when enabled).
pub fn trajectory_probabilities(
    circuit: &Circuit,
    model: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> Vec<f64> {
    FusedProgram::compile(circuit, model).probabilities(trajectories, seed)
}

/// The trajectory execution backend: a [`NoiseModel`] plus a shot budget.
///
/// Mirrors [`HardwareBackend`](crate::hardware::HardwareBackend)'s calling
/// convention — `probabilities(circuit, job_seed)` — so the executor can
/// treat it as one more place circuits run. Unlike the density-matrix path
/// it scales as `2^n` per shot, making the 27q/65q heavy-hex devices
/// reachable.
#[derive(Debug, Clone)]
pub struct TrajectoryBackend {
    model: NoiseModel,
    shots: usize,
    seed: u64,
    cancel: Option<Arc<AtomicBool>>,
}

impl TrajectoryBackend {
    /// Wraps a noise model with [`DEFAULT_TRAJECTORY_SHOTS`].
    pub fn new(model: NoiseModel) -> Self {
        TrajectoryBackend {
            model,
            shots: DEFAULT_TRAJECTORY_SHOTS,
            seed: 0x7261_6A00,
            cancel: None,
        }
    }

    /// Wraps with an explicit shot budget (minimum 1).
    pub fn with_shots(model: NoiseModel, shots: usize) -> Self {
        TrajectoryBackend {
            model,
            shots: shots.max(1),
            seed: 0x7261_6A00,
            cancel: None,
        }
    }

    /// Attaches a cooperative cancellation token, checked once per shot:
    /// when it reads `true` the run stops early, the partial rows carry
    /// [`HealthReport::cancelled`], and the caller should discard them.
    /// This is how an expired serve job stops a wide trajectory run mid-way
    /// instead of completing uselessly.
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    fn cancel_flag(&self) -> Option<&AtomicBool> {
        self.cancel.as_deref()
    }

    /// The underlying noise model.
    pub fn model(&self) -> &NoiseModel {
        &self.model
    }

    /// Shots per execution.
    pub fn shots(&self) -> usize {
        self.shots
    }

    /// Compiles `circuit` once for repeated shot runs against this backend's
    /// model.
    pub fn compile(&self, circuit: &Circuit) -> FusedProgram {
        FusedProgram::compile(circuit, &self.model)
    }

    /// One full "job": `shots` trajectories, averaged, plus readout
    /// confusion. `job_seed` distinguishes repeated submissions.
    pub fn probabilities(&self, circuit: &Circuit, job_seed: u64) -> Vec<f64> {
        self.probabilities_health(circuit, job_seed).0
    }

    /// [`probabilities`](Self::probabilities) plus the run's
    /// [`HealthReport`] (aborted-shot and cancellation accounting). The row
    /// is bit-identical to [`probabilities`](Self::probabilities) whenever
    /// the report is healthy.
    pub fn probabilities_health(
        &self,
        circuit: &Circuit,
        job_seed: u64,
    ) -> (Vec<f64>, HealthReport) {
        let program = self.compile(circuit);
        let (mut probs, health) =
            program.shot_average_health(self.shots, self.seed ^ job_seed, self.cancel_flag());
        program.fold_readout(&mut probs);
        (probs, health)
    }

    /// Finite measurement-shot counts drawn from the trajectory-averaged
    /// distribution, via the same shared sampler the statevector path uses
    /// ([`crate::sampler`]).
    pub fn sample_shots(&self, circuit: &Circuit, job_seed: u64) -> Vec<u64> {
        crate::sampler::sample_counts(
            &self.probabilities(circuit, job_seed),
            self.shots,
            self.seed ^ job_seed,
        )
    }

    /// Evaluates `circuits` as one shot-batched pass ([`TrajectoryBatch`]),
    /// seeding candidate `i` with `self.seed ^ i` — exactly the per-index
    /// job seeds the executor's batch entry points use, so the rows are
    /// bit-identical to N independent `probabilities(c, i as u64)` calls.
    ///
    /// Errors on mixed circuit widths (callers degrade to per-candidate
    /// evaluation). Failpoint `traj.batch`: injects a mid-batch failure so
    /// the executor's degradation path can be chaos-tested.
    pub fn probabilities_batch(&self, circuits: &[Circuit]) -> Result<Vec<Vec<f64>>, String> {
        Ok(self.probabilities_batch_health(circuits)?.0)
    }

    /// [`probabilities_batch`](Self::probabilities_batch) plus one
    /// [`HealthReport`] per candidate row.
    pub fn probabilities_batch_health(
        &self,
        circuits: &[Circuit],
    ) -> Result<(Vec<Vec<f64>>, Vec<HealthReport>), String> {
        let seeds: Vec<u64> = (0..circuits.len()).map(|i| self.seed ^ i as u64).collect();
        self.batch_with_seeds(circuits.iter(), seeds)
    }

    /// [`probabilities_batch`](Self::probabilities_batch) with one shared
    /// `job_seed` for every candidate — the seeding a solo
    /// `probabilities(c, job_seed)` call uses. For callers batching
    /// independent jobs that each carry the same user-supplied seed
    /// (`analyze --check-shots` across input files): each row is
    /// bit-identical to the solo call it replaces.
    pub fn probabilities_batch_seeded(
        &self,
        circuits: &[&Circuit],
        job_seed: u64,
    ) -> Result<Vec<Vec<f64>>, String> {
        Ok(self
            .probabilities_batch_seeded_health(circuits, job_seed)?
            .0)
    }

    /// [`probabilities_batch_seeded`](Self::probabilities_batch_seeded) plus
    /// one [`HealthReport`] per candidate row — what `analyze --check-shots`
    /// uses to report per-file health instead of dropping failed candidates.
    pub fn probabilities_batch_seeded_health(
        &self,
        circuits: &[&Circuit],
        job_seed: u64,
    ) -> Result<(Vec<Vec<f64>>, Vec<HealthReport>), String> {
        let seeds = vec![self.seed ^ job_seed; circuits.len()];
        self.batch_with_seeds(circuits.iter().copied(), seeds)
    }

    fn batch_with_seeds<'c>(
        &self,
        circuits: impl Iterator<Item = &'c Circuit>,
        seeds: Vec<u64>,
    ) -> Result<(Vec<Vec<f64>>, Vec<HealthReport>), String> {
        qaprox_fault::fail_point!("traj.batch", |_action| {
            Err(qaprox_fault::injected_error("traj.batch"))
        });
        let programs: Vec<FusedProgram> = circuits.map(|c| self.compile(c)).collect();
        if programs.is_empty() {
            return Ok((Vec::new(), Vec::new()));
        }
        let batch = TrajectoryBatch::new(programs.iter().collect(), seeds)?;
        let (mut rows, healths, _stats) = batch.shot_average_health(self.shots, self.cancel_flag());
        for (row, prog) in rows.iter_mut().zip(&programs) {
            prog.fold_readout(row);
        }
        Ok((rows, healths))
    }
}

// ---------------------------------------------------------------------------
// shot-batched multi-candidate evaluation
// ---------------------------------------------------------------------------

/// Default cap (bytes) on one batch group's state arena. Candidates beyond
/// the cap are evaluated in successive groups, so a 27q batch (2 GiB per
/// state) degenerates gracefully to per-candidate groups while the paper's
/// 3-16q candidate populations share one cache-friendly arena. Override
/// with `QAPROX_BATCH_BYTES`.
const DEFAULT_BATCH_ARENA_BYTES: usize = 256 << 20;

static BATCH_RESETS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Process-wide count of batch arena resets (one per shot per candidate
/// group). Monotone over the process lifetime; exists so tests in other
/// crates (the serve wide path) can assert the "one amortized reset per
/// shot per batch" contract on counter deltas.
pub fn batch_reset_total() -> u64 {
    BATCH_RESETS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Counters from one [`TrajectoryBatch::shot_average_with_stats`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Arena resets performed: `groups * shots`. With a single group this
    /// is exactly one reset per shot, however many candidates share it.
    pub resets: u64,
    /// Candidate groups the arena was split into (1 unless the memory cap
    /// forced splitting).
    pub groups: usize,
}

/// Evaluates N candidate [`FusedProgram`]s in one pass per shot.
///
/// Instead of running candidates one after another (one full shot loop and
/// one state reset per candidate per shot index), the batch walks the shot
/// range once: per shot, the whole candidate arena is zeroed with a single
/// contiguous fill — the *shared reset* — and every candidate's trajectory
/// then runs against its own slice of the interleaved arena.
///
/// Results are **bit-for-bit identical** to N independent
/// [`FusedProgram::shot_average`] runs at any thread count, because each
/// (candidate, shot) pair draws from the same [`SplitMix64`] stream it
/// would solo (`shot_rng(seed_g, shot)`), per-candidate accumulation stays
/// in shot order, and chunk partials reduce in index order.
///
/// All candidates must share one circuit width; mixed widths are an error
/// (the executor degrades to per-candidate evaluation for those).
///
/// [`SplitMix64`]: qaprox_linalg::random::SplitMix64
#[derive(Debug)]
pub struct TrajectoryBatch<'a> {
    programs: Vec<&'a FusedProgram>,
    seeds: Vec<u64>,
    num_qubits: usize,
    budget_override: Option<usize>,
}

impl<'a> TrajectoryBatch<'a> {
    /// Builds a batch over `programs` with one RNG seed per candidate.
    /// Errors on an empty batch, a seed-count mismatch, or mixed widths.
    pub fn new(programs: Vec<&'a FusedProgram>, seeds: Vec<u64>) -> Result<Self, String> {
        if programs.is_empty() {
            return Err("trajectory batch needs at least one candidate".into());
        }
        if programs.len() != seeds.len() {
            return Err(format!(
                "trajectory batch got {} candidates but {} seeds",
                programs.len(),
                seeds.len()
            ));
        }
        let num_qubits = programs[0].num_qubits();
        if let Some(p) = programs.iter().find(|p| p.num_qubits() != num_qubits) {
            return Err(format!(
                "trajectory batch requires uniform width: got {} and {} qubits",
                num_qubits,
                p.num_qubits()
            ));
        }
        Ok(TrajectoryBatch {
            programs,
            seeds,
            num_qubits,
            budget_override: None,
        })
    }

    /// Caps the arena at `bytes` instead of `QAPROX_BATCH_BYTES` / the
    /// default — forces deterministic group splitting (grouping changes
    /// memory layout only, never results).
    pub fn with_arena_budget(mut self, bytes: usize) -> Self {
        self.budget_override = Some(bytes);
        self
    }

    /// Candidates per arena group under the memory cap (minimum 1).
    fn group_capacity(&self) -> usize {
        let state_bytes = (1usize << self.num_qubits) * std::mem::size_of::<Complex64>();
        let budget = self.budget_override.unwrap_or_else(|| {
            std::env::var("QAPROX_BATCH_BYTES")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(DEFAULT_BATCH_ARENA_BYTES)
        });
        (budget / state_bytes.max(1)).clamp(1, self.programs.len())
    }

    /// Averaged distributions (before readout confusion), one row per
    /// candidate in input order, plus the reset/group counters. See the
    /// type docs for the bit-identity contract.
    pub fn shot_average_with_stats(&self, shots: usize) -> (Vec<Vec<f64>>, BatchStats) {
        let (rows, _healths, stats) = self.shot_average_health(shots, None);
        (rows, stats)
    }

    /// [`shot_average_with_stats`](Self::shot_average_with_stats) plus one
    /// [`HealthReport`] per candidate and an optional cooperative
    /// cancellation token, mirroring
    /// [`FusedProgram::shot_average_health`]'s contract: corrupt shots
    /// (NaN/Inf amplitudes, norm drift beyond [`NORM_DRIFT_TOL`]) are
    /// aborted per candidate and excluded from that candidate's average;
    /// rows stay bit-identical to the solo path whenever their report is
    /// healthy. Failpoint `traj.shot` evaluates once per shot per group.
    pub fn shot_average_health(
        &self,
        shots: usize,
        cancel: Option<&AtomicBool>,
    ) -> (Vec<Vec<f64>>, Vec<HealthReport>, BatchStats) {
        let dim = 1usize << self.num_qubits;
        let n_cand = self.programs.len();
        if shots == 0 {
            return (
                vec![vec![0.0; dim]; n_cand],
                vec![HealthReport::default(); n_cand],
                BatchStats {
                    resets: 0,
                    groups: 0,
                },
            );
        }
        let cap = self.group_capacity();
        let chunk = shot_chunk(self.num_qubits);
        let chunks = shots.div_ceil(chunk);
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n_cand);
        let mut reports: Vec<HealthReport> = Vec::with_capacity(n_cand);
        let mut groups = 0usize;
        let mut resets = 0u64;
        let mut g0 = 0usize;
        while g0 < n_cand {
            let g1 = (g0 + cap).min(n_cand);
            let group = &self.programs[g0..g1];
            let group_seeds = &self.seeds[g0..g1];
            let glen = group.len();
            // Per chunk: one interleaved arena, one accumulator per
            // candidate. Each shot zeroes the arena once (the shared
            // reset), then every candidate runs from its own slice.
            let partials: Vec<(Vec<Vec<f64>>, Vec<HealthReport>)> = par_map_range(chunks, |c| {
                let lo = c * chunk;
                let hi = (lo + chunk).min(shots);
                let mut arena = vec![Complex64::ZERO; glen * dim];
                let mut accs = vec![vec![0.0f64; dim]; glen];
                let mut healths = vec![HealthReport::default(); glen];
                for shot in lo..hi {
                    if cancel.is_some_and(|f| f.load(Ordering::Relaxed)) {
                        for h in healths.iter_mut() {
                            h.cancelled = true;
                        }
                        break;
                    }
                    qaprox_fault::fail_point!("traj.shot");
                    arena.fill(Complex64::ZERO);
                    for (g, prog) in group.iter().enumerate() {
                        let state = &mut arena[g * dim..(g + 1) * dim];
                        state[0] = Complex64::ONE;
                        let mut rng = shot_rng(group_seeds[g], shot as u64);
                        prog.run_ops(state, &mut rng);
                        inject_shot_corruption(state);
                        match shot_verdict(state) {
                            ShotVerdict::Clean => {
                                healths[g].clean_shots += 1;
                                for (a, z) in accs[g].iter_mut().zip(state.iter()) {
                                    *a += z.norm_sqr();
                                }
                            }
                            ShotVerdict::Nan => {
                                healths[g].aborted_shots += 1;
                                healths[g].nan_events += 1;
                            }
                            ShotVerdict::Drift => {
                                healths[g].aborted_shots += 1;
                                healths[g].norm_drift_events += 1;
                            }
                        }
                    }
                }
                (accs, healths)
            });
            // chunk partials reduce in index order, exactly like shot_average
            for g in 0..glen {
                let mut probs = vec![0.0f64; dim];
                let mut health = HealthReport::default();
                for (p, h) in &partials {
                    for (dst, &x) in probs.iter_mut().zip(&p[g]) {
                        *dst += x;
                    }
                    health.merge(&h[g]);
                }
                if health.clean_shots > 0 {
                    let inv = 1.0 / health.clean_shots as f64;
                    for x in probs.iter_mut() {
                        *x *= inv;
                    }
                }
                rows.push(probs);
                reports.push(health);
            }
            groups += 1;
            resets += shots as u64;
            g0 = g1;
        }
        BATCH_RESETS.fetch_add(resets, std::sync::atomic::Ordering::Relaxed);
        (rows, reports, BatchStats { resets, groups })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::amplitude_damping;
    use qaprox_device::devices::ourense;
    use qaprox_metrics_shim::total_variation;

    // a tiny local TVD to avoid a dev-dependency cycle
    mod qaprox_metrics_shim {
        pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
            0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
        }
    }

    fn noiseless_cal(n: usize) -> qaprox_device::Calibration {
        use qaprox_device::{Calibration, EdgeCal, QubitCal, Topology};
        use std::collections::BTreeMap;
        let topology = Topology::full(n);
        let qubits = vec![
            QubitCal {
                readout_error: 0.0,
                t1_us: 1e9,
                t2_us: 1e9,
                sx_error: 0.0,
                sx_time_ns: 0.0,
            };
            n
        ];
        let mut edges = BTreeMap::new();
        for &e in topology.edges() {
            edges.insert(
                e,
                EdgeCal {
                    cx_error: 0.0,
                    cx_time_ns: 0.0,
                },
            );
        }
        Calibration {
            machine: "noiseless".into(),
            topology,
            qubits,
            edges,
        }
    }

    #[test]
    fn noiseless_trajectory_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).rz(0.7, 2);
        let cal = ourense().induced(&[0, 1, 2]).with_uniform_cx_error(0.0);
        let mut model = NoiseModel::from_calibration(cal);
        model.include_relaxation = false;
        model.include_readout = false;
        // ourense sx errors are ~3e-4, so residual 1q depolarizing remains;
        // many trajectories and a loose bound absorb it.
        let probs = trajectory_probabilities(&c, &model, 200, 42);
        let ideal = crate::statevector::probabilities(&c);
        assert!(total_variation(&probs, &ideal) < 0.02);
    }

    #[test]
    fn fused_unitary_is_exact_on_noiseless_model() {
        // runs of same-support gates — including a swapped-order CX pair —
        // must reproduce the ideal statevector exactly when noise is off
        let mut model = NoiseModel::from_calibration(noiseless_cal(3));
        model.include_relaxation = false;
        model.include_readout = false;
        let mut c = Circuit::new(3);
        c.h(0).rz(0.3, 0).rx(0.2, 0); // 1q run on qubit 0
        c.cx(0, 1).cx(1, 0).cx(0, 1); // 2q run with swapped orientation (a SWAP)
        c.h(2).cx(1, 2).rz(0.9, 2).ry(0.4, 2); // trailing 1q run
        let probs = trajectory_probabilities(&c, &model, 1, 0);
        let ideal = crate::statevector::probabilities(&c);
        for (a, b) in probs.iter().zip(&ideal) {
            assert!((a - b).abs() < 1e-12, "fused unitary drifted: {a} vs {b}");
        }
    }

    #[test]
    fn fusion_merges_adjacent_same_support_gates() {
        let cal = ourense().induced(&[0, 1]);
        let model = NoiseModel::from_calibration(cal);
        let mut c = Circuit::new(2);
        c.h(0).rz(0.3, 0).rx(0.2, 0); // a 1q run on qubit 0...
        c.cx(0, 1).cx(1, 0); // ...absorbed into the 2q run (pair {0,1})
        c.h(1); // ...which the trailing 1q gate joins too
        let p = FusedProgram::compile(&c, &model);
        assert_eq!(p.len(), 1, "cross-support fusion collapses all 6 gates");
        assert!(!p.is_empty());
        assert_eq!(p.num_qubits(), 2);
    }

    #[test]
    fn cross_support_fusion_does_not_slide_across_blockers() {
        let cal = ourense().induced(&[0, 1, 2]);
        let model = NoiseModel::from_calibration(cal);
        // rz(0) cannot join the first run after cx(0,1) re-touches qubit 0
        // via a *different* pair: cx(0,1), cx(1,2), rz(0) -> run {0,1} then
        // run {1,2} (which cannot absorb anything) then rz joins run 1? No:
        // last toucher of qubit 0 is still run 0, so rz joins run 0, and
        // that is legal — everything between (cx(1,2)) is disjoint from 0.
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2).rz(0.5, 0);
        let p = FusedProgram::compile(&c, &model);
        assert_eq!(p.len(), 2, "rz slides back into the first run");
        // but a gate on qubit 1 must NOT fuse anywhere after both runs
        // touched it in turn
        let mut d = Circuit::new(3);
        d.cx(0, 1).cx(1, 2).cx(0, 1);
        let pd = FusedProgram::compile(&d, &model);
        assert_eq!(pd.len(), 3, "pair {{0,1}} was re-touched by pair {{1,2}}");
    }

    #[test]
    fn tfim_layers_fuse_above_one_gate_per_op() {
        // the acceptance target: TFIM Trotter layers (cx rz cx bonds + rx
        // kicks) must compile to strictly fewer fused ops than gates
        let mut c = Circuit::new(3);
        for _ in 0..2 {
            c.cx(0, 1).rz(0.4, 1).cx(0, 1);
            c.cx(1, 2).rz(0.4, 2).cx(1, 2);
            c.rx(0.2, 0).rx(0.2, 1).rx(0.2, 2);
        }
        let cal = ourense().induced(&[0, 1, 2]);
        let model = NoiseModel::from_calibration(cal);
        let p = FusedProgram::compile(&c, &model);
        let ratio = c.len() as f64 / p.len() as f64;
        assert!(
            ratio > 1.0,
            "fusion ratio {ratio:.2} must exceed 1.00 gates/op ({} ops from {} gates)",
            p.len(),
            c.len()
        );
    }

    #[test]
    fn cross_support_fusion_matches_density_matrix() {
        // the fusion-legality soundness test: a circuit exercising every
        // absorption path (1q-joins-2q, StartAbsorbing folds, depolarizing
        // promotion, relaxation conjugation) must still converge to the
        // density-matrix distribution within the Hoeffding envelope
        let mut c = Circuit::new(3);
        c.h(0).rz(0.3, 0); // 1q run later folded by the cx
        c.h(1);
        c.cx(0, 1).rx(0.4, 1).rz(0.2, 0).cx(0, 1); // joins + absorptions
        c.cx(1, 2).rx(0.7, 2).cx(1, 2);
        c.rx(0.2, 0).rx(0.2, 1).rx(0.2, 2);
        let cal = ourense().induced(&[0, 1, 2]).with_uniform_cx_error(0.08);
        let mut model = NoiseModel::from_calibration(cal);
        model.include_readout = false;
        assert!(model.include_relaxation);
        let p = FusedProgram::compile(&c, &model);
        assert!(p.len() < c.len(), "fusion must actually trigger here");
        let dm_probs = model.probabilities(&c);
        let shots = 4000;
        let tj_probs = p.shot_average(shots, 13);
        let tvd = total_variation(&dm_probs, &tj_probs);
        let envelope = 1.5 * (8.0f64 / shots as f64).sqrt();
        assert!(
            tvd < envelope.min(0.03),
            "cross-support fusion diverged from density matrix: TVD {tvd}"
        );
    }

    #[test]
    fn fused_relaxation_matches_density_through_a_run() {
        // two CX on the same pair with relaxation on: the first CX's Kraus
        // events are conjugated by the second CX at compile time. The
        // averaged trajectories must still converge to the density matrix.
        let mut c = Circuit::new(2);
        c.x(0);
        c.cx(0, 1).cx(0, 1).cx(1, 0);
        let cal = ourense().induced(&[0, 1]).with_uniform_cx_error(0.0);
        let mut model = NoiseModel::from_calibration(cal);
        model.include_readout = false;
        assert!(model.include_relaxation);
        let dm_probs = model.probabilities(&c);
        let tj_probs = trajectory_probabilities(&c, &model, 4000, 11);
        let tvd = total_variation(&dm_probs, &tj_probs);
        assert!(tvd < 0.02, "conjugated relaxation diverged: TVD {tvd}");
    }

    #[test]
    fn trajectories_converge_to_density_matrix() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rx(0.4, 1).cx(0, 1);
        let cal = ourense().induced(&[0, 1]).with_uniform_cx_error(0.15);
        let model = NoiseModel::from_calibration(cal);
        let dm_probs = model.probabilities(&c);
        let tj_probs = trajectory_probabilities(&c, &model, 4000, 7);
        let tvd = total_variation(&dm_probs, &tj_probs);
        assert!(
            tvd < 0.03,
            "trajectory average should match density matrix: TVD {tvd}"
        );
    }

    #[test]
    fn convergence_improves_with_shots_within_hoeffding_bounds() {
        // seeded ≤5-qubit circuits: TV distance to the exact density result
        // shrinks as shots grow, and sits within a Hoeffding-style envelope
        // `C * sqrt(dim / shots)`. QAPROX_QUICK trims the seed set for CI.
        let quick = std::env::var("QAPROX_QUICK").is_ok_and(|v| v != "0");
        let seeds: &[u64] = if quick { &[1] } else { &[1, 2, 3] };
        for &cseed in seeds {
            let mut rng = StdRng::seed_from_u64(cseed);
            let n = 3 + (cseed as usize % 3); // 3..=5 qubits
            let mut c = Circuit::new(n);
            for _ in 0..12 {
                let q: usize = rng.gen_range(0..n);
                match rng.gen_range(0..4u8) {
                    0 => {
                        c.h(q);
                    }
                    1 => {
                        c.rz(rng.gen::<f64>() * 3.0, q);
                    }
                    2 => {
                        c.rx(rng.gen::<f64>() * 3.0, q);
                    }
                    _ => {
                        let p = (q + 1 + rng.gen_range(0..n - 1)) % n;
                        c.cx(q, p);
                    }
                }
            }
            let cal = noiseless_cal(n).with_uniform_cx_error(0.06);
            let model = NoiseModel::from_calibration(cal);
            let exact = model.probabilities(&c);
            let dim = (1usize << n) as f64;
            let mut last = f64::INFINITY;
            for shots in [128usize, 1024] {
                let tj = trajectory_probabilities(&c, &model, shots, cseed ^ 0xABCD);
                let tvd = total_variation(&exact, &tj);
                let envelope = 1.5 * (dim / shots as f64).sqrt();
                assert!(
                    tvd < envelope,
                    "seed {cseed} shots {shots}: TVD {tvd} outside envelope {envelope}"
                );
                // more shots must not make things notably worse
                assert!(
                    tvd < last + 0.25 * envelope,
                    "seed {cseed}: TVD grew from {last} to {tvd} at {shots} shots"
                );
                last = tvd;
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // bit-for-bit: the shot chunking is structural and per-shot streams
        // are keyed by shot index, so 1, 2, and 8 worker threads must give
        // *identical* distributions (not merely statistically close).
        use qaprox_linalg::parallel::with_thread_budget;
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).rx(0.4, 2).cx(1, 2).cx(2, 3).rz(0.8, 3);
        let cal = ourense().induced(&[0, 1, 2, 3]);
        let model = NoiseModel::from_calibration(cal);
        // 70 shots -> 5 structural chunks of 16: uneven splits across pools
        let base = with_thread_budget(1, || trajectory_probabilities(&c, &model, 70, 99));
        for threads in [2usize, 8] {
            let got = with_thread_budget(threads, || trajectory_probabilities(&c, &model, 70, 99));
            assert_eq!(base, got, "results drifted at {threads} threads");
        }
    }

    #[test]
    fn stochastic_kraus_preserves_norm() {
        let mut state = vec![Complex64::ZERO; 4];
        state[3] = Complex64::ONE;
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            apply_kraus_1q_stochastic(&mut state, 0, &amplitude_damping(0.3), &mut rng);
            let norm: f64 = state.iter().map(|z| z.norm_sqr()).sum();
            assert!((norm - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn amplitude_damping_statistics() {
        // |1> under repeated stochastic damping: excited population decays
        let gamma: f64 = 0.2;
        let trials = 3000;
        let mut stays = 0usize;
        for t in 0..trials {
            let mut state = vec![Complex64::ZERO, Complex64::ONE];
            let mut rng = StdRng::seed_from_u64(t as u64);
            apply_kraus_1q_stochastic(&mut state, 0, &amplitude_damping(gamma), &mut rng);
            if state[1].norm_sqr() > 0.5 {
                stays += 1;
            }
        }
        let p_stay = stays as f64 / trials as f64;
        assert!((p_stay - (1.0 - gamma)).abs() < 0.03, "P(stay) = {p_stay}");
    }

    #[test]
    fn seeded_trajectories_are_deterministic() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let cal = ourense().induced(&[0, 1]);
        let model = NoiseModel::from_calibration(cal);
        let a = trajectory_probabilities(&c, &model, 50, 9);
        let b = trajectory_probabilities(&c, &model, 50, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn backend_seeds_jobs_independently() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let cal = ourense().induced(&[0, 1]);
        let tb = TrajectoryBackend::with_shots(NoiseModel::from_calibration(cal), 64);
        assert_eq!(tb.shots(), 64);
        assert_eq!(tb.probabilities(&c, 5), tb.probabilities(&c, 5));
        assert_ne!(tb.probabilities(&c, 5), tb.probabilities(&c, 6));
        assert_eq!(tb.model().num_qubits(), 2);
    }

    #[test]
    fn scales_beyond_density_matrix_comfort_zone() {
        // 10 qubits: statevector trajectories are fine where rho would be 4^10.
        let n = 10;
        let mut c = Circuit::new(n);
        for q in 0..n - 1 {
            c.h(q);
            c.cx(q, q + 1);
        }
        let cal = {
            // synthetic linear device of 10 qubits
            use qaprox_device::{Calibration, EdgeCal, QubitCal, Topology};
            use std::collections::BTreeMap;
            let topology = Topology::linear(n);
            let qubits = vec![
                QubitCal {
                    readout_error: 0.02,
                    t1_us: 80.0,
                    t2_us: 70.0,
                    sx_error: 3e-4,
                    sx_time_ns: 35.0,
                };
                n
            ];
            let mut edges = BTreeMap::new();
            for &e in topology.edges() {
                edges.insert(
                    e,
                    EdgeCal {
                        cx_error: 0.01,
                        cx_time_ns: 300.0,
                    },
                );
            }
            Calibration {
                machine: "line10".into(),
                topology,
                qubits,
                edges,
            }
        };
        let model = NoiseModel::from_calibration(cal);
        let probs = trajectory_probabilities(&c, &model, 20, 3);
        assert_eq!(probs.len(), 1 << n);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    // -- shot-batched multi-candidate evaluation --------------------------

    fn candidate_circuits(n_cand: usize) -> Vec<Circuit> {
        (0..n_cand)
            .map(|i| {
                let mut c = Circuit::new(3);
                c.h(0).cx(0, 1).rx(0.2 + 0.15 * i as f64, 1).cx(1, 2);
                c.rz(0.5 + 0.1 * i as f64, 2);
                c
            })
            .collect()
    }

    #[test]
    fn batch_is_bit_identical_to_independent_runs() {
        let cal = ourense().induced(&[0, 1, 2]).with_uniform_cx_error(0.05);
        let model = NoiseModel::from_calibration(cal);
        let circuits = candidate_circuits(4);
        let programs: Vec<FusedProgram> = circuits
            .iter()
            .map(|c| FusedProgram::compile(c, &model))
            .collect();
        let seeds: Vec<u64> = (0..4u64).map(|i| 0xB00 ^ i).collect();
        let shots = 70; // uneven chunk split: 5 structural chunks of 16
        let batch = TrajectoryBatch::new(programs.iter().collect(), seeds.clone()).unwrap();
        let (rows, stats) = batch.shot_average_with_stats(shots);
        assert_eq!(stats.groups, 1, "4 small candidates share one arena");
        assert_eq!(
            stats.resets, shots as u64,
            "one shared reset per shot, not one per candidate"
        );
        for (g, prog) in programs.iter().enumerate() {
            let solo = prog.shot_average(shots, seeds[g]);
            assert_eq!(rows[g], solo, "candidate {g} drifted from its solo run");
        }
    }

    #[test]
    fn batch_group_splitting_preserves_results() {
        // cap the arena at exactly one 3q state: every candidate lands in
        // its own group, and the rows must not change by a single bit
        let cal = ourense().induced(&[0, 1, 2]);
        let model = NoiseModel::from_calibration(cal);
        let circuits = candidate_circuits(3);
        let programs: Vec<FusedProgram> = circuits
            .iter()
            .map(|c| FusedProgram::compile(c, &model))
            .collect();
        let seeds = vec![7u64, 8, 9];
        let shots = 40;
        let shared = TrajectoryBatch::new(programs.iter().collect(), seeds.clone())
            .unwrap()
            .shot_average_with_stats(shots);
        let split = TrajectoryBatch::new(programs.iter().collect(), seeds)
            .unwrap()
            .with_arena_budget((1 << 3) * std::mem::size_of::<Complex64>())
            .shot_average_with_stats(shots);
        assert_eq!(
            shared.1,
            BatchStats {
                resets: shots as u64,
                groups: 1
            }
        );
        assert_eq!(
            split.1,
            BatchStats {
                resets: 3 * shots as u64,
                groups: 3
            }
        );
        assert_eq!(shared.0, split.0, "grouping must never change results");
    }

    #[test]
    fn batch_thread_count_does_not_change_results() {
        use qaprox_linalg::parallel::with_thread_budget;
        let cal = ourense().induced(&[0, 1, 2]).with_uniform_cx_error(0.05);
        let model = NoiseModel::from_calibration(cal);
        let circuits = candidate_circuits(3);
        let programs: Vec<FusedProgram> = circuits
            .iter()
            .map(|c| FusedProgram::compile(c, &model))
            .collect();
        let seeds = vec![1u64, 2, 3];
        let base = with_thread_budget(1, || {
            TrajectoryBatch::new(programs.iter().collect(), seeds.clone())
                .unwrap()
                .shot_average_with_stats(70)
                .0
        });
        for threads in [2usize, 8] {
            let got = with_thread_budget(threads, || {
                TrajectoryBatch::new(programs.iter().collect(), seeds.clone())
                    .unwrap()
                    .shot_average_with_stats(70)
                    .0
            });
            assert_eq!(base, got, "batch drifted at {threads} threads");
        }
    }

    #[test]
    fn batch_rejects_bad_inputs() {
        let cal = ourense().induced(&[0, 1, 2]);
        let model = NoiseModel::from_calibration(cal);
        assert!(TrajectoryBatch::new(Vec::new(), Vec::new())
            .unwrap_err()
            .contains("at least one"));
        let c3 = candidate_circuits(1).remove(0);
        let p3 = FusedProgram::compile(&c3, &model);
        assert!(TrajectoryBatch::new(vec![&p3], vec![1, 2])
            .unwrap_err()
            .contains("seeds"));
        let mut c2 = Circuit::new(2);
        c2.h(0).cx(0, 1);
        let cal2 = ourense().induced(&[0, 1]);
        let model2 = NoiseModel::from_calibration(cal2);
        let p2 = FusedProgram::compile(&c2, &model2);
        assert!(TrajectoryBatch::new(vec![&p3, &p2], vec![1, 2])
            .unwrap_err()
            .contains("uniform width"));
    }

    #[test]
    fn backend_batch_matches_solo_probabilities() {
        // index-seeded entry point: row i == probabilities(c_i, i), bitwise
        let cal = ourense().induced(&[0, 1, 2]).with_uniform_cx_error(0.05);
        let tb = TrajectoryBackend::with_shots(NoiseModel::from_calibration(cal), 48);
        let circuits = candidate_circuits(3);
        let rows = tb.probabilities_batch(&circuits).unwrap();
        for (i, c) in circuits.iter().enumerate() {
            assert_eq!(rows[i], tb.probabilities(c, i as u64), "row {i}");
        }
        // shared-seed entry point: row i == probabilities(c_i, job_seed)
        let refs: Vec<&Circuit> = circuits.iter().collect();
        let seeded = tb.probabilities_batch_seeded(&refs, 77).unwrap();
        for (i, c) in circuits.iter().enumerate() {
            assert_eq!(seeded[i], tb.probabilities(c, 77), "seeded row {i}");
        }
        // readout confusion is folded per row (totals stay normalized)
        for row in &rows {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn backend_batch_rejects_mixed_widths() {
        let cal = ourense().induced(&[0, 1, 2]);
        let tb = TrajectoryBackend::with_shots(NoiseModel::from_calibration(cal), 16);
        let mut narrow = Circuit::new(2);
        narrow.h(0).cx(0, 1);
        let wide = candidate_circuits(1).remove(0);
        let err = tb.probabilities_batch(&[wide, narrow]).unwrap_err();
        assert!(err.contains("uniform width"), "got: {err}");
    }

    #[test]
    fn batch_reset_counter_advances() {
        let cal = ourense().induced(&[0, 1, 2]);
        let model = NoiseModel::from_calibration(cal);
        let circuits = candidate_circuits(2);
        let programs: Vec<FusedProgram> = circuits
            .iter()
            .map(|c| FusedProgram::compile(c, &model))
            .collect();
        let before = batch_reset_total();
        TrajectoryBatch::new(programs.iter().collect(), vec![1, 2])
            .unwrap()
            .shot_average_with_stats(25);
        // other tests may batch concurrently, so the delta is a lower bound
        assert!(batch_reset_total() >= before + 25);
    }

    #[test]
    fn health_report_is_clean_on_a_clean_run() {
        let cal = ourense().induced(&[0, 1]);
        let tb = TrajectoryBackend::with_shots(NoiseModel::from_calibration(cal), 32);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let (probs, health) = tb.probabilities_health(&c, 7);
        assert_eq!(
            health,
            HealthReport {
                clean_shots: 32,
                ..HealthReport::default()
            }
        );
        assert!(health.is_healthy());
        // the health wrapper must not perturb the row
        assert_eq!(probs, tb.probabilities(&c, 7));
    }

    #[test]
    fn cancel_token_stops_a_run_at_shot_granularity() {
        let cal = ourense().induced(&[0, 1]);
        let flag = Arc::new(AtomicBool::new(true)); // cancelled before shot 0
        let tb = TrajectoryBackend::with_shots(NoiseModel::from_calibration(cal), 64)
            .with_cancel(Arc::clone(&flag));
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let (_probs, health) = tb.probabilities_health(&c, 0);
        assert!(health.cancelled, "pre-set token must stop the run");
        assert_eq!(health.clean_shots, 0);
        // clearing the token restores a full clean run
        flag.store(false, Ordering::Relaxed);
        let (_probs, health) = tb.probabilities_health(&c, 0);
        assert!(health.is_healthy());
        assert_eq!(health.clean_shots, 64);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn corrupt_shots_are_aborted_and_counted() {
        let cal = ourense().induced(&[0, 1]);
        let tb = TrajectoryBackend::with_shots(NoiseModel::from_calibration(cal), 16);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let clean = tb.probabilities(&c, 3);

        // torn -> NaN amplitude on the fourth shot: aborted, counted, and
        // the surviving 15 shots still average to a sane distribution
        let guard = qaprox_fault::Scenario::setup("traj.corrupt=after:3->torn");
        let (probs, health) = tb.probabilities_health(&c, 3);
        drop(guard);
        assert_eq!(health.aborted_shots, 1);
        assert_eq!(health.nan_events, 1);
        assert_eq!(health.clean_shots, 15);
        assert!(!health.is_healthy());
        assert!(probs.iter().all(|p| p.is_finite()));
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);

        // error -> doubled amplitudes: norm drift, same abort accounting
        let guard = qaprox_fault::Scenario::setup("traj.corrupt=after:0");
        let (_probs, health) = tb.probabilities_health(&c, 3);
        drop(guard);
        assert_eq!(health.norm_drift_events, 1);
        assert_eq!(health.aborted_shots, 1);

        // with the scenario gone, the run is bit-identical to the baseline
        assert_eq!(tb.probabilities(&c, 3), clean);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn batch_health_isolates_the_corrupt_candidate() {
        let cal = ourense().induced(&[0, 1]);
        let tb = TrajectoryBackend::with_shots(NoiseModel::from_calibration(cal), 8);
        let circuits: Vec<Circuit> = (0..3)
            .map(|i| {
                let mut c = Circuit::new(2);
                c.h(0).rz(0.1 * i as f64, 0).cx(0, 1);
                c
            })
            .collect();
        let clean = tb.probabilities_batch(&circuits).unwrap();
        // the batch walks candidates per shot, so eval #1 is (shot 0,
        // candidate 1): exactly one candidate takes the NaN hit
        let guard = qaprox_fault::Scenario::setup("traj.corrupt=after:1->torn");
        let (rows, healths) = tb.probabilities_batch_health(&circuits).unwrap();
        drop(guard);
        assert_eq!(healths.len(), 3);
        assert_eq!(healths[1].nan_events, 1);
        assert_eq!(healths[1].clean_shots, 7);
        assert!(healths[0].is_healthy() && healths[2].is_healthy());
        // untouched candidates stay bit-identical to the clean batch
        assert_eq!(rows[0], clean[0]);
        assert_eq!(rows[2], clean[2]);
        assert!(rows[1].iter().all(|p| p.is_finite()));
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn traj_shot_failpoint_evaluates_per_shot() {
        let cal = ourense().induced(&[0, 1]);
        let tb = TrajectoryBackend::with_shots(NoiseModel::from_calibration(cal), 8);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let _guard = qaprox_fault::Scenario::setup("traj.shot=never");
        let before = qaprox_fault::evals("traj.shot");
        tb.probabilities(&c, 0);
        assert_eq!(qaprox_fault::evals("traj.shot"), before + 8);
    }
}
