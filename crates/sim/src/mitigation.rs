//! Measurement-error mitigation.
//!
//! The paper's Related Work asks whether post-processing mitigation
//! "interferes with the noise which the approximate circuits rely on". This
//! module implements the standard readout-error mitigation — invert the
//! per-qubit confusion matrices and project back onto the probability
//! simplex — so that question becomes an experiment
//! (`ablation` bench / `mitigation_study` driver) instead of speculation.

use crate::readout::ReadoutError;

/// Applies the *inverse* of the per-qubit confusion to a measured
/// distribution. The raw inverse can leave the simplex, so the result is
/// clipped at zero and renormalized (the usual least-squares-lite recipe).
pub fn mitigate_readout(measured: &[f64], errors: &[ReadoutError]) -> Vec<f64> {
    let dim = measured.len();
    assert!(dim.is_power_of_two(), "distribution length must be 2^n");
    let n = dim.trailing_zeros() as usize;
    assert_eq!(errors.len(), n, "need one readout error per qubit");

    let mut probs = measured.to_vec();
    for (q, err) in errors.iter().enumerate() {
        // per-qubit confusion M = [[1-e01, e10], [e01, 1-e10]];
        // inverse = 1/det [[1-e10, -e10], [-e01, 1-e01]]
        let det = 1.0 - err.e01 - err.e10;
        assert!(
            det.abs() > 1e-9,
            "confusion matrix is singular (e01 + e10 = 1): cannot mitigate"
        );
        let inv00 = (1.0 - err.e10) / det;
        let inv01 = -err.e10 / det;
        let inv10 = -err.e01 / det;
        let inv11 = (1.0 - err.e01) / det;
        let mask = 1usize << q;
        for base in 0..dim {
            if base & mask != 0 {
                continue;
            }
            let hi = base | mask;
            let p0 = probs[base];
            let p1 = probs[hi];
            probs[base] = inv00 * p0 + inv01 * p1;
            probs[hi] = inv10 * p0 + inv11 * p1;
        }
    }
    // Project back onto the simplex: clip then renormalize.
    let mut total = 0.0;
    for p in probs.iter_mut() {
        *p = p.max(0.0);
        total += *p;
    }
    if total > 0.0 {
        for p in probs.iter_mut() {
            *p /= total;
        }
    }
    probs
}

/// Convenience: builds the per-qubit error list from a calibration.
pub fn errors_from_calibration(cal: &qaprox_device::Calibration) -> Vec<ReadoutError> {
    cal.qubits
        .iter()
        .map(|q| ReadoutError::symmetric(q.readout_error))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::readout::apply_confusion;

    #[test]
    fn mitigation_inverts_confusion_exactly_on_exact_distributions() {
        let true_dist = vec![0.55, 0.05, 0.15, 0.25];
        let errors = vec![
            ReadoutError {
                e01: 0.03,
                e10: 0.08,
            },
            ReadoutError::symmetric(0.05),
        ];
        let mut measured = true_dist.clone();
        apply_confusion(&mut measured, &errors);
        let recovered = mitigate_readout(&measured, &errors);
        for (r, t) in recovered.iter().zip(&true_dist) {
            assert!((r - t).abs() < 1e-10, "{recovered:?} vs {true_dist:?}");
        }
    }

    #[test]
    fn mitigation_is_identity_for_zero_error() {
        let d = vec![0.4, 0.1, 0.3, 0.2];
        let out = mitigate_readout(&d, &[ReadoutError::symmetric(0.0); 2]);
        for (a, b) in out.iter().zip(&d) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn output_stays_on_the_simplex_even_with_shot_noise() {
        // A noisy empirical distribution can push the raw inverse negative;
        // the projection must keep it a valid distribution.
        let measured = vec![0.95, 0.05, 0.0, 0.0];
        let errors = vec![ReadoutError::symmetric(0.15); 2];
        let out = mitigate_readout(&measured, &errors);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(out.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn mitigation_improves_fidelity_to_truth() {
        use crate::sampler::{counts_to_probs, sample_counts};
        let true_dist = vec![0.5, 0.0, 0.0, 0.5]; // Bell-like
        let errors = vec![ReadoutError::symmetric(0.08); 2];
        let mut confused = true_dist.clone();
        apply_confusion(&mut confused, &errors);
        // add shot noise
        let measured = counts_to_probs(&sample_counts(&confused, 8192, 3));
        let mitigated = mitigate_readout(&measured, &errors);
        let tvd =
            |a: &[f64], b: &[f64]| 0.5 * a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>();
        assert!(
            tvd(&mitigated, &true_dist) < tvd(&measured, &true_dist),
            "mitigation should reduce readout bias"
        );
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn rejects_singular_confusion() {
        let d = vec![0.5, 0.5];
        mitigate_readout(&d, &[ReadoutError { e01: 0.5, e10: 0.5 }]);
    }
}
