//! Device coupling topologies.
//!
//! IBM's 5-qubit machines (Ourense, Rome, Santiago) are linear or T-shaped
//! chains; the 27-qubit Falcons (Toronto) and 65-qubit Hummingbirds
//! (Manhattan) are heavy-hex lattices. Connectivity is what constrains both
//! synthesis (QSearch only places CNOTs on coupled pairs) and routing.

use std::collections::VecDeque;

/// An undirected coupling graph over `num_qubits` physical qubits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    num_qubits: usize,
    edges: Vec<(usize, usize)>,
}

impl Topology {
    /// Builds a topology from an explicit edge list (edges are normalized to
    /// `(min, max)` and deduplicated).
    pub fn new(num_qubits: usize, edges: &[(usize, usize)]) -> Self {
        let mut norm: Vec<(usize, usize)> = edges
            .iter()
            .map(|&(a, b)| {
                assert!(
                    a < num_qubits && b < num_qubits,
                    "edge ({a},{b}) out of range"
                );
                assert_ne!(a, b, "self-loop in coupling map");
                (a.min(b), a.max(b))
            })
            .collect();
        norm.sort_unstable();
        norm.dedup();
        Topology {
            num_qubits,
            edges: norm,
        }
    }

    /// A linear chain `0 - 1 - ... - (n-1)`.
    pub fn linear(n: usize) -> Self {
        let edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        Topology::new(n, &edges)
    }

    /// Fully connected coupling (useful for logical-level synthesis).
    pub fn full(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                edges.push((a, b));
            }
        }
        Topology::new(n, &edges)
    }

    /// The 27-qubit heavy-hex map of IBM's Falcon devices (ibmq_toronto).
    pub fn heavy_hex_27() -> Self {
        Topology::new(
            27,
            &[
                (0, 1),
                (1, 2),
                (1, 4),
                (2, 3),
                (3, 5),
                (4, 7),
                (5, 8),
                (6, 7),
                (7, 10),
                (8, 9),
                (8, 11),
                (10, 12),
                (11, 14),
                (12, 13),
                (12, 15),
                (13, 14),
                (14, 16),
                (15, 18),
                (16, 19),
                (17, 18),
                (18, 21),
                (19, 20),
                (19, 22),
                (21, 23),
                (22, 25),
                (23, 24),
                (24, 25),
                (25, 26),
            ],
        )
    }

    /// A 65-qubit heavy-hex-style lattice standing in for IBM's Hummingbird
    /// devices (ibmq_manhattan): four 13-qubit rows joined by 13 rung qubits.
    pub fn heavy_hex_65() -> Self {
        let rows = 4usize;
        let cols = 13usize;
        // rung columns per gap, chosen so the total is exactly 65 qubits
        let rung_cols: [&[usize]; 3] = [&[0, 3, 6, 9, 12], &[2, 5, 8, 11], &[1, 4, 7, 10]];
        let mut edges = Vec::new();
        let row_base = |r: usize| r * cols;
        // horizontal chains
        for r in 0..rows {
            for c in 0..cols - 1 {
                edges.push((row_base(r) + c, row_base(r) + c + 1));
            }
        }
        // rung qubits start after the row qubits
        let mut next = rows * cols;
        for (gap, cols_in_gap) in rung_cols.iter().enumerate() {
            for &c in cols_in_gap.iter() {
                let rung = next;
                next += 1;
                edges.push((row_base(gap) + c, rung));
                edges.push((rung, row_base(gap + 1) + c));
            }
        }
        assert_eq!(next, 65, "heavy_hex_65 must have exactly 65 qubits");
        Topology::new(65, &edges)
    }

    /// Number of physical qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The normalized edge list.
    #[inline]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// True when `a` and `b` are directly coupled.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        let e = (a.min(b), a.max(b));
        self.edges.binary_search(&e).is_ok()
    }

    /// Neighbors of qubit `q`.
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for &(a, b) in &self.edges {
            if a == q {
                out.push(b);
            } else if b == q {
                out.push(a);
            }
        }
        out
    }

    /// All-pairs shortest-path distances (BFS per source). `usize::MAX`
    /// marks disconnected pairs.
    pub fn distance_matrix(&self) -> Vec<Vec<usize>> {
        let n = self.num_qubits;
        let adj: Vec<Vec<usize>> = (0..n).map(|q| self.neighbors(q)).collect();
        let mut dist = vec![vec![usize::MAX; n]; n];
        for (s, row) in dist.iter_mut().enumerate() {
            row[s] = 0;
            let mut queue = VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for &v in &adj[u] {
                    if row[v] == usize::MAX {
                        row[v] = row[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        dist
    }

    /// True when the graph is connected.
    pub fn is_connected(&self) -> bool {
        if self.num_qubits == 0 {
            return true;
        }
        let d = &self.distance_matrix()[0];
        d.iter().all(|&x| x != usize::MAX)
    }

    /// The induced topology on `qubits`, relabeled to `0..qubits.len()`.
    pub fn induced(&self, qubits: &[usize]) -> Topology {
        let mut index = vec![usize::MAX; self.num_qubits];
        for (i, &q) in qubits.iter().enumerate() {
            assert!(q < self.num_qubits, "qubit {q} out of range");
            assert_eq!(index[q], usize::MAX, "duplicate qubit {q} in induced set");
            index[q] = i;
        }
        let edges: Vec<(usize, usize)> = self
            .edges
            .iter()
            .filter(|&&(a, b)| index[a] != usize::MAX && index[b] != usize::MAX)
            .map(|&(a, b)| (index[a], index[b]))
            .collect();
        Topology::new(qubits.len(), &edges)
    }

    /// Finds a simple path visiting exactly `len` distinct qubits — a chain
    /// that nearest-neighbor workloads (TFIM) can run on without routing.
    /// Depth-first search with backtracking from every start qubit, bounded
    /// by a global work cap so pathological graphs cannot hang the caller;
    /// returns `None` when no such path is found within the cap.
    pub fn connected_path(&self, len: usize) -> Option<Vec<usize>> {
        if len == 0 {
            return Some(Vec::new());
        }
        if len > self.num_qubits {
            return None;
        }
        if len == 1 {
            return Some(vec![0]);
        }
        let adj: Vec<Vec<usize>> = (0..self.num_qubits).map(|q| self.neighbors(q)).collect();
        fn extend(
            adj: &[Vec<usize>],
            path: &mut Vec<usize>,
            visited: &mut [bool],
            len: usize,
            budget: &mut usize,
        ) -> bool {
            if path.len() == len {
                return true;
            }
            if *budget == 0 {
                return false;
            }
            *budget -= 1;
            let last = *path.last().unwrap();
            for &nb in &adj[last] {
                if !visited[nb] {
                    visited[nb] = true;
                    path.push(nb);
                    if extend(adj, path, visited, len, budget) {
                        return true;
                    }
                    path.pop();
                    visited[nb] = false;
                }
            }
            false
        }
        let mut budget: usize = 500_000;
        for start in 0..self.num_qubits {
            let mut visited = vec![false; self.num_qubits];
            visited[start] = true;
            let mut path = vec![start];
            if extend(&adj, &mut path, &mut visited, len, &mut budget) {
                return Some(path);
            }
            if budget == 0 {
                break;
            }
        }
        None
    }

    /// Enumerates connected subsets of `k` qubits (used by noise-aware
    /// layout). Capped at `limit` results to bound search cost.
    pub fn connected_subsets(&self, k: usize, limit: usize) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        // Grow subsets from each seed qubit by BFS-style expansion.
        let mut stack: Vec<Vec<usize>> = (0..self.num_qubits).map(|q| vec![q]).collect();
        while let Some(set) = stack.pop() {
            if out.len() >= limit {
                break;
            }
            if set.len() == k {
                let mut key = set.clone();
                key.sort_unstable();
                if seen.insert(key.clone()) {
                    out.push(key);
                }
                continue;
            }
            let mut frontier: Vec<usize> = Vec::new();
            for &q in &set {
                for nb in self.neighbors(q) {
                    if !set.contains(&nb) && !frontier.contains(&nb) {
                        frontier.push(nb);
                    }
                }
            }
            for nb in frontier {
                let mut next = set.clone();
                next.push(nb);
                let mut key = next.clone();
                key.sort_unstable();
                if next.len() < k || !seen.contains(&key) {
                    stack.push(next);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_structure() {
        let t = Topology::linear(5);
        assert_eq!(t.num_qubits(), 5);
        assert_eq!(t.edges().len(), 4);
        assert!(t.has_edge(2, 3));
        assert!(t.has_edge(3, 2));
        assert!(!t.has_edge(0, 2));
        assert!(t.is_connected());
    }

    #[test]
    fn heavy_hex_27_is_connected_with_max_degree_3() {
        let t = Topology::heavy_hex_27();
        assert_eq!(t.num_qubits(), 27);
        assert!(t.is_connected());
        for q in 0..27 {
            assert!(t.neighbors(q).len() <= 3, "qubit {q} degree too high");
        }
    }

    #[test]
    fn heavy_hex_65_is_connected_with_65_qubits() {
        let t = Topology::heavy_hex_65();
        assert_eq!(t.num_qubits(), 65);
        assert!(t.is_connected());
        for q in 0..65 {
            let d = t.neighbors(q).len();
            assert!((1..=3).contains(&d), "qubit {q} degree {d}");
        }
    }

    #[test]
    fn distance_matrix_on_chain() {
        let t = Topology::linear(4);
        let d = t.distance_matrix();
        assert_eq!(d[0][3], 3);
        assert_eq!(d[1][2], 1);
        assert_eq!(d[2][2], 0);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let t = Topology::linear(5);
        let sub = t.induced(&[1, 2, 3]);
        assert_eq!(sub.num_qubits(), 3);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn induced_preserves_order_of_listing() {
        let t = Topology::linear(5);
        // map physical 3 -> logical 0, physical 2 -> logical 1
        let sub = t.induced(&[3, 2]);
        assert!(sub.has_edge(0, 1));
    }

    #[test]
    fn connected_subsets_of_chain() {
        let t = Topology::linear(5);
        let subs = t.connected_subsets(3, 100);
        // connected 3-subsets of a 5-chain: {0,1,2},{1,2,3},{2,3,4}
        assert_eq!(subs.len(), 3);
        for s in &subs {
            let ind = t.induced(s);
            assert!(ind.is_connected());
        }
    }

    #[test]
    fn connected_subsets_respects_limit() {
        let t = Topology::heavy_hex_27();
        let subs = t.connected_subsets(4, 10);
        assert!(subs.len() <= 10);
        for s in subs {
            assert_eq!(s.len(), 4);
            assert!(t.induced(&s).is_connected());
        }
    }

    #[test]
    fn connected_path_on_chain_is_the_chain() {
        let t = Topology::linear(5);
        let p = t.connected_path(5).expect("a chain is its own path");
        assert_eq!(p.len(), 5);
        for w in p.windows(2) {
            assert!(t.has_edge(w[0], w[1]));
        }
        assert!(t.connected_path(6).is_none(), "cannot exceed qubit count");
        assert_eq!(t.connected_path(1).unwrap().len(), 1);
    }

    #[test]
    fn connected_path_spans_heavy_hex_devices() {
        // the wide-run serve path induces TFIM chains along these; the full
        // 27q lattice has six degree-1 qubits, so a Hamiltonian path cannot
        // exist (a simple path uses at most two leaves) — callers fall back
        // to identity ordering for full-width chains
        for (t, n, len) in [
            (Topology::heavy_hex_27(), 27usize, 20usize),
            (Topology::heavy_hex_65(), 65, 40),
        ] {
            let p = t
                .connected_path(len)
                .unwrap_or_else(|| panic!("no {len}-qubit path on {n}q heavy-hex"));
            assert_eq!(p.len(), len);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), len, "path revisits a qubit");
            for w in p.windows(2) {
                assert!(t.has_edge(w[0], w[1]), "path uses a missing edge");
            }
        }
        assert!(
            Topology::heavy_hex_27().connected_path(27).is_none(),
            "27q heavy-hex has >2 leaves: no Hamiltonian path"
        );
    }

    #[test]
    fn full_topology_has_all_edges() {
        let t = Topology::full(4);
        assert_eq!(t.edges().len(), 6);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        Topology::new(3, &[(1, 1)]);
    }
}
