//! Noise-report rendering — the data behind the paper's Fig. 16.
//!
//! IBM's dashboard shows per-qubit readout error and per-edge CNOT error as
//! a colored graph; here the same data is rendered as aligned text tables,
//! plus the "mapping circles" (candidate physical-qubit subsets) used by the
//! Figs. 17-19 sensitivity study.

use crate::calibration::Calibration;
use std::fmt::Write as _;

/// A named physical-qubit mapping (one "circle" in Fig. 16).
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// Label, e.g. "blue" or "auto".
    pub name: String,
    /// Physical qubits in logical order.
    pub qubits: Vec<usize>,
}

/// Renders the noise report as text: qubit table then edge table.
pub fn render(cal: &Calibration) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Noise report: {}", cal.machine);
    let _ = writeln!(
        out,
        "# {} qubits, {} edges, avg cx err {:.5}, avg readout err {:.5}",
        cal.topology.num_qubits(),
        cal.topology.edges().len(),
        cal.avg_cx_error(),
        cal.avg_readout_error()
    );
    let _ = writeln!(out, "qubit,readout_error,t1_us,t2_us,sx_error");
    for (i, q) in cal.qubits.iter().enumerate() {
        let _ = writeln!(
            out,
            "{i},{:.5},{:.1},{:.1},{:.6}",
            q.readout_error, q.t1_us, q.t2_us, q.sx_error
        );
    }
    let _ = writeln!(out, "edge,cx_error,cx_time_ns");
    for (&(a, b), e) in &cal.edges {
        let _ = writeln!(out, "{a}-{b},{:.5},{:.0}", e.cx_error, e.cx_time_ns);
    }
    out
}

/// Builds the four manual mapping "circles" plus the space for an automatic
/// one, for `k`-qubit circuits on this device:
///
/// * `best_cx_readout` — the subset a noise-aware layout would pick;
/// * `worst_cx_readout` — the adversarial subset;
/// * `best_readout` — lowest readout error regardless of edges;
/// * `median` — a middle-of-the-ranking subset.
pub fn standard_mappings(cal: &Calibration, k: usize) -> Vec<Mapping> {
    let ranked = cal.rank_subsets(k, 4096);
    assert!(
        !ranked.is_empty(),
        "no connected {k}-subsets on {}",
        cal.machine
    );
    let best = ranked.first().unwrap().0.clone();
    let worst = ranked.last().unwrap().0.clone();
    let median = ranked[ranked.len() / 2].0.clone();

    // best readout: rank by readout error only
    let mut by_readout = ranked.clone();
    by_readout.sort_by(|a, b| {
        let ra: f64 =
            a.0.iter()
                .map(|&q| cal.qubits[q].readout_error)
                .sum::<f64>()
                / a.0.len() as f64;
        let rb: f64 =
            b.0.iter()
                .map(|&q| cal.qubits[q].readout_error)
                .sum::<f64>()
                / b.0.len() as f64;
        ra.total_cmp(&rb)
    });
    let best_readout = by_readout.first().unwrap().0.clone();

    vec![
        Mapping {
            name: "blue(best)".into(),
            qubits: best,
        },
        Mapping {
            name: "red(worst)".into(),
            qubits: worst,
        },
        Mapping {
            name: "green(best-readout)".into(),
            qubits: best_readout,
        },
        Mapping {
            name: "yellow(median)".into(),
            qubits: median,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::toronto;

    #[test]
    fn report_contains_all_rows() {
        let cal = toronto();
        let text = render(&cal);
        assert!(text.contains("# Noise report: toronto"));
        // 27 qubit rows + 28 edge rows + headers
        assert_eq!(
            text.lines()
                .filter(|l| l.contains(',') && !l.starts_with('#'))
                .count(),
            27 + cal.topology.edges().len() + 2
        );
    }

    #[test]
    fn report_is_parseable_csv_after_headers() {
        let cal = toronto();
        let text = render(&cal);
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let fields = line.split(',').count();
            assert!(fields >= 3, "row too short: {line}");
        }
    }

    #[test]
    fn mappings_are_deterministic() {
        let cal = toronto();
        let a = standard_mappings(&cal, 4);
        let b = standard_mappings(&cal, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn standard_mappings_are_connected_and_distinct() {
        let cal = toronto();
        let maps = standard_mappings(&cal, 4);
        assert_eq!(maps.len(), 4);
        for m in &maps {
            assert_eq!(m.qubits.len(), 4);
            assert!(
                cal.topology.induced(&m.qubits).is_connected(),
                "{} not connected",
                m.name
            );
        }
        // best and worst must differ in noise score
        let best_score = cal.subset_score(&maps[0].qubits);
        let worst_score = cal.subset_score(&maps[1].qubits);
        assert!(best_score < worst_score);
    }
}
