//! # qaprox-device
//!
//! The NISQ device substrate: coupling [`Topology`] graphs, per-qubit /
//! per-edge [`Calibration`] snapshots for the five IBM machines the paper
//! uses (anchored to its Table 1 averages), and the noise-report rendering
//! behind Fig. 16. Noise models and noise-aware transpilation consume these.

#![warn(missing_docs)]

pub mod calibration;
pub mod devices;
pub mod report;
pub mod topology;

pub use calibration::{Calibration, EdgeCal, QubitCal};
pub use report::{render as render_report, standard_mappings, Mapping};
pub use topology::Topology;
