//! Calibration snapshots for the five IBM machines the paper evaluates on.
//!
//! The paper consumes only the calibration numbers (Table 1, Fig. 16), not
//! the chips themselves, so we generate deterministic snapshots whose
//! per-edge/per-qubit spread is sampled around published figures and whose
//! **mean CNOT error matches Table 1 exactly** (the sampled values are
//! rescaled to the target mean). Every snapshot is reproducible: the RNG is
//! seeded from the machine name.

use crate::calibration::{Calibration, EdgeCal, QubitCal};
use crate::topology::Topology;
use qaprox_linalg::random::Rng;
use qaprox_linalg::random::SplitMix64 as StdRng;
use std::collections::BTreeMap;

/// Average CNOT errors as of 2021/01/18 — the paper's Table 1.
pub const TABLE1: [(&str, usize, f64); 5] = [
    ("manhattan", 65, 0.01578),
    ("toronto", 27, 0.01377),
    ("santiago", 5, 0.01131),
    ("rome", 5, 0.02965),
    ("ourense", 5, 0.00767),
];

/// Snapshot generation parameters for one machine.
struct DeviceSpec {
    name: &'static str,
    topology: Topology,
    avg_cx_error: f64,
    /// log-space spread of CNOT errors across edges
    cx_sigma: f64,
    avg_readout_error: f64,
    readout_sigma: f64,
    t1_mean_us: f64,
    t2_mean_us: f64,
}

fn seed_from_name(name: &str) -> u64 {
    // FNV-1a over the name: stable across runs and platforms.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn lognormal_around<R: Rng>(rng: &mut R, sigma: f64) -> f64 {
    // mean-1 lognormal: exp(sigma * z - sigma^2 / 2)
    let z = qaprox_sample_normal(rng);
    (sigma * z - sigma * sigma / 2.0).exp()
}

/// Box-Muller normal sample (local copy to keep the crate dependency-light).
fn qaprox_sample_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

fn build(spec: DeviceSpec) -> Calibration {
    let mut rng = StdRng::seed_from_u64(seed_from_name(spec.name));
    let n = spec.topology.num_qubits();

    let qubits: Vec<QubitCal> = (0..n)
        .map(|_| {
            let readout = (spec.avg_readout_error * lognormal_around(&mut rng, spec.readout_sigma))
                .clamp(1e-4, 0.5);
            let t1 = (spec.t1_mean_us * lognormal_around(&mut rng, 0.3)).max(10.0);
            // T2 <= 2*T1 physically; keep it near T1.
            let t2 = (spec.t2_mean_us * lognormal_around(&mut rng, 0.35)).clamp(5.0, 2.0 * t1);
            QubitCal {
                readout_error: readout,
                t1_us: t1,
                t2_us: t2,
                sx_error: (3.5e-4 * lognormal_around(&mut rng, 0.4)).clamp(1e-5, 5e-3),
                sx_time_ns: 35.0,
            }
        })
        .collect();

    // Sample edge errors, then rescale so the mean matches Table 1 exactly.
    let raw: Vec<f64> = spec
        .topology
        .edges()
        .iter()
        .map(|_| lognormal_around(&mut rng, spec.cx_sigma))
        .collect();
    let raw_mean = raw.iter().sum::<f64>() / raw.len().max(1) as f64;
    let scale = spec.avg_cx_error / raw_mean;

    let mut edges = BTreeMap::new();
    for (&e, &r) in spec.topology.edges().iter().zip(&raw) {
        let cx_error = (r * scale).clamp(1e-4, 0.9);
        let cx_time_ns = 250.0 + 300.0 * rng.gen::<f64>();
        edges.insert(
            e,
            EdgeCal {
                cx_error,
                cx_time_ns,
            },
        );
    }

    let cal = Calibration {
        machine: spec.name.to_string(),
        topology: spec.topology,
        qubits,
        edges,
    };
    cal.validate()
        .expect("generated calibration must be internally consistent");
    cal
}

/// ibmq_ourense: 5 qubits, T-shaped (treated as linear), the paper's
/// lowest-noise device (avg CNOT error 0.00767).
pub fn ourense() -> Calibration {
    build(DeviceSpec {
        name: "ourense",
        topology: Topology::linear(5),
        avg_cx_error: 0.00767,
        cx_sigma: 0.35,
        avg_readout_error: 0.022,
        readout_sigma: 0.5,
        t1_mean_us: 100.0,
        t2_mean_us: 75.0,
    })
}

/// ibmq_rome: 5 qubits linear, the paper's noisiest device (0.02965).
pub fn rome() -> Calibration {
    build(DeviceSpec {
        name: "rome",
        topology: Topology::linear(5),
        avg_cx_error: 0.02965,
        cx_sigma: 0.5,
        avg_readout_error: 0.03,
        readout_sigma: 0.5,
        t1_mean_us: 65.0,
        t2_mean_us: 60.0,
    })
}

/// ibmq_santiago: 5 qubits linear (0.01131).
pub fn santiago() -> Calibration {
    build(DeviceSpec {
        name: "santiago",
        topology: Topology::linear(5),
        avg_cx_error: 0.01131,
        cx_sigma: 0.4,
        avg_readout_error: 0.018,
        readout_sigma: 0.5,
        t1_mean_us: 90.0,
        t2_mean_us: 80.0,
    })
}

/// ibmq_toronto: 27-qubit Falcon heavy-hex (0.01377).
pub fn toronto() -> Calibration {
    build(DeviceSpec {
        name: "toronto",
        topology: Topology::heavy_hex_27(),
        avg_cx_error: 0.01377,
        cx_sigma: 0.55,
        avg_readout_error: 0.035,
        readout_sigma: 0.7,
        t1_mean_us: 95.0,
        t2_mean_us: 85.0,
    })
}

/// ibmq_manhattan: 65-qubit Hummingbird heavy-hex (0.01578).
pub fn manhattan() -> Calibration {
    build(DeviceSpec {
        name: "manhattan",
        topology: Topology::heavy_hex_65(),
        avg_cx_error: 0.01578,
        cx_sigma: 0.6,
        avg_readout_error: 0.028,
        readout_sigma: 0.7,
        t1_mean_us: 70.0,
        t2_mean_us: 65.0,
    })
}

/// All five snapshots in Table 1 order.
pub fn all_devices() -> Vec<Calibration> {
    vec![manhattan(), toronto(), santiago(), rome(), ourense()]
}

/// Looks a device up by name.
pub fn by_name(name: &str) -> Option<Calibration> {
    match name {
        "ourense" => Some(ourense()),
        "rome" => Some(rome()),
        "santiago" => Some(santiago()),
        "toronto" => Some(toronto()),
        "manhattan" => Some(manhattan()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_devices_validate() {
        for cal in all_devices() {
            assert!(cal.validate().is_ok(), "{} invalid", cal.machine);
        }
    }

    #[test]
    fn table1_averages_match_exactly() {
        for &(name, nq, avg) in &TABLE1 {
            let cal = by_name(name).unwrap();
            assert_eq!(cal.topology.num_qubits(), nq, "{name} qubit count");
            assert!(
                (cal.avg_cx_error() - avg).abs() < 1e-6,
                "{name}: avg {} != Table 1 {avg}",
                cal.avg_cx_error()
            );
        }
    }

    #[test]
    fn snapshots_are_deterministic() {
        let a = toronto();
        let b = toronto();
        assert_eq!(a, b);
    }

    #[test]
    fn devices_have_distinct_noise() {
        assert!(ourense().avg_cx_error() < santiago().avg_cx_error());
        assert!(santiago().avg_cx_error() < rome().avg_cx_error());
    }

    #[test]
    fn edge_errors_have_spread() {
        let cal = toronto();
        let errs: Vec<f64> = cal.edges.values().map(|e| e.cx_error).collect();
        let min = errs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = errs.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max / min > 1.5,
            "edge errors implausibly uniform: {min}..{max}"
        );
    }

    #[test]
    fn t2_never_exceeds_twice_t1() {
        for cal in all_devices() {
            for q in &cal.qubits {
                assert!(q.t2_us <= 2.0 * q.t1_us + 1e-9);
            }
        }
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("yorktown").is_none());
    }
}
