//! Device calibration snapshots.
//!
//! A [`Calibration`] is the Rust equivalent of the backend-properties blob
//! Qiskit downloads from IBM: per-qubit readout error and coherence times,
//! per-edge CNOT error and duration. Noise models (`qaprox-sim`) and
//! noise-aware layout (`qaprox-transpile`) both consume it, and the
//! CNOT-error sweeps of the paper's Figs. 8-11 are expressed as calibration
//! rewrites ([`Calibration::with_uniform_cx_error`]).

use crate::topology::Topology;
use std::collections::BTreeMap;

/// Per-qubit calibration record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QubitCal {
    /// Probability of misreading this qubit at measurement.
    pub readout_error: f64,
    /// Relaxation time constant, microseconds.
    pub t1_us: f64,
    /// Dephasing time constant, microseconds.
    pub t2_us: f64,
    /// Single-qubit gate (sx/u3) error rate.
    pub sx_error: f64,
    /// Single-qubit gate duration, nanoseconds.
    pub sx_time_ns: f64,
}

/// Per-edge (CNOT resonance channel) calibration record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeCal {
    /// CNOT gate error rate.
    pub cx_error: f64,
    /// CNOT duration, nanoseconds.
    pub cx_time_ns: f64,
}

/// A full calibration snapshot for one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Machine name, e.g. "ourense".
    pub machine: String,
    /// Coupling graph.
    pub topology: Topology,
    /// Per-qubit data, indexed by physical qubit.
    pub qubits: Vec<QubitCal>,
    /// Per-edge data, keyed by normalized `(min, max)` pairs.
    pub edges: BTreeMap<(usize, usize), EdgeCal>,
}

impl Calibration {
    /// Validates internal consistency (every topology edge calibrated, every
    /// qubit present, probabilities in range).
    pub fn validate(&self) -> Result<(), String> {
        if self.qubits.len() != self.topology.num_qubits() {
            return Err(format!(
                "{}: {} qubit records for {} qubits",
                self.machine,
                self.qubits.len(),
                self.topology.num_qubits()
            ));
        }
        for &(a, b) in self.topology.edges() {
            if !self.edges.contains_key(&(a, b)) {
                return Err(format!(
                    "{}: edge ({a},{b}) lacks calibration",
                    self.machine
                ));
            }
        }
        for (i, q) in self.qubits.iter().enumerate() {
            if !(0.0..=1.0).contains(&q.readout_error) {
                return Err(format!(
                    "{}: qubit {i} readout error out of range",
                    self.machine
                ));
            }
            if q.t1_us <= 0.0 || q.t2_us <= 0.0 {
                return Err(format!(
                    "{}: qubit {i} nonpositive coherence time",
                    self.machine
                ));
            }
        }
        for (&(a, b), e) in &self.edges {
            if !(0.0..=1.0).contains(&e.cx_error) {
                return Err(format!(
                    "{}: edge ({a},{b}) cx error out of range",
                    self.machine
                ));
            }
        }
        Ok(())
    }

    /// Calibration for the edge `(a, b)` (order-insensitive).
    pub fn edge(&self, a: usize, b: usize) -> Option<&EdgeCal> {
        self.edges.get(&(a.min(b), a.max(b)))
    }

    /// Mean CNOT error over all calibrated edges — the paper's Table 1 value.
    pub fn avg_cx_error(&self) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        self.edges.values().map(|e| e.cx_error).sum::<f64>() / self.edges.len() as f64
    }

    /// Mean readout error over all qubits.
    pub fn avg_readout_error(&self) -> f64 {
        if self.qubits.is_empty() {
            return 0.0;
        }
        self.qubits.iter().map(|q| q.readout_error).sum::<f64>() / self.qubits.len() as f64
    }

    /// Returns a copy with **every** CNOT error set to `eps` — the knob the
    /// paper's error-sensitivity study turns (Figs. 8-11).
    pub fn with_uniform_cx_error(&self, eps: f64) -> Calibration {
        let mut c = self.clone();
        c.machine = format!("{}+cx={eps}", self.machine);
        for e in c.edges.values_mut() {
            e.cx_error = eps;
        }
        c
    }

    /// Returns a copy with all CNOT errors scaled by `factor`.
    pub fn with_scaled_cx_error(&self, factor: f64) -> Calibration {
        let mut c = self.clone();
        c.machine = format!("{}*cx={factor}", self.machine);
        for e in c.edges.values_mut() {
            e.cx_error = (e.cx_error * factor).clamp(0.0, 1.0);
        }
        c
    }

    /// A drifted copy of this snapshot: every error rate and coherence time
    /// is perturbed by a seeded lognormal factor of the given relative
    /// `magnitude`. Models the day-to-day calibration drift the paper notes
    /// ("reflect the constant changes of NISQ devices").
    pub fn with_drift(&self, seed: u64, magnitude: f64) -> Calibration {
        use qaprox_linalg::random::Rng;
        use qaprox_linalg::random::SplitMix64 as StdRng;
        assert!(
            (0.0..1.0).contains(&magnitude),
            "drift magnitude must be in [0, 1)"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let factor = |rng: &mut StdRng| -> f64 {
            // symmetric multiplicative jitter around 1
            1.0 + magnitude * (rng.gen::<f64>() * 2.0 - 1.0)
        };
        let mut c = self.clone();
        c.machine = format!("{}@drift{seed}", self.machine);
        for q in c.qubits.iter_mut() {
            q.readout_error = (q.readout_error * factor(&mut rng)).clamp(1e-5, 0.5);
            q.t1_us = (q.t1_us * factor(&mut rng)).max(1.0);
            q.t2_us = (q.t2_us * factor(&mut rng)).clamp(1.0, 2.0 * q.t1_us);
            q.sx_error = (q.sx_error * factor(&mut rng)).clamp(1e-6, 0.1);
        }
        for e in c.edges.values_mut() {
            e.cx_error = (e.cx_error * factor(&mut rng)).clamp(1e-5, 0.9);
        }
        c
    }

    /// The induced calibration on a subset of physical qubits, relabeled to
    /// `0..qubits.len()`. Used to simulate a small circuit mapped onto
    /// specific qubits of a large device.
    pub fn induced(&self, qubits: &[usize]) -> Calibration {
        let topology = self.topology.induced(qubits);
        let q_cal: Vec<QubitCal> = qubits.iter().map(|&q| self.qubits[q]).collect();
        let mut index = vec![usize::MAX; self.topology.num_qubits()];
        for (i, &q) in qubits.iter().enumerate() {
            index[q] = i;
        }
        let mut edges = BTreeMap::new();
        for (&(a, b), &e) in &self.edges {
            if index[a] != usize::MAX && index[b] != usize::MAX {
                let (x, y) = (index[a].min(index[b]), index[a].max(index[b]));
                edges.insert((x, y), e);
            }
        }
        Calibration {
            machine: format!("{}[{qubits:?}]", self.machine),
            topology,
            qubits: q_cal,
            edges,
        }
    }

    /// The `k` physical qubits forming the connected subset with the lowest
    /// combined CNOT + readout error (greedy over enumerated subsets) —
    /// what Qiskit's level-3 layout approximates.
    pub fn best_subset(&self, k: usize) -> Vec<usize> {
        self.rank_subsets(k, 4096)
            .into_iter()
            .next()
            .map(|(s, _)| s)
            .unwrap_or_else(|| (0..k).collect())
    }

    /// The worst connected subset by the same score.
    pub fn worst_subset(&self, k: usize) -> Vec<usize> {
        self.rank_subsets(k, 4096)
            .into_iter()
            .last()
            .map(|(s, _)| s)
            .unwrap_or_else(|| (0..k).collect())
    }

    /// Enumerates connected `k`-subsets (up to `limit`) ranked by a noise
    /// score: mean CNOT error of internal edges plus mean readout error.
    pub fn rank_subsets(&self, k: usize, limit: usize) -> Vec<(Vec<usize>, f64)> {
        let mut scored: Vec<(Vec<usize>, f64)> = self
            .topology
            .connected_subsets(k, limit)
            .into_iter()
            .map(|s| {
                let score = self.subset_score(&s);
                (s, score)
            })
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        scored
    }

    /// Noise score for a candidate subset (lower is better).
    pub fn subset_score(&self, qubits: &[usize]) -> f64 {
        let mut cx_sum = 0.0;
        let mut cx_n = 0usize;
        for (i, &a) in qubits.iter().enumerate() {
            for &b in &qubits[i + 1..] {
                if let Some(e) = self.edge(a, b) {
                    cx_sum += e.cx_error;
                    cx_n += 1;
                }
            }
        }
        let cx_avg = if cx_n > 0 { cx_sum / cx_n as f64 } else { 1.0 };
        let ro_avg = qubits
            .iter()
            .map(|&q| self.qubits[q].readout_error)
            .sum::<f64>()
            / qubits.len().max(1) as f64;
        cx_avg + ro_avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_cal() -> Calibration {
        let topology = Topology::linear(4);
        let qubits = (0..4)
            .map(|i| QubitCal {
                readout_error: 0.01 * (i + 1) as f64,
                t1_us: 80.0,
                t2_us: 70.0,
                sx_error: 3e-4,
                sx_time_ns: 35.0,
            })
            .collect();
        let mut edges = BTreeMap::new();
        edges.insert(
            (0, 1),
            EdgeCal {
                cx_error: 0.01,
                cx_time_ns: 300.0,
            },
        );
        edges.insert(
            (1, 2),
            EdgeCal {
                cx_error: 0.02,
                cx_time_ns: 350.0,
            },
        );
        edges.insert(
            (2, 3),
            EdgeCal {
                cx_error: 0.03,
                cx_time_ns: 400.0,
            },
        );
        Calibration {
            machine: "toy".into(),
            topology,
            qubits,
            edges,
        }
    }

    #[test]
    fn validates_consistent_snapshot() {
        assert!(toy_cal().validate().is_ok());
    }

    #[test]
    fn detects_missing_edge_calibration() {
        let mut c = toy_cal();
        c.edges.remove(&(1, 2));
        assert!(c.validate().is_err());
    }

    #[test]
    fn averages() {
        let c = toy_cal();
        assert!((c.avg_cx_error() - 0.02).abs() < 1e-12);
        assert!((c.avg_readout_error() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn uniform_override_sets_all_edges() {
        let c = toy_cal().with_uniform_cx_error(0.12);
        assert!(c.edges.values().all(|e| e.cx_error == 0.12));
        assert!((c.avg_cx_error() - 0.12).abs() < 1e-12);
    }

    #[test]
    fn scaling_clamps_to_unit_interval() {
        let c = toy_cal().with_scaled_cx_error(100.0);
        assert!(c.edges.values().all(|e| e.cx_error <= 1.0));
    }

    #[test]
    fn induced_calibration_relabels() {
        let c = toy_cal().induced(&[1, 2, 3]);
        assert_eq!(c.qubits.len(), 3);
        assert!((c.qubits[0].readout_error - 0.02).abs() < 1e-12);
        assert!(c.edge(0, 1).is_some());
        assert!((c.edge(0, 1).unwrap().cx_error - 0.02).abs() < 1e-12);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn drift_perturbs_within_magnitude_and_is_deterministic() {
        let base = toy_cal();
        let a = base.with_drift(7, 0.2);
        let b = base.with_drift(7, 0.2);
        assert_eq!(a, b, "same seed -> same drift");
        let c = base.with_drift(8, 0.2);
        assert_ne!(a, c, "different seed -> different drift");
        for (orig, drifted) in base.edges.values().zip(a.edges.values()) {
            let ratio = drifted.cx_error / orig.cx_error;
            assert!(
                (0.8..=1.2).contains(&ratio),
                "ratio {ratio} outside drift band"
            );
        }
        assert!(a.validate().is_ok());
    }

    #[test]
    fn best_subset_prefers_low_error_end() {
        let c = toy_cal();
        let best = c.best_subset(2);
        assert_eq!(best, vec![0, 1]);
        let worst = c.worst_subset(2);
        assert_eq!(worst, vec![2, 3]);
    }

    #[test]
    fn subset_score_orders_by_noise() {
        let c = toy_cal();
        assert!(c.subset_score(&[0, 1]) < c.subset_score(&[2, 3]));
    }
}
