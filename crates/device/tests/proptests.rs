//! Property-style tests for topologies and calibrations, driven by the
//! in-repo seeded RNG.

use qaprox_device::devices::{all_devices, by_name};
use qaprox_device::Topology;
use qaprox_linalg::random::{Rng, SplitMix64};

#[test]
fn linear_chain_distances_are_index_differences() {
    let mut rng = SplitMix64::seed_from_u64(1);
    for _ in 0..64 {
        let n = rng.gen_range(2usize..12);
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let t = Topology::linear(n);
        let d = t.distance_matrix();
        assert_eq!(d[a][b], a.abs_diff(b));
    }
}

#[test]
fn induced_subgraph_edges_are_a_subset() {
    let t = Topology::heavy_hex_27();
    let mut rng = SplitMix64::seed_from_u64(2);
    for _ in 0..48 {
        let len = rng.gen_range(2usize..6);
        let start = rng.gen_range(0..(27 - len));
        let qubits: Vec<usize> = (start..start + len).collect();
        let sub = t.induced(&qubits);
        for &(a, b) in sub.edges() {
            assert!(t.has_edge(qubits[a], qubits[b]));
        }
    }
}

#[test]
fn connected_subsets_are_connected() {
    let t = Topology::heavy_hex_27();
    for k in 2usize..5 {
        for limit in [1usize, 7, 29] {
            for s in t.connected_subsets(k, limit) {
                assert_eq!(s.len(), k);
                assert!(t.induced(&s).is_connected());
            }
        }
    }
}

#[test]
fn uniform_cx_override_hits_every_edge() {
    let mut rng = SplitMix64::seed_from_u64(3);
    for _ in 0..32 {
        let eps = rng.gen_range(0.0..0.9);
        let cal = by_name("toronto").unwrap().with_uniform_cx_error(eps);
        for e in cal.edges.values() {
            assert!((e.cx_error - eps).abs() < 1e-15);
        }
        assert!((cal.avg_cx_error() - eps).abs() < 1e-12);
    }
}

#[test]
fn scaled_cx_error_scales_the_average() {
    let base = by_name("ourense").unwrap();
    let mut rng = SplitMix64::seed_from_u64(4);
    for _ in 0..32 {
        let factor = rng.gen_range(0.1..5.0);
        let scaled = base.with_scaled_cx_error(factor);
        // clamping only matters for absurd factors; below 5x on ourense it
        // stays linear
        assert!((scaled.avg_cx_error() - base.avg_cx_error() * factor).abs() < 1e-9);
    }
}

#[test]
fn subset_scores_are_finite_and_ordered() {
    let cal = by_name("toronto").unwrap();
    for k in 2usize..5 {
        let ranked = cal.rank_subsets(k, 512);
        assert!(!ranked.is_empty());
        for w in ranked.windows(2) {
            assert!(w[0].1 <= w[1].1, "ranking must ascend");
        }
    }
}

#[test]
fn every_device_validates_and_induces_cleanly() {
    for cal in all_devices() {
        assert!(cal.validate().is_ok());
        let k = cal.topology.num_qubits().min(4);
        let sub = cal.induced(&(0..k).collect::<Vec<_>>());
        assert!(sub.validate().is_ok(), "{}: induced invalid", cal.machine);
    }
}
