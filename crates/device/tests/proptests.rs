//! Property-based tests for topologies and calibrations.

use proptest::prelude::*;
use qaprox_device::devices::{all_devices, by_name};
use qaprox_device::Topology;

proptest! {
    #[test]
    fn linear_chain_distances_are_index_differences(n in 2usize..12, a in 0usize..12, b in 0usize..12) {
        prop_assume!(a < n && b < n);
        let t = Topology::linear(n);
        let d = t.distance_matrix();
        prop_assert_eq!(d[a][b], a.abs_diff(b));
    }

    #[test]
    fn induced_subgraph_edges_are_a_subset(start in 0usize..20, len in 2usize..6) {
        let t = Topology::heavy_hex_27();
        prop_assume!(start + len <= 27);
        let qubits: Vec<usize> = (start..start + len).collect();
        let sub = t.induced(&qubits);
        for &(a, b) in sub.edges() {
            prop_assert!(t.has_edge(qubits[a], qubits[b]));
        }
    }

    #[test]
    fn connected_subsets_are_connected(k in 2usize..5, limit in 1usize..30) {
        let t = Topology::heavy_hex_27();
        for s in t.connected_subsets(k, limit) {
            prop_assert_eq!(s.len(), k);
            prop_assert!(t.induced(&s).is_connected());
        }
    }

    #[test]
    fn uniform_cx_override_hits_every_edge(eps in 0.0f64..0.9) {
        let cal = by_name("toronto").unwrap().with_uniform_cx_error(eps);
        for e in cal.edges.values() {
            prop_assert!((e.cx_error - eps).abs() < 1e-15);
        }
        prop_assert!((cal.avg_cx_error() - eps).abs() < 1e-12);
    }

    #[test]
    fn scaled_cx_error_scales_the_average(factor in 0.1f64..5.0) {
        let base = by_name("ourense").unwrap();
        let scaled = base.with_scaled_cx_error(factor);
        // clamping only matters for absurd factors; below 5x on ourense it
        // stays linear
        prop_assert!((scaled.avg_cx_error() - base.avg_cx_error() * factor).abs() < 1e-9);
    }

    #[test]
    fn subset_scores_are_finite_and_ordered(k in 2usize..5) {
        let cal = by_name("toronto").unwrap();
        let ranked = cal.rank_subsets(k, 512);
        prop_assert!(!ranked.is_empty());
        for w in ranked.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "ranking must ascend");
        }
    }
}

#[test]
fn every_device_validates_and_induces_cleanly() {
    for cal in all_devices() {
        assert!(cal.validate().is_ok());
        let k = cal.topology.num_qubits().min(4);
        let sub = cal.induced(&(0..k).collect::<Vec<_>>());
        assert!(sub.validate().is_ok(), "{}: induced invalid", cal.machine);
    }
}
