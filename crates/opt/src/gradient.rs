//! Finite-difference gradients and a checker for analytic gradients.
//!
//! The synthesis crate derives analytic gradients of the Hilbert-Schmidt
//! objective; its tests validate them against these central differences.

/// Central-difference gradient of `f` at `x` with step `h`.
pub fn central_difference<F: Fn(&[f64]) -> f64>(f: &F, x: &[f64], h: f64) -> Vec<f64> {
    let mut g = vec![0.0; x.len()];
    let mut xt = x.to_vec();
    for i in 0..x.len() {
        let orig = xt[i];
        xt[i] = orig + h;
        let fp = f(&xt);
        xt[i] = orig - h;
        let fm = f(&xt);
        xt[i] = orig;
        g[i] = (fp - fm) / (2.0 * h);
    }
    g
}

/// Maximum absolute discrepancy between an analytic gradient and central
/// differences at `x`. Used in tests: assert the result is small.
pub fn check_gradient<F, G>(f: &F, grad: &G, x: &[f64], h: f64) -> f64
where
    F: Fn(&[f64]) -> f64,
    G: Fn(&[f64]) -> Vec<f64>,
{
    let numeric = central_difference(f, x, h);
    let analytic = grad(x);
    assert_eq!(numeric.len(), analytic.len(), "gradient length mismatch");
    numeric
        .iter()
        .zip(&analytic)
        .map(|(n, a)| (n - a).abs())
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_polynomial_gradient() {
        let f = |x: &[f64]| x[0].powi(3) + 2.0 * x[0] * x[1] + x[1].powi(2);
        let grad = |x: &[f64]| vec![3.0 * x[0] * x[0] + 2.0 * x[1], 2.0 * x[0] + 2.0 * x[1]];
        let err = check_gradient(&f, &grad, &[1.3, -0.7], 1e-5);
        assert!(err < 1e-8, "gradient error {err}");
    }

    #[test]
    fn matches_trigonometric_gradient() {
        let f = |x: &[f64]| (x[0] * 2.0).sin() * x[1].cos();
        let grad = |x: &[f64]| {
            vec![
                2.0 * (x[0] * 2.0).cos() * x[1].cos(),
                -(x[0] * 2.0).sin() * x[1].sin(),
            ]
        };
        let err = check_gradient(&f, &grad, &[0.4, 1.1], 1e-6);
        assert!(err < 1e-8);
    }

    #[test]
    fn detects_wrong_gradient() {
        let f = |x: &[f64]| x[0] * x[0];
        let wrong = |x: &[f64]| vec![3.0 * x[0]]; // should be 2x
        let err = check_gradient(&f, &wrong, &[2.0], 1e-6);
        assert!(err > 1.0, "should flag the wrong gradient, err={err}");
    }
}
