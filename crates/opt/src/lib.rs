//! # qaprox-opt
//!
//! Numerical optimizers for circuit instantiation — the stand-ins for the
//! SciPy BFGS/COBYLA optimizers the paper's synthesis tools call into:
//!
//! * [`lbfgs`] — limited-memory BFGS with a strong-Wolfe line search, for
//!   objectives with analytic gradients (our Hilbert-Schmidt instantiation);
//! * [`nelder_mead`] — derivative-free simplex search (COBYLA substitute);
//! * [`multistart`] — seeded random restarts around either local optimizer;
//! * [`gradient`] — central-difference gradients and a gradient checker used
//!   by the test suites of downstream crates.

#![warn(missing_docs)]

pub mod gradient;
pub mod lbfgs;
pub mod multistart;
pub mod nelder_mead;

pub use lbfgs::{lbfgs, LbfgsParams, LbfgsResult};
pub use multistart::{multistart_minimize, multistart_minimize_par, MultistartParams};
pub use nelder_mead::{nelder_mead, NelderMeadParams};

/// An objective with an analytic gradient.
///
/// Implementors must override at least one of [`eval`](Self::eval) /
/// [`eval_into`](Self::eval_into) — each has a default in terms of the other.
/// Hot-path objectives override `eval_into` so a caller-provided gradient
/// buffer makes the evaluation allocation-free.
pub trait GradObjective {
    /// Evaluates the objective and its gradient at `x`.
    fn eval(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let mut grad = vec![0.0; x.len()];
        let f = self.eval_into(x, &mut grad);
        (f, grad)
    }

    /// Evaluates the objective, writing the gradient into `grad`
    /// (`grad.len() == x.len()`), and returns the objective value.
    fn eval_into(&self, x: &[f64], grad: &mut [f64]) -> f64 {
        let (f, g) = self.eval(x);
        grad.copy_from_slice(&g);
        f
    }

    /// Evaluates only the objective (default: discard the gradient).
    fn value(&self, x: &[f64]) -> f64 {
        self.eval(x).0
    }
}

impl<F> GradObjective for F
where
    F: Fn(&[f64]) -> (f64, Vec<f64>),
{
    fn eval(&self, x: &[f64]) -> (f64, Vec<f64>) {
        self(x)
    }
}
