//! Limited-memory BFGS with a strong-Wolfe line search.
//!
//! Standard two-loop recursion (Nocedal & Wright, Alg. 7.4) with the
//! bracketing/zoom line search of Alg. 3.5-3.6. Instantiation objectives are
//! smooth trigonometric polynomials in the gate parameters, which is exactly
//! the regime where L-BFGS shines.

use crate::GradObjective;

/// Tuning knobs for [`lbfgs`].
#[derive(Debug, Clone)]
pub struct LbfgsParams {
    /// Number of curvature pairs to remember.
    pub memory: usize,
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Stop when the gradient infinity-norm falls below this.
    pub grad_tol: f64,
    /// Stop when successive objective values differ by less than this.
    pub f_tol: f64,
    /// Armijo (sufficient decrease) constant.
    pub c1: f64,
    /// Curvature constant.
    pub c2: f64,
    /// Maximum line-search evaluations per iteration.
    pub max_ls: usize,
}

impl Default for LbfgsParams {
    fn default() -> Self {
        LbfgsParams {
            memory: 10,
            max_iters: 200,
            grad_tol: 1e-10,
            f_tol: 1e-14,
            c1: 1e-4,
            c2: 0.9,
            max_ls: 40,
        }
    }
}

/// Outcome of an [`lbfgs`] run.
#[derive(Debug, Clone)]
pub struct LbfgsResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub f: f64,
    /// Gradient infinity-norm at `x`.
    pub grad_norm: f64,
    /// Outer iterations performed.
    pub iters: usize,
    /// Total objective/gradient evaluations.
    pub evals: usize,
    /// True if a convergence criterion (not the iteration cap) stopped us.
    pub converged: bool,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn inf_norm(a: &[f64]) -> f64 {
    a.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

/// Evaluates through [`GradObjective::eval_into`] so objectives with an
/// internal workspace stay allocation-free; only the O(n) gradient vector
/// the optimizer keeps is allocated here.
fn eval_owned<O: GradObjective>(obj: &O, x: &[f64]) -> (f64, Vec<f64>) {
    let mut g = vec![0.0; x.len()];
    let f = obj.eval_into(x, &mut g);
    (f, g)
}

/// Minimizes `obj` starting from `x0`.
pub fn lbfgs<O: GradObjective>(obj: &O, x0: &[f64], params: &LbfgsParams) -> LbfgsResult {
    let n = x0.len();
    let mut x = x0.to_vec();
    let mut evals = 0usize;
    let (mut f, mut g) = eval_owned(obj, &x);
    evals += 1;

    // Curvature history.
    let mut s_hist: Vec<Vec<f64>> = Vec::new();
    let mut y_hist: Vec<Vec<f64>> = Vec::new();
    let mut rho_hist: Vec<f64> = Vec::new();

    let mut converged = false;
    let mut iters = 0usize;

    for iter in 0..params.max_iters {
        iters = iter + 1;
        if inf_norm(&g) < params.grad_tol {
            converged = true;
            break;
        }

        // Two-loop recursion: d = -H g
        let mut q = g.clone();
        let m = s_hist.len();
        let mut alpha = vec![0.0; m];
        for i in (0..m).rev() {
            alpha[i] = rho_hist[i] * dot(&s_hist[i], &q);
            for (qj, yj) in q.iter_mut().zip(&y_hist[i]) {
                *qj -= alpha[i] * yj;
            }
        }
        // Initial Hessian scaling gamma = s.y / y.y from the newest pair.
        if let (Some(s), Some(y)) = (s_hist.last(), y_hist.last()) {
            let gamma = dot(s, y) / dot(y, y).max(1e-300);
            for qj in q.iter_mut() {
                *qj *= gamma;
            }
        }
        for i in 0..m {
            let beta = rho_hist[i] * dot(&y_hist[i], &q);
            for (qj, sj) in q.iter_mut().zip(&s_hist[i]) {
                *qj += (alpha[i] - beta) * sj;
            }
        }
        let mut d: Vec<f64> = q.iter().map(|&v| -v).collect();

        // Ensure a descent direction; fall back to steepest descent.
        let mut dg = dot(&d, &g);
        if !dg.is_finite() || dg >= 0.0 {
            d = g.iter().map(|&v| -v).collect();
            dg = -dot(&g, &g);
            s_hist.clear();
            y_hist.clear();
            rho_hist.clear();
        }

        // Strong-Wolfe line search.
        let ls = wolfe_search(obj, &x, f, &g, &d, dg, params, &mut evals);
        let (step, f_new, g_new) = match ls {
            Some(t) => t,
            None => {
                // Line search failed — gradient is numerically flat.
                converged = inf_norm(&g) < 1e-6;
                break;
            }
        };

        let mut s = vec![0.0; n];
        let mut y = vec![0.0; n];
        for i in 0..n {
            s[i] = step * d[i];
            x[i] += s[i];
            y[i] = g_new[i] - g[i];
        }
        let sy = dot(&s, &y);
        if sy > 1e-12 * dot(&y, &y).sqrt() * dot(&s, &s).sqrt() && sy > 0.0 {
            if s_hist.len() == params.memory {
                s_hist.remove(0);
                y_hist.remove(0);
                rho_hist.remove(0);
            }
            rho_hist.push(1.0 / sy);
            s_hist.push(s);
            y_hist.push(y);
        }

        let f_prev = f;
        f = f_new;
        g = g_new;
        if (f_prev - f).abs() < params.f_tol * (1.0 + f.abs()) {
            converged = true;
            break;
        }
    }

    let grad_norm = inf_norm(&g);
    LbfgsResult {
        x,
        f,
        grad_norm,
        iters,
        evals,
        converged,
    }
}

/// Strong-Wolfe bracketing line search. Returns `(alpha, f(x+ad), grad)`.
#[allow(clippy::too_many_arguments)]
fn wolfe_search<O: GradObjective>(
    obj: &O,
    x: &[f64],
    f0: f64,
    _g0: &[f64],
    d: &[f64],
    dg0: f64,
    params: &LbfgsParams,
    evals: &mut usize,
) -> Option<(f64, f64, Vec<f64>)> {
    let eval_at = |alpha: f64, evals: &mut usize| {
        let xt: Vec<f64> = x.iter().zip(d).map(|(xi, di)| xi + alpha * di).collect();
        *evals += 1;
        let (f, g) = eval_owned(obj, &xt);
        let dg = dot(&g, d);
        (f, g, dg)
    };

    let mut alpha_prev = 0.0;
    let mut f_prev = f0;
    let mut dg_prev = dg0;
    let mut alpha = 1.0;
    let mut best: Option<(f64, f64, Vec<f64>)> = None;

    for i in 0..params.max_ls {
        let (f_a, g_a, dg_a) = eval_at(alpha, evals);
        if !f_a.is_finite() {
            alpha *= 0.5;
            continue;
        }
        if f_a > f0 + params.c1 * alpha * dg0 || (i > 0 && f_a >= f_prev) {
            best = zoom(
                obj, x, f0, d, dg0, alpha_prev, f_prev, dg_prev, alpha, f_a, params, evals,
            );
            break;
        }
        if dg_a.abs() <= -params.c2 * dg0 {
            best = Some((alpha, f_a, g_a));
            break;
        }
        if dg_a >= 0.0 {
            best = zoom(
                obj, x, f0, d, dg0, alpha, f_a, dg_a, alpha_prev, f_prev, params, evals,
            );
            break;
        }
        alpha_prev = alpha;
        f_prev = f_a;
        dg_prev = dg_a;
        alpha *= 2.0;
    }
    best.filter(|(_, f_a, _)| *f_a <= f0)
}

/// Zoom phase: bisection with sufficient-decrease/curvature checks on the
/// bracketed interval `[lo, hi]`.
#[allow(clippy::too_many_arguments)]
fn zoom<O: GradObjective>(
    obj: &O,
    x: &[f64],
    f0: f64,
    d: &[f64],
    dg0: f64,
    mut alpha_lo: f64,
    mut f_lo: f64,
    mut _dg_lo: f64,
    mut alpha_hi: f64,
    mut _f_hi: f64,
    params: &LbfgsParams,
    evals: &mut usize,
) -> Option<(f64, f64, Vec<f64>)> {
    for _ in 0..params.max_ls {
        let alpha = 0.5 * (alpha_lo + alpha_hi);
        if (alpha_hi - alpha_lo).abs() < 1e-16 {
            break;
        }
        let xt: Vec<f64> = x.iter().zip(d).map(|(xi, di)| xi + alpha * di).collect();
        *evals += 1;
        let (f_a, g_a) = eval_owned(obj, &xt);
        let dg_a = dot(&g_a, d);
        if f_a > f0 + params.c1 * alpha * dg0 || f_a >= f_lo {
            alpha_hi = alpha;
            _f_hi = f_a;
        } else {
            if dg_a.abs() <= -params.c2 * dg0 {
                return Some((alpha, f_a, g_a));
            }
            if dg_a * (alpha_hi - alpha_lo) >= 0.0 {
                alpha_hi = alpha_lo;
                _f_hi = f_lo;
            }
            alpha_lo = alpha;
            f_lo = f_a;
            _dg_lo = dg_a;
        }
    }
    // Fall back to the best bracketed low point if it improves on f0.
    if f_lo < f0 && alpha_lo > 0.0 {
        let xt: Vec<f64> = x.iter().zip(d).map(|(xi, di)| xi + alpha_lo * di).collect();
        *evals += 1;
        let (f_a, g_a) = eval_owned(obj, &xt);
        return Some((alpha_lo, f_a, g_a));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(x: &[f64]) -> (f64, Vec<f64>) {
        // f = sum (x_i - i)^2, minimum at x_i = i
        let f = x
            .iter()
            .enumerate()
            .map(|(i, &v)| (v - i as f64).powi(2))
            .sum();
        let g = x
            .iter()
            .enumerate()
            .map(|(i, &v)| 2.0 * (v - i as f64))
            .collect();
        (f, g)
    }

    fn rosenbrock(x: &[f64]) -> (f64, Vec<f64>) {
        let mut f = 0.0;
        let mut g = vec![0.0; x.len()];
        for i in 0..x.len() - 1 {
            let a = x[i + 1] - x[i] * x[i];
            let b = 1.0 - x[i];
            f += 100.0 * a * a + b * b;
            g[i] += -400.0 * x[i] * a - 2.0 * b;
            g[i + 1] += 200.0 * a;
        }
        (f, g)
    }

    #[test]
    fn minimizes_quadratic_exactly() {
        let r = lbfgs(&quadratic, &[5.0; 6], &LbfgsParams::default());
        assert!(r.converged, "did not converge: {r:?}");
        for (i, v) in r.x.iter().enumerate() {
            assert!((v - i as f64).abs() < 1e-6, "x[{i}] = {v}");
        }
        assert!(r.f < 1e-12);
    }

    #[test]
    fn minimizes_rosenbrock() {
        let r = lbfgs(
            &rosenbrock,
            &[-1.2, 1.0],
            &LbfgsParams {
                max_iters: 500,
                ..Default::default()
            },
        );
        assert!(r.f < 1e-8, "rosenbrock residual {}", r.f);
        assert!((r.x[0] - 1.0).abs() < 1e-3 && (r.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn higher_dim_rosenbrock() {
        let r = lbfgs(
            &rosenbrock,
            &[0.0; 10],
            &LbfgsParams {
                max_iters: 2000,
                ..Default::default()
            },
        );
        assert!(r.f < 1e-6, "10-d rosenbrock residual {}", r.f);
    }

    #[test]
    fn trigonometric_objective_like_instantiation() {
        // f(t) = 2 - cos(t0) - cos(t1 - 0.5): smooth periodic like HS distance
        let obj = |x: &[f64]| {
            let f = 2.0 - x[0].cos() - (x[1] - 0.5).cos();
            let g = vec![x[0].sin(), (x[1] - 0.5).sin()];
            (f, g)
        };
        let r = lbfgs(&obj, &[2.0, -2.0], &LbfgsParams::default());
        assert!(r.f < 1e-10, "residual {}", r.f);
    }

    #[test]
    fn starts_at_minimum_stays_there() {
        let r = lbfgs(&quadratic, &[0.0, 1.0, 2.0], &LbfgsParams::default());
        assert!(r.converged);
        assert!(r.f < 1e-20);
        assert!(r.iters <= 2);
    }

    #[test]
    fn respects_iteration_cap() {
        let r = lbfgs(
            &rosenbrock,
            &[-1.2, 1.0],
            &LbfgsParams {
                max_iters: 3,
                ..Default::default()
            },
        );
        assert!(r.iters <= 3);
    }

    #[test]
    fn result_never_worse_than_start() {
        let x0 = [3.0, -4.0, 0.5, 9.0];
        let (f0, _) = rosenbrock(&x0);
        let r = lbfgs(
            &rosenbrock,
            &x0,
            &LbfgsParams {
                max_iters: 50,
                ..Default::default()
            },
        );
        assert!(r.f <= f0);
    }
}
