//! Seeded multistart wrapper.
//!
//! Instantiation objectives are highly multimodal in the gate angles, so both
//! QSearch and QFast restart their local optimizer from several random seeds
//! and keep the best. The restarts are deterministic given the seed, which
//! keeps every experiment in this repo reproducible.

use crate::lbfgs::{lbfgs, LbfgsParams, LbfgsResult};
use crate::GradObjective;
use qaprox_linalg::random::Rng;
use qaprox_linalg::random::SplitMix64 as StdRng;

/// Tuning knobs for [`multistart_minimize`].
#[derive(Debug, Clone)]
pub struct MultistartParams {
    /// Number of random starts (the provided `x0` counts as the first).
    pub starts: usize,
    /// Angles are drawn uniformly from `[-range, range]`.
    pub range: f64,
    /// RNG seed for start-point generation.
    pub seed: u64,
    /// Stop early once a start reaches this objective value.
    pub success_threshold: f64,
    /// Local optimizer configuration.
    pub local: LbfgsParams,
}

impl Default for MultistartParams {
    fn default() -> Self {
        MultistartParams {
            starts: 4,
            range: std::f64::consts::PI,
            seed: 0xA11CE,
            success_threshold: 1e-12,
            local: LbfgsParams::default(),
        }
    }
}

/// Derives the RNG seed for one start. Each start owns an independent stream
/// (instead of all starts sharing one sequential RNG), so the serial and
/// parallel drivers generate bit-identical start points.
fn start_seed(seed: u64, start: usize) -> u64 {
    seed ^ (start as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The initial point for start `start`: `x0` itself for start 0, otherwise a
/// uniform draw from the start's own seeded stream.
fn start_point(x0: &[f64], start: usize, params: &MultistartParams) -> Vec<f64> {
    if start == 0 {
        return x0.to_vec();
    }
    let mut rng = StdRng::seed_from_u64(start_seed(params.seed, start));
    (0..x0.len())
        .map(|_| rng.gen_range(-params.range..=params.range))
        .collect()
}

/// Scans results in start order with the serial driver's exact rules: strict
/// improvement (ties go to the lower start index), stop at the first start
/// whose best-so-far reaches the success threshold.
fn pick_best(results: impl IntoIterator<Item = LbfgsResult>, threshold: f64) -> LbfgsResult {
    let mut best: Option<LbfgsResult> = None;
    for r in results {
        if best.as_ref().is_none_or(|b| r.f < b.f) {
            best = Some(r);
        }
        if best.as_ref().is_some_and(|b| b.f <= threshold) {
            break;
        }
    }
    best.expect("at least one start ran")
}

/// Runs L-BFGS from `x0` and from `starts - 1` random points, returning the
/// best local minimum found.
pub fn multistart_minimize<O: GradObjective>(
    obj: &O,
    x0: &[f64],
    params: &MultistartParams,
) -> LbfgsResult {
    let mut best: Option<LbfgsResult> = None;
    for start in 0..params.starts.max(1) {
        let r = lbfgs(obj, &start_point(x0, start, params), &params.local);
        if best.as_ref().is_none_or(|b| r.f < b.f) {
            best = Some(r);
        }
        if best
            .as_ref()
            .is_some_and(|b| b.f <= params.success_threshold)
        {
            break;
        }
    }
    best.expect("at least one start ran")
}

/// [`multistart_minimize`] with the starts run concurrently.
///
/// Returns a result bit-identical to the serial driver: start points come
/// from the same per-start seeded streams, and the winner is picked by
/// scanning completed starts in index order under the serial rules. The only
/// observable difference is that starts the serial loop would have skipped
/// after an early success are still evaluated (their results are discarded).
/// Callers should consult [`qaprox_linalg::parallel::thread_budget`] and
/// prefer the serial driver when an enclosing wave already saturates it.
pub fn multistart_minimize_par<O: GradObjective + Sync>(
    obj: &O,
    x0: &[f64],
    params: &MultistartParams,
) -> LbfgsResult {
    let results = qaprox_linalg::parallel::par_map_range(params.starts.max(1), |start| {
        lbfgs(obj, &start_point(x0, start, params), &params.local)
    });
    pick_best(results, params.success_threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deceptive objective: local minimum at x=3 (f=0.5), global at x=0 (f=0).
    fn deceptive(x: &[f64]) -> (f64, Vec<f64>) {
        let t = x[0];
        // f = min-well shape built from two quadratic wells
        let w0 = t * t;
        let w1 = 0.5 + 0.8 * (t - 3.0) * (t - 3.0);
        if w0 <= w1 {
            (w0, vec![2.0 * t])
        } else {
            (w1, vec![1.6 * (t - 3.0)])
        }
    }

    #[test]
    fn escapes_local_minimum_with_restarts() {
        // Starting inside the shallow basin at x=3, a single L-BFGS run stays
        // there; multistart should find the global basin.
        let single = lbfgs(&deceptive, &[3.2], &LbfgsParams::default());
        assert!(
            single.f > 0.4,
            "single run unexpectedly escaped: {single:?}"
        );

        let params = MultistartParams {
            starts: 8,
            range: 5.0,
            seed: 7,
            ..Default::default()
        };
        let multi = multistart_minimize(&deceptive, &[3.2], &params);
        assert!(multi.f < 1e-8, "multistart failed: {multi:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let params = MultistartParams {
            starts: 5,
            seed: 42,
            ..Default::default()
        };
        let a = multistart_minimize(&deceptive, &[3.2], &params);
        let b = multistart_minimize(&deceptive, &[3.2], &params);
        assert_eq!(a.x, b.x);
        assert_eq!(a.f, b.f);
    }

    #[test]
    fn parallel_driver_matches_serial_exactly() {
        for seed in [7u64, 42, 0xA11CE] {
            let params = MultistartParams {
                starts: 6,
                range: 5.0,
                seed,
                ..Default::default()
            };
            let serial = multistart_minimize(&deceptive, &[3.2], &params);
            let par = multistart_minimize_par(&deceptive, &[3.2], &params);
            assert_eq!(serial.x, par.x, "seed {seed}");
            assert_eq!(serial.f, par.f, "seed {seed}");
            assert_eq!(serial.iters, par.iters, "seed {seed}");
        }
    }

    #[test]
    fn early_exit_on_threshold() {
        let quad = |x: &[f64]| (x[0] * x[0], vec![2.0 * x[0]]);
        let params = MultistartParams {
            starts: 100,
            success_threshold: 1e-10,
            ..Default::default()
        };
        let r = multistart_minimize(&quad, &[1.0], &params);
        assert!(r.f <= 1e-10);
    }
}
