//! Seeded multistart wrapper.
//!
//! Instantiation objectives are highly multimodal in the gate angles, so both
//! QSearch and QFast restart their local optimizer from several random seeds
//! and keep the best. The restarts are deterministic given the seed, which
//! keeps every experiment in this repo reproducible.

use crate::lbfgs::{lbfgs, LbfgsParams, LbfgsResult};
use crate::GradObjective;
use qaprox_linalg::random::Rng;
use qaprox_linalg::random::SplitMix64 as StdRng;

/// Tuning knobs for [`multistart_minimize`].
#[derive(Debug, Clone)]
pub struct MultistartParams {
    /// Number of random starts (the provided `x0` counts as the first).
    pub starts: usize,
    /// Angles are drawn uniformly from `[-range, range]`.
    pub range: f64,
    /// RNG seed for start-point generation.
    pub seed: u64,
    /// Stop early once a start reaches this objective value.
    pub success_threshold: f64,
    /// Local optimizer configuration.
    pub local: LbfgsParams,
}

impl Default for MultistartParams {
    fn default() -> Self {
        MultistartParams {
            starts: 4,
            range: std::f64::consts::PI,
            seed: 0xA11CE,
            success_threshold: 1e-12,
            local: LbfgsParams::default(),
        }
    }
}

/// Runs L-BFGS from `x0` and from `starts - 1` random points, returning the
/// best local minimum found.
pub fn multistart_minimize<O: GradObjective>(
    obj: &O,
    x0: &[f64],
    params: &MultistartParams,
) -> LbfgsResult {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut best: Option<LbfgsResult> = None;
    for start in 0..params.starts.max(1) {
        let x_init: Vec<f64> = if start == 0 {
            x0.to_vec()
        } else {
            (0..x0.len())
                .map(|_| rng.gen_range(-params.range..=params.range))
                .collect()
        };
        let r = lbfgs(obj, &x_init, &params.local);
        let improved = best.as_ref().is_none_or(|b| r.f < b.f);
        if improved {
            best = Some(r);
        }
        if best
            .as_ref()
            .is_some_and(|b| b.f <= params.success_threshold)
        {
            break;
        }
    }
    best.expect("at least one start ran")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deceptive objective: local minimum at x=3 (f=0.5), global at x=0 (f=0).
    fn deceptive(x: &[f64]) -> (f64, Vec<f64>) {
        let t = x[0];
        // f = min-well shape built from two quadratic wells
        let w0 = t * t;
        let w1 = 0.5 + 0.8 * (t - 3.0) * (t - 3.0);
        if w0 <= w1 {
            (w0, vec![2.0 * t])
        } else {
            (w1, vec![1.6 * (t - 3.0)])
        }
    }

    #[test]
    fn escapes_local_minimum_with_restarts() {
        // Starting inside the shallow basin at x=3, a single L-BFGS run stays
        // there; multistart should find the global basin.
        let single = lbfgs(&deceptive, &[3.2], &LbfgsParams::default());
        assert!(
            single.f > 0.4,
            "single run unexpectedly escaped: {single:?}"
        );

        let params = MultistartParams {
            starts: 8,
            range: 5.0,
            seed: 7,
            ..Default::default()
        };
        let multi = multistart_minimize(&deceptive, &[3.2], &params);
        assert!(multi.f < 1e-8, "multistart failed: {multi:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let params = MultistartParams {
            starts: 5,
            seed: 42,
            ..Default::default()
        };
        let a = multistart_minimize(&deceptive, &[3.2], &params);
        let b = multistart_minimize(&deceptive, &[3.2], &params);
        assert_eq!(a.x, b.x);
        assert_eq!(a.f, b.f);
    }

    #[test]
    fn early_exit_on_threshold() {
        let quad = |x: &[f64]| (x[0] * x[0], vec![2.0 * x[0]]);
        let params = MultistartParams {
            starts: 100,
            success_threshold: 1e-10,
            ..Default::default()
        };
        let r = multistart_minimize(&quad, &[1.0], &params);
        assert!(r.f <= 1e-10);
    }
}
