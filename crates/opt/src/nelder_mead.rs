//! Nelder-Mead simplex minimization (derivative-free).
//!
//! QSearch as published instantiates with COBYLA when gradients are
//! unavailable; this simplex method fills the same role here. It is also the
//! baseline arm of the `ablation_optimizer` benchmark against analytic-
//! gradient L-BFGS.

/// Tuning knobs for [`nelder_mead`].
#[derive(Debug, Clone)]
pub struct NelderMeadParams {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Terminate when the simplex's objective spread falls below this.
    pub f_tol: f64,
    /// Terminate when the simplex's geometric extent falls below this.
    pub x_tol: f64,
    /// Initial simplex edge length.
    pub initial_step: f64,
}

impl Default for NelderMeadParams {
    fn default() -> Self {
        NelderMeadParams {
            max_evals: 20_000,
            f_tol: 1e-12,
            x_tol: 1e-10,
            initial_step: 0.5,
        }
    }
}

/// Result of a [`nelder_mead`] run.
#[derive(Debug, Clone)]
pub struct NmResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective at `x`.
    pub f: f64,
    /// Objective evaluations used.
    pub evals: usize,
    /// True if tolerance (not the evaluation cap) stopped the search.
    pub converged: bool,
}

/// Minimizes `f` from `x0` with the Nelder-Mead simplex algorithm
/// (standard reflection/expansion/contraction/shrink coefficients).
pub fn nelder_mead<F: Fn(&[f64]) -> f64>(f: &F, x0: &[f64], params: &NelderMeadParams) -> NmResult {
    let n = x0.len();
    assert!(n > 0, "cannot optimize a zero-dimensional point");
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);

    // Initial simplex: x0 plus a step along each axis.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    for i in 0..n {
        let mut v = x0.to_vec();
        v[i] += if v[i].abs() > 1e-8 {
            params.initial_step * v[i].signum()
        } else {
            params.initial_step
        };
        simplex.push(v);
    }
    let mut evals = 0usize;
    let mut values: Vec<f64> = simplex
        .iter()
        .map(|v| {
            evals += 1;
            f(v)
        })
        .collect();

    let mut converged = false;
    while evals < params.max_evals {
        // Order simplex by objective.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        let reordered: Vec<Vec<f64>> = order.iter().map(|&i| simplex[i].clone()).collect();
        let revalues: Vec<f64> = order.iter().map(|&i| values[i]).collect();
        simplex = reordered;
        values = revalues;

        let spread = values[n] - values[0];
        let extent = simplex[1..]
            .iter()
            .map(|v| {
                v.iter()
                    .zip(&simplex[0])
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max)
            })
            .fold(0.0f64, f64::max);
        if spread < params.f_tol && extent < params.x_tol {
            converged = true;
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for v in &simplex[..n] {
            for (c, x) in centroid.iter_mut().zip(v) {
                *c += x / n as f64;
            }
        }

        let point_along = |t: f64| -> Vec<f64> {
            centroid
                .iter()
                .zip(&simplex[n])
                .map(|(c, w)| c + t * (c - w))
                .collect()
        };

        // Reflection.
        let xr = point_along(alpha);
        evals += 1;
        let fr = f(&xr);
        if fr < values[0] {
            // Expansion.
            let xe = point_along(gamma);
            evals += 1;
            let fe = f(&xe);
            if fe < fr {
                simplex[n] = xe;
                values[n] = fe;
            } else {
                simplex[n] = xr;
                values[n] = fr;
            }
        } else if fr < values[n - 1] {
            simplex[n] = xr;
            values[n] = fr;
        } else {
            // Contraction (outside if reflection improved on worst, else inside).
            let (xc, fc) = if fr < values[n] {
                let xc = point_along(rho);
                evals += 1;
                let fc = f(&xc);
                (xc, fc)
            } else {
                let xc = point_along(-rho);
                evals += 1;
                let fc = f(&xc);
                (xc, fc)
            };
            if fc < values[n].min(fr) {
                simplex[n] = xc;
                values[n] = fc;
            } else {
                // Shrink toward the best vertex.
                let best = simplex[0].clone();
                for (v, val) in simplex.iter_mut().zip(values.iter_mut()).skip(1) {
                    for (x, b) in v.iter_mut().zip(&best) {
                        *x = b + sigma * (*x - b);
                    }
                    evals += 1;
                    *val = f(v);
                }
            }
        }
    }

    let mut best_i = 0;
    for i in 1..=n {
        if values[i] < values[best_i] {
            best_i = i;
        }
    }
    NmResult {
        x: simplex[best_i].clone(),
        f: values[best_i],
        evals,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_shifted_quadratic() {
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2);
        let r = nelder_mead(&f, &[0.0, 0.0], &NelderMeadParams::default());
        assert!((r.x[0] - 3.0).abs() < 1e-4, "{:?}", r.x);
        assert!((r.x[1] + 1.0).abs() < 1e-4);
        assert!(r.converged);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let f = |x: &[f64]| 100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2);
        let r = nelder_mead(&f, &[-1.2, 1.0], &NelderMeadParams::default());
        assert!(r.f < 1e-8, "residual {}", r.f);
    }

    #[test]
    fn periodic_objective() {
        let f = |x: &[f64]| 2.0 - x[0].cos() - x[1].cos();
        let r = nelder_mead(&f, &[0.5, -0.5], &NelderMeadParams::default());
        assert!(r.f < 1e-8);
    }

    #[test]
    fn respects_eval_cap() {
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum();
        let r = nelder_mead(
            &f,
            &[10.0; 5],
            &NelderMeadParams {
                max_evals: 50,
                ..Default::default()
            },
        );
        assert!(r.evals <= 60); // cap plus at most one shrink round
    }

    #[test]
    fn never_worse_than_start() {
        let f = |x: &[f64]| (x[0] * 3.1).sin() + x[0] * x[0] * 0.1;
        let f0 = f(&[2.0]);
        let r = nelder_mead(&f, &[2.0], &NelderMeadParams::default());
        assert!(r.f <= f0);
    }

    #[test]
    fn handles_zero_start_coordinates() {
        let f = |x: &[f64]| x.iter().map(|v| (v - 1.0).powi(2)).sum();
        let r = nelder_mead(&f, &[0.0, 0.0, 0.0], &NelderMeadParams::default());
        assert!(r.f < 1e-8);
    }
}
