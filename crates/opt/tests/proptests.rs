//! Property-based tests for the optimizers.

use proptest::prelude::*;
use qaprox_opt::{lbfgs, nelder_mead, LbfgsParams, NelderMeadParams};

/// A positive-definite quadratic with a known minimizer.
fn quadratic(center: Vec<f64>, scales: Vec<f64>) -> impl Fn(&[f64]) -> (f64, Vec<f64>) {
    move |x: &[f64]| {
        let mut f = 0.0;
        let mut g = vec![0.0; x.len()];
        for i in 0..x.len() {
            let d = x[i] - center[i];
            f += scales[i] * d * d;
            g[i] = 2.0 * scales[i] * d;
        }
        (f, g)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lbfgs_finds_quadratic_minima(
        center in proptest::collection::vec(-5.0f64..5.0, 1..6),
        raw_scales in proptest::collection::vec(0.1f64..10.0, 1..6),
        start in proptest::collection::vec(-5.0f64..5.0, 1..6),
    ) {
        let n = center.len().min(raw_scales.len()).min(start.len());
        let obj = quadratic(center[..n].to_vec(), raw_scales[..n].to_vec());
        let r = lbfgs(&obj, &start[..n], &LbfgsParams::default());
        for (xi, ci) in r.x.iter().zip(&center[..n]) {
            prop_assert!((xi - ci).abs() < 1e-4, "x {xi} vs center {ci}");
        }
    }

    #[test]
    fn lbfgs_monotone_improvement(start in proptest::collection::vec(-3.0f64..3.0, 2..5)) {
        // smooth nonconvex objective: never end worse than the start
        let obj = |x: &[f64]| {
            let f: f64 = x.iter().map(|v| (v * 1.7).sin() + 0.1 * v * v).sum();
            let g: Vec<f64> = x.iter().map(|v| 1.7 * (v * 1.7).cos() + 0.2 * v).collect();
            (f, g)
        };
        let (f0, _) = obj(&start);
        let r = lbfgs(&obj, &start, &LbfgsParams { max_iters: 50, ..Default::default() });
        prop_assert!(r.f <= f0 + 1e-12);
    }

    #[test]
    fn nelder_mead_never_worse_than_start(start in proptest::collection::vec(-3.0f64..3.0, 1..5)) {
        let f = |x: &[f64]| -> f64 {
            x.iter().map(|v| (v - 0.5).powi(2) + (v * 2.0).cos() * 0.3).sum()
        };
        let f0 = f(&start);
        let r = nelder_mead(&f, &start, &NelderMeadParams { max_evals: 2000, ..Default::default() });
        prop_assert!(r.f <= f0 + 1e-12);
    }

    #[test]
    fn nelder_mead_solves_separable_quadratics(center in proptest::collection::vec(-2.0f64..2.0, 1..4)) {
        let c = center.clone();
        let f = move |x: &[f64]| -> f64 {
            x.iter().zip(&c).map(|(v, ci)| (v - ci).powi(2)).sum()
        };
        let start = vec![0.0; center.len()];
        let r = nelder_mead(&f, &start, &NelderMeadParams::default());
        prop_assert!(r.f < 1e-6, "residual {}", r.f);
    }

    #[test]
    fn central_difference_linear_functions_are_exact(coeffs in proptest::collection::vec(-3.0f64..3.0, 1..5),
                                                     at in proptest::collection::vec(-2.0f64..2.0, 1..5)) {
        let n = coeffs.len().min(at.len());
        let c = coeffs[..n].to_vec();
        let f = move |x: &[f64]| -> f64 { x.iter().zip(&c).map(|(a, b)| a * b).sum() };
        let g = qaprox_opt::gradient::central_difference(&f, &at[..n], 1e-5);
        for (gi, ci) in g.iter().zip(&coeffs[..n]) {
            prop_assert!((gi - ci).abs() < 1e-7);
        }
    }
}
