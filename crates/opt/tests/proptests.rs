//! Property-style tests for the optimizers, driven by the in-repo seeded RNG.

use qaprox_linalg::random::{Rng, SplitMix64};
use qaprox_opt::{lbfgs, nelder_mead, LbfgsParams, NelderMeadParams};

const CASES: usize = 32;

fn vec_in(lo: f64, hi: f64, len: usize, rng: &mut SplitMix64) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

/// A positive-definite quadratic with a known minimizer.
fn quadratic(center: Vec<f64>, scales: Vec<f64>) -> impl Fn(&[f64]) -> (f64, Vec<f64>) {
    move |x: &[f64]| {
        let mut f = 0.0;
        let mut g = vec![0.0; x.len()];
        for i in 0..x.len() {
            let d = x[i] - center[i];
            f += scales[i] * d * d;
            g[i] = 2.0 * scales[i] * d;
        }
        (f, g)
    }
}

#[test]
fn lbfgs_finds_quadratic_minima() {
    let mut rng = SplitMix64::seed_from_u64(1);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..6);
        let center = vec_in(-5.0, 5.0, n, &mut rng);
        let scales = vec_in(0.1, 10.0, n, &mut rng);
        let start = vec_in(-5.0, 5.0, n, &mut rng);
        let obj = quadratic(center.clone(), scales);
        let r = lbfgs(&obj, &start, &LbfgsParams::default());
        for (xi, ci) in r.x.iter().zip(&center) {
            assert!((xi - ci).abs() < 1e-4, "x {xi} vs center {ci}");
        }
    }
}

#[test]
fn lbfgs_monotone_improvement() {
    let mut rng = SplitMix64::seed_from_u64(2);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..5);
        let start = vec_in(-3.0, 3.0, n, &mut rng);
        // smooth nonconvex objective: never end worse than the start
        let obj = |x: &[f64]| {
            let f: f64 = x.iter().map(|v| (v * 1.7).sin() + 0.1 * v * v).sum();
            let g: Vec<f64> = x.iter().map(|v| 1.7 * (v * 1.7).cos() + 0.2 * v).collect();
            (f, g)
        };
        let (f0, _) = obj(&start);
        let r = lbfgs(
            &obj,
            &start,
            &LbfgsParams {
                max_iters: 50,
                ..Default::default()
            },
        );
        assert!(r.f <= f0 + 1e-12);
    }
}

#[test]
fn nelder_mead_never_worse_than_start() {
    let mut rng = SplitMix64::seed_from_u64(3);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..5);
        let start = vec_in(-3.0, 3.0, n, &mut rng);
        let f = |x: &[f64]| -> f64 {
            x.iter()
                .map(|v| (v - 0.5).powi(2) + (v * 2.0).cos() * 0.3)
                .sum()
        };
        let f0 = f(&start);
        let r = nelder_mead(
            &f,
            &start,
            &NelderMeadParams {
                max_evals: 2000,
                ..Default::default()
            },
        );
        assert!(r.f <= f0 + 1e-12);
    }
}

#[test]
fn nelder_mead_solves_separable_quadratics() {
    let mut rng = SplitMix64::seed_from_u64(4);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..4);
        let center = vec_in(-2.0, 2.0, n, &mut rng);
        let c = center.clone();
        let f = move |x: &[f64]| -> f64 { x.iter().zip(&c).map(|(v, ci)| (v - ci).powi(2)).sum() };
        let start = vec![0.0; center.len()];
        let r = nelder_mead(&f, &start, &NelderMeadParams::default());
        assert!(r.f < 1e-6, "residual {}", r.f);
    }
}

#[test]
fn central_difference_linear_functions_are_exact() {
    let mut rng = SplitMix64::seed_from_u64(5);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..5);
        let coeffs = vec_in(-3.0, 3.0, n, &mut rng);
        let at = vec_in(-2.0, 2.0, n, &mut rng);
        let c = coeffs.clone();
        let f = move |x: &[f64]| -> f64 { x.iter().zip(&c).map(|(a, b)| a * b).sum() };
        let g = qaprox_opt::gradient::central_difference(&f, &at, 1e-5);
        for (gi, ci) in g.iter().zip(&coeffs) {
            assert!((gi - ci).abs() < 1e-7);
        }
    }
}
