//! Consistency checks across crate boundaries: the same quantum object must
//! look identical through every code path that can produce it.

use qaprox::prelude::*;
use qaprox_linalg::random::haar_unitary;
use qaprox_linalg::random::SplitMix64 as StdRng;
use qaprox_sim::DensityMatrix;

/// Random-ish test circuit touching most of the gate set.
fn mixed_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.rz(0.37, n - 1).ry(-0.8, 0).rx(1.1, 1);
    c.push(Gate::S, &[0]);
    c.push(Gate::CP(0.9), &[0, n - 1]);
    c.swap(0, 1);
    c.push(Gate::Tdg, &[1]);
    c
}

#[test]
fn statevector_and_density_matrix_agree_on_unitary_circuits() {
    for n in [2usize, 3, 4] {
        let c = mixed_circuit(n);
        let sv_probs = qaprox_sim::statevector::probabilities(&c);
        let mut dm = DensityMatrix::ground(n);
        dm.apply_circuit(&c);
        let dm_probs = dm.probabilities();
        for (a, b) in sv_probs.iter().zip(&dm_probs) {
            assert!((a - b).abs() < 1e-11, "n={n}: {a} vs {b}");
        }
    }
}

#[test]
fn circuit_unitary_matches_per_basis_statevectors() {
    let c = mixed_circuit(3);
    let u = c.unitary();
    for basis in 0..8 {
        let sv = qaprox_sim::statevector::run_from_basis(&c, basis);
        for (row, amp) in sv.iter().enumerate() {
            assert!((u[(row, basis)] - *amp).abs() < 1e-11);
        }
    }
}

#[test]
fn transpiled_circuit_has_same_unitary_up_to_layout() {
    // On a device whose topology already fits, trivial layout + L1 must
    // preserve the unitary exactly (up to global phase).
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).cx(1, 2).rz(0.4, 1);
    let cal = devices::santiago();
    let t = transpile(&c, &cal, OptLevel::L1, None);
    assert_eq!(
        t.swaps_inserted, 0,
        "chain circuit on a chain needs no SWAPs"
    );
    assert!(
        hs_distance(&t.circuit.unitary(), &c.unitary()) < 1e-9,
        "L1 transpilation must preserve semantics"
    );
}

#[test]
fn synthesis_distance_agrees_with_metrics_crate() {
    let mut rng = StdRng::seed_from_u64(55);
    let target = haar_unitary(4, &mut rng);
    let out = qsearch(
        &target,
        &Topology::linear(2),
        &QSearchConfig {
            max_cnots: 3,
            max_nodes: 30,
            ..Default::default()
        },
    );
    for ap in &out.intermediates {
        let d = hs_distance(&ap.circuit.unitary(), &target);
        assert!(
            (d - ap.hs_distance).abs() < 1e-7,
            "synthesis-recorded {} vs metrics {}",
            ap.hs_distance,
            d
        );
    }
}

#[test]
fn qfast_and_qsearch_converge_to_same_target() {
    let mut rng = StdRng::seed_from_u64(77);
    let target = haar_unitary(4, &mut rng);
    let topo = Topology::linear(2);
    let qs = qsearch(
        &target,
        &topo,
        &QSearchConfig {
            max_cnots: 3,
            max_nodes: 40,
            ..Default::default()
        },
    );
    let qf = qfast(
        &target,
        &topo,
        &QFastConfig {
            max_blocks: 2,
            ..Default::default()
        },
    );
    assert!(
        qs.best.hs_distance < 1e-6,
        "QSearch should nail a 2q target"
    );
    assert!(qf.best.hs_distance < 1e-4, "QFast should nail a 2q target");
    // and both circuits implement (approximately) the same unitary
    let d = hs_distance(&qs.best.circuit.unitary(), &qf.best.circuit.unitary());
    assert!(d < 1e-3, "engines disagree: {d}");
}

#[test]
fn induced_calibration_and_noise_model_are_consistent() {
    let cal = devices::toronto();
    let sub = cal.induced(&[0, 1, 2]);
    assert_eq!(sub.topology.num_qubits(), 3);
    let model = NoiseModel::from_calibration(sub.clone());
    assert_eq!(model.num_qubits(), 3);
    // average CNOT error of the subset must match the parent edges
    let parent_edges = [(0usize, 1usize), (1, 2)];
    for (i, &(a, b)) in parent_edges.iter().enumerate() {
        let parent = cal.edge(a, b).unwrap().cx_error;
        let child = sub.edge(i, i + 1).unwrap().cx_error;
        assert!((parent - child).abs() < 1e-15);
    }
}

#[test]
fn qasm_dump_reflects_circuit_content() {
    let c = mixed_circuit(3);
    let text = qaprox_circuit::qasm::to_qasm(&c);
    assert!(text.contains("qreg q[3];"));
    // every instruction appears as a line
    let gate_lines = text
        .lines()
        .filter(|l| l.ends_with(';') && !l.starts_with("qreg"))
        .count();
    assert_eq!(gate_lines, c.len());
}

#[test]
fn backend_enum_matches_direct_calls() {
    let c = mixed_circuit(3);
    let cal = devices::ourense().induced(&[0, 1, 2]);
    let model = NoiseModel::from_calibration(cal);
    let via_enum = Backend::Noisy(model.clone()).probabilities(&c, 0);
    let direct = model.probabilities(&c);
    assert_eq!(via_enum, direct);
}

#[test]
fn trajectory_simulation_tracks_density_matrix_on_approximations() {
    // An approximate circuit from synthesis, executed under both noisy
    // simulation paths: trajectory averaging must agree with the density
    // matrix within Monte-Carlo error.
    let mut rng = StdRng::seed_from_u64(91);
    let target = haar_unitary(4, &mut rng);
    let out = qsearch(
        &target,
        &Topology::linear(2),
        &QSearchConfig {
            max_cnots: 2,
            max_nodes: 20,
            ..Default::default()
        },
    );
    let cal = devices::rome().induced(&[0, 1]);
    let model = NoiseModel::from_calibration(cal);
    let dm = model.probabilities(&out.best.circuit);
    let tj = qaprox_sim::trajectory_probabilities(&out.best.circuit, &model, 3000, 5);
    let tvd: f64 = 0.5 * dm.iter().zip(&tj).map(|(a, b)| (a - b).abs()).sum::<f64>();
    assert!(tvd < 0.03, "trajectory vs density matrix TVD {tvd}");
}

#[test]
fn qasm_round_trip_preserves_synthesized_circuits() {
    let mut rng = StdRng::seed_from_u64(92);
    let target = haar_unitary(4, &mut rng);
    let out = qsearch(
        &target,
        &Topology::linear(2),
        &QSearchConfig {
            max_cnots: 3,
            max_nodes: 30,
            ..Default::default()
        },
    );
    for ap in out.intermediates.iter().take(5) {
        let text = qaprox_circuit::qasm::to_qasm(&ap.circuit);
        let back = qaprox_circuit::from_qasm(&text).expect("parse back");
        assert!(
            hs_distance(&back.unitary(), &ap.circuit.unitary()) < 1e-9,
            "QASM round trip changed a synthesized circuit"
        );
    }
}

#[test]
fn mitigation_recovers_noise_model_readout_exactly() {
    // NoiseModel applies readout confusion; mitigation with the same
    // calibration must undo exactly that factor.
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).cx(1, 2);
    let cal = devices::toronto().induced(&[0, 1, 2]);
    let mut no_readout = NoiseModel::from_calibration(cal.clone());
    no_readout.include_readout = false;
    let with_readout = NoiseModel::from_calibration(cal.clone());

    let raw = with_readout.probabilities(&c);
    let errors = qaprox_sim::mitigation::errors_from_calibration(&cal);
    let mitigated = qaprox_sim::mitigate_readout(&raw, &errors);
    let expect = no_readout.probabilities(&c);
    for (a, b) in mitigated.iter().zip(&expect) {
        assert!(
            (a - b).abs() < 1e-9,
            "mitigation should undo modelled readout"
        );
    }
}

#[test]
fn spectral_and_pade_expm_agree_inside_qfast_blocks() {
    use qaprox_linalg::pauli::{hermitian_from_coeffs, su_basis};
    let basis = su_basis(2);
    let coeffs: Vec<f64> = (0..15).map(|i| ((i * 7 + 3) as f64 * 0.17).sin()).collect();
    let h = hermitian_from_coeffs(&basis, &coeffs);
    let a = qaprox_linalg::expm_i_hermitian(&h);
    let b = qaprox_linalg::expm_i_hermitian_spectral(&h);
    assert!(
        a.approx_eq(&b, 1e-8),
        "expm paths disagree by {}",
        a.max_diff(&b)
    );
}
