//! End-to-end integration: the full Fig. 1 pipeline across crates —
//! reference circuit -> synthesis -> selection -> transpilation -> noisy
//! execution -> metric evaluation.

use qaprox::prelude::*;
use qaprox::toffoli_study::{battery_js, toffoli_target};
use qaprox_synth::InstantiateConfig;

fn quick_qsearch(_n: usize, max_cnots: usize) -> QSearchConfig {
    QSearchConfig {
        max_cnots,
        max_nodes: 60,
        beam_width: 3,
        instantiate: InstantiateConfig {
            starts: 1,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn tfim_pipeline_produces_better_than_reference_under_heavy_noise() {
    // Step-6 TFIM circuit: 24 CNOTs; under 12% CNOT error the exact circuit
    // is badly degraded, and some approximation must land closer to ideal.
    let params = TfimParams::paper_defaults(3);
    let reference = tfim_circuit(&params, 6);
    assert_eq!(reference.cx_count(), 24);

    let workflow = Workflow {
        topology: Topology::linear(3),
        engine: Engine::QSearch(quick_qsearch(3, 5)),
        max_hs: 0.2,
    };
    let population = workflow.generate(&Workflow::target_unitary(&reference));
    assert!(population.circuits.len() >= 5, "population too thin");

    let cal = devices::ourense()
        .induced(&[0, 1, 2])
        .with_uniform_cx_error(0.12);
    let backend = Backend::Noisy(NoiseModel::from_calibration(cal));

    let ideal_m = magnetization(&qaprox_sim::statevector::probabilities(&reference));
    let noisy_ref_m = magnetization(&backend.probabilities(&reference, 0));
    let ref_err = (noisy_ref_m - ideal_m).abs();

    let scored = execute_and_score(&population.circuits, &backend, |_, p| magnetization(p));
    let best_err = scored
        .iter()
        .map(|s| (s.score - ideal_m).abs())
        .min_by(f64::total_cmp)
        .unwrap();
    assert!(
        best_err < ref_err,
        "Obs. 1: best approximation ({best_err:.4}) must beat the noisy reference ({ref_err:.4})"
    );
}

#[test]
fn synthesized_circuits_survive_transpilation() {
    // Approximate circuits from synthesis must transpile onto a device and
    // keep their semantics (checked on the ideal backend).
    let mut reference = Circuit::new(3);
    reference.h(0).cx(0, 1).cx(1, 2).rz(0.3, 2);
    let workflow = Workflow {
        topology: Topology::linear(3),
        engine: Engine::QSearch(quick_qsearch(3, 3)),
        max_hs: 0.3,
    };
    let population = workflow.generate(&Workflow::target_unitary(&reference));
    let cal = devices::toronto();
    for ap in population.circuits.iter().take(6) {
        let before = qaprox_sim::statevector::probabilities(&ap.circuit);
        let t = transpile(&ap.circuit, &cal, OptLevel::L3, None);
        let after_compact = qaprox_sim::statevector::probabilities(&t.circuit);
        let after = t.logical_probabilities(&after_compact, 3);
        for (a, b) in before.iter().zip(&after) {
            assert!((a - b).abs() < 1e-8, "transpilation changed outputs");
        }
    }
}

#[test]
fn toffoli_pipeline_reference_vs_approximation_ordering() {
    // On an ideal backend the exact reference must win; under heavy noise
    // the shallow approximation must win (the paper's core trade-off).
    let target = toffoli_target(3);
    let workflow = Workflow {
        topology: Topology::linear(3),
        engine: Engine::QSearch(quick_qsearch(3, 4)),
        // the 3q Toffoli is hard to approximate shallowly; keep a wide stream
        max_hs: 0.45,
    };
    let population = workflow.generate(&target);
    let best_short = population
        .circuits
        .iter()
        .filter(|c| c.cnots <= 4)
        .min_by(|a, b| a.hs_distance.total_cmp(&b.hs_distance))
        .expect("some shallow candidate");

    let reference = mct_reference(3);

    let ideal_ref = battery_js(&reference, &Backend::Ideal, 0);
    let ideal_approx = battery_js(&best_short.circuit, &Backend::Ideal, 0);
    assert!(
        ideal_ref <= ideal_approx + 1e-9,
        "noise-free: exact ({ideal_ref:.4}) must not lose to approximate ({ideal_approx:.4})"
    );

    let noisy_cal = devices::ourense()
        .induced(&[0, 1, 2])
        .with_uniform_cx_error(0.20);
    let noisy = Backend::Noisy(NoiseModel::from_calibration(noisy_cal));
    let noisy_ref = battery_js(&reference, &noisy, 0);
    let noisy_approx = battery_js(&best_short.circuit, &noisy, 0);
    assert!(
        noisy_approx < noisy_ref + 0.05,
        "at 20% CNOT error the shallow circuit ({noisy_approx:.4}) should be \
         competitive with the 6-CNOT reference ({noisy_ref:.4})"
    );
}

#[test]
fn hardware_emulation_is_worse_than_model_is_worse_than_ideal() {
    let params = TfimParams::paper_defaults(3);
    let reference = tfim_circuit(&params, 8);
    let ideal = qaprox_sim::statevector::probabilities(&reference);
    let ideal_m = magnetization(&ideal);

    let cal = devices::manhattan().induced(&[0, 1, 2]);
    let model = NoiseModel::from_calibration(cal.clone());
    let model_m = magnetization(&model.probabilities(&reference));
    let hw = HardwareBackend::new(model.clone());
    let hw_m = magnetization(&hw.probabilities(&reference, 5));

    let model_err = (model_m - ideal_m).abs();
    let hw_err = (hw_m - ideal_m).abs();
    assert!(model_err > 1e-4, "device model must be visibly noisy");
    assert!(
        hw_err > model_err * 0.8,
        "hardware emulation ({hw_err:.4}) should be at least as bad as the model ({model_err:.4})"
    );
}

#[test]
fn full_grover_pipeline_runs_on_all_backends() {
    let study = qaprox::grover_study::GroverStudy::paper();
    let workflow = Workflow {
        topology: Topology::linear(3),
        engine: Engine::QSearch(quick_qsearch(3, 3)),
        max_hs: 0.3,
    };
    let pop = workflow.generate(&study.target_unitary());
    assert!(!pop.circuits.is_empty());
    for backend in [
        Backend::Ideal,
        Backend::Noisy(NoiseModel::from_calibration(
            devices::rome().induced(&[0, 1, 2]),
        )),
        Backend::Hardware(HardwareBackend::new(NoiseModel::from_calibration(
            devices::rome().induced(&[0, 1, 2]),
        ))),
    ] {
        let scored = study.evaluate_population(&pop.circuits, &backend);
        assert_eq!(scored.len(), pop.circuits.len());
        for s in &scored {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&s.score),
                "probability out of range"
            );
        }
    }
}
