//! QASM round-trip property test: for every workload reference circuit (and
//! a grid of adversarial rotation angles) the dump -> parse cycle must
//! reproduce the unitary to within 1e-12 — in practice exactly, because
//! angles print with `{:.17e}` (17 significant digits round-trip every
//! IEEE-754 double). This pins the serialization contract the
//! content-addressed store's cache keys depend on.

use qaprox::prelude::*;
use qaprox_circuit::qasm::{canonical_bytes, to_qasm};
use qaprox_circuit::{from_qasm, Gate};

/// Largest element-wise deviation between two unitaries.
fn max_abs_diff(a: &qaprox_linalg::Matrix, b: &qaprox_linalg::Matrix) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (x - y).norm_sqr().sqrt())
        .fold(0.0, f64::max)
}

/// Dump -> parse -> compare; also checks the canonical bytes are a fixpoint
/// (re-dumping the parsed circuit yields identical text, which is what makes
/// the serialization usable as a store key input).
fn assert_round_trips(circuit: &qaprox_circuit::Circuit, label: &str) {
    let text = to_qasm(circuit);
    let parsed = from_qasm(&text).unwrap_or_else(|e| panic!("{label}: parse failed: {e}\n{text}"));
    assert_eq!(
        parsed.num_qubits(),
        circuit.num_qubits(),
        "{label}: qubit count"
    );
    assert_eq!(parsed.len(), circuit.len(), "{label}: gate count");
    let diff = max_abs_diff(&circuit.unitary(), &parsed.unitary());
    assert!(diff <= 1e-12, "{label}: unitary drifted by {diff:.3e}");
    assert_eq!(
        canonical_bytes(&parsed),
        canonical_bytes(circuit),
        "{label}: canonical bytes must be a fixpoint"
    );
}

#[test]
fn every_workload_reference_round_trips() {
    for qubits in 2..=5 {
        for steps in [1, 3, 6] {
            let params = TfimParams::paper_defaults(qubits);
            assert_round_trips(
                &tfim_circuit(&params, steps),
                &format!("tfim q={qubits} steps={steps}"),
            );
        }
        let iters = qaprox_algos::grover::optimal_iterations(qubits);
        for target in [0, (1usize << qubits) - 1] {
            assert_round_trips(
                &grover_circuit(qubits, target, iters),
                &format!("grover q={qubits} target={target}"),
            );
        }
        assert_round_trips(&mct_reference(qubits), &format!("toffoli q={qubits}"));
    }
}

#[test]
fn adversarial_rotation_angles_round_trip() {
    // Angles chosen to stress decimal printing: subnormals, negative zero
    // survivors, irrational multiples, and values near the f64 extremes.
    let angles = [
        0.0,
        -0.0,
        1.0 / 3.0,
        std::f64::consts::PI,
        -std::f64::consts::PI,
        2.0 * std::f64::consts::PI - 1e-15,
        1e-300,
        -1e-300,
        f64::MIN_POSITIVE,
        1e17,
        -123.456_789_012_345_67,
        f64::EPSILON,
    ];
    // deterministic LCG so the property set is reproducible
    let mut state: u64 = 0x2545_F491_4F6C_DD1D;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // uniform-ish angle in (-8, 8): wide enough to exercise multi-turn values
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 16.0 - 8.0
    };

    for (case, &theta) in angles.iter().enumerate() {
        let mut c = qaprox_circuit::Circuit::new(3);
        c.rx(theta, 0).ry(next(), 1).rz(next(), 2);
        c.push(Gate::P(theta), &[1]);
        c.u3(theta, next(), next(), 0);
        c.cx(0, 1);
        c.push(Gate::CRX(next()), &[1, 2]);
        c.push(Gate::CRZ(theta), &[0, 2]);
        c.push(Gate::CP(next()), &[2, 1]);
        c.h(2).cz(0, 2).swap(1, 2);
        assert_round_trips(&c, &format!("adversarial case {case} theta={theta:e}"));
    }
}

#[test]
fn synthesized_populations_round_trip() {
    // The store persists synthesized circuits as QASM; they must survive the
    // same cycle as the references do.
    let spec_wf = Workflow {
        topology: Topology::linear(2),
        engine: Engine::QSearch(QSearchConfig {
            max_cnots: 3,
            max_nodes: 25,
            ..Default::default()
        }),
        max_hs: 0.4,
    };
    let params = TfimParams::paper_defaults(2);
    let target = Workflow::target_unitary(&tfim_circuit(&params, 2));
    let pop = spec_wf.generate(&target);
    assert!(!pop.circuits.is_empty());
    for (i, ap) in pop.circuits.iter().enumerate() {
        assert_round_trips(&ap.circuit, &format!("synthesized circuit {i}"));
    }
}
