//! Executable versions of the paper's observations, at reduced scale.
//! Each test pins the *shape* of a claim (who wins, which direction a trend
//! moves), not absolute numbers — our substrate is a simulator, not the
//! authors' testbed.

use qaprox::prelude::*;
use qaprox::sweep::{cx_error_sweep, mean_best_depth};
use qaprox::tfim_study::{evaluate, generate_populations, series_error};
use qaprox::toffoli_study::{battery_js, random_noise_js};
use qaprox_synth::InstantiateConfig;

fn tfim_pops(steps: usize) -> qaprox::tfim_study::TfimPopulations {
    let workflow = Workflow {
        topology: Topology::linear(3),
        engine: Engine::QSearch(QSearchConfig {
            max_cnots: 5,
            max_nodes: 80,
            beam_width: 3,
            instantiate: InstantiateConfig {
                starts: 1,
                ..Default::default()
            },
            ..Default::default()
        }),
        max_hs: 0.2,
    };
    generate_populations(&TfimParams::paper_defaults(3), steps, &workflow)
}

/// Observation 1: short approximate circuits can outperform long exact
/// circuits under device noise models.
#[test]
fn obs1_approximations_beat_reference_under_device_model() {
    let pops = tfim_pops(8);
    let cal = devices::toronto().induced(&[0, 1, 2]);
    let results = evaluate(&pops, &Backend::Noisy(NoiseModel::from_calibration(cal)));
    let ref_err = series_error(&results, |r| r.noisy_ref);
    let best_err = series_error(&results, |r| r.best_approx.score);
    assert!(
        best_err < ref_err,
        "best approximations ({best_err:.4}) must beat the noisy reference ({ref_err:.4})"
    );
    // the winning circuits are shorter than the reference at late steps
    let last = results.last().unwrap();
    assert!(last.best_approx.cnots < last.reference_cnots);
}

/// Observation 4: the benefit grows with the depth of the reference — deep
/// timesteps gain more than shallow ones. At this reduced scale the
/// magnetization crosses zero around step 9, where ideal and fully-mixed
/// outputs coincide and *no* method can show a gain, so the "deep" window is
/// steps 5-7 (20-28 reference CNOTs vs 4-12 in the shallow window).
#[test]
fn obs4_benefit_grows_with_reference_depth() {
    let pops = tfim_pops(7);
    let cal = devices::toronto()
        .induced(&[0, 1, 2])
        .with_scaled_cx_error(2.0);
    let results = evaluate(&pops, &Backend::Noisy(NoiseModel::from_calibration(cal)));
    let gain = |r: &qaprox::tfim_study::TimestepResult| {
        (r.noisy_ref - r.noise_free_ref).abs() - (r.best_approx.score - r.noise_free_ref).abs()
    };
    let early: f64 = results[..3].iter().map(gain).sum::<f64>() / 3.0;
    let late: f64 = results[4..7].iter().map(gain).sum::<f64>() / 3.0;
    assert!(
        late > early,
        "deep circuits should gain more from approximation: early {early:.4} vs late {late:.4}"
    );
}

/// Observations 5/6: as two-qubit error grows, the best-performing circuits
/// get shallower.
#[test]
fn obs6_more_noise_shorter_winners() {
    let pops = tfim_pops(8);
    let base = devices::ourense().induced(&[0, 1, 2]);
    let sweep = cx_error_sweep(&pops, &base, &[0.0, 0.24]);
    let means = mean_best_depth(&sweep);
    assert!(
        means[1].1 <= means[0].1,
        "mean winning depth must not grow with noise: {:.2} @0 vs {:.2} @0.24",
        means[0].1,
        means[1].1
    );
}

/// Fig. 7's floor: on the Toffoli battery, a fully decohered (uniform)
/// output scores JS ~ 0.465 regardless of width, and very deep circuits
/// under heavy noise approach it.
#[test]
fn random_noise_floor_and_deep_circuit_convergence() {
    let floor4 = random_noise_js(4);
    let floor5 = random_noise_js(5);
    assert!((floor4 - 0.465).abs() < 0.002);
    assert!((floor5 - 0.465).abs() < 0.002);

    // a deep reference under extreme CNOT noise approaches the floor
    let reference = mct_reference(4);
    let cal = devices::manhattan()
        .induced(&[0, 1, 2, 3])
        .with_uniform_cx_error(0.3);
    let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
    let js = battery_js(&reference, &backend, 0);
    assert!(
        (js - floor4).abs() < 0.08,
        "24 CNOTs at 30% error should sit near the 0.465 floor, got {js:.4}"
    );
}

/// Observation 7: hardware (emulated) results distribute like the noise-model
/// results, only worse — the approximate circuits still mostly beat the
/// reference.
#[test]
fn obs7_hardware_results_track_noise_model_results() {
    let pops = tfim_pops(6);
    let cal = devices::manhattan().induced(&[0, 1, 2]);
    let model_results = evaluate(
        &pops,
        &Backend::Noisy(NoiseModel::from_calibration(cal.clone())),
    );
    let hw_results = evaluate(
        &pops,
        &Backend::Hardware(HardwareBackend::new(NoiseModel::from_calibration(cal))),
    );
    let model_ref_err = series_error(&model_results, |r| r.noisy_ref);
    let hw_ref_err = series_error(&hw_results, |r| r.noisy_ref);
    assert!(
        hw_ref_err >= model_ref_err * 0.8,
        "hardware should be at least about as bad as the model: {hw_ref_err:.4} vs {model_ref_err:.4}"
    );
    let hw_best_err = series_error(&hw_results, |r| r.best_approx.score);
    assert!(
        hw_best_err < hw_ref_err,
        "approximations must still win on hardware: {hw_best_err:.4} vs {hw_ref_err:.4}"
    );
}

/// The paper's headline number: up to 60% precision gain. We assert a
/// substantial (>= 25%) gain at a noisy operating point — the exact figure
/// depends on the noise level, but the magnitude must be large.
#[test]
fn headline_substantial_precision_gain() {
    let pops = tfim_pops(8);
    let cal = devices::ourense()
        .induced(&[0, 1, 2])
        .with_uniform_cx_error(0.06);
    let results = evaluate(&pops, &Backend::Noisy(NoiseModel::from_calibration(cal)));
    let ref_err = series_error(&results, |r| r.noisy_ref);
    let best_err = series_error(&results, |r| r.best_approx.score);
    let gain = 1.0 - best_err / ref_err;
    assert!(
        gain > 0.25,
        "expected a large precision gain at 6% CNOT error, got {:.1}%",
        gain * 100.0
    );
}

/// Observation 3: approximate circuits from synthesis can beat the discrete
/// (Qiskit-style) reference under noise — on the *4-qubit* Toffoli, whose
/// no-ancilla reference carries 24 CNOTs (Fig. 6).
#[test]
fn obs3_population_contains_reference_beaters() {
    let target = qaprox::toffoli_study::toffoli_target(4);
    let workflow = Workflow {
        topology: Topology::linear(4),
        engine: Engine::QSearch(QSearchConfig {
            max_cnots: 5,
            max_nodes: 60,
            beam_width: 2,
            instantiate: InstantiateConfig {
                starts: 1,
                ..Default::default()
            },
            ..Default::default()
        }),
        max_hs: 0.45,
    };
    let pop = workflow.generate(&target);
    assert!(
        !pop.circuits.is_empty(),
        "4q Toffoli population must not be empty"
    );
    let cal = devices::manhattan()
        .induced(&[0, 1, 2, 3])
        .with_uniform_cx_error(0.08);
    let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
    let reference = mct_reference(4);
    assert!(
        reference.cx_count() >= 20,
        "no-ancilla 4q MCT is CNOT-heavy"
    );
    let ref_js = battery_js(&reference, &backend, 0);
    let scored = qaprox::toffoli_study::evaluate_population(&pop.circuits, &backend);
    let best = scored
        .iter()
        .map(|s| s.score)
        .min_by(f64::total_cmp)
        .unwrap();
    assert!(
        best < ref_js,
        "some approximation ({best:.4}) must beat the reference ({ref_js:.4}) under noise"
    );
}

/// Observation 4's flip side: for the *3-qubit* Toffoli — already just
/// 6 CNOTs — shallow approximations offer little to no benefit.
#[test]
fn obs4_short_references_gain_little() {
    let target = qaprox::toffoli_study::toffoli_target(3);
    let workflow = Workflow {
        topology: Topology::linear(3),
        engine: Engine::QSearch(QSearchConfig {
            max_cnots: 5,
            max_nodes: 80,
            beam_width: 3,
            instantiate: InstantiateConfig {
                starts: 1,
                ..Default::default()
            },
            ..Default::default()
        }),
        max_hs: 0.45,
    };
    let pop = workflow.generate(&target);
    let cal = devices::ourense().induced(&[0, 1, 2]);
    let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
    let ref_js = battery_js(&mct_reference(3), &backend, 0);
    // strictly-shallower candidates (< 6 CNOTs) should NOT clearly beat the
    // hand-optimized 6-CNOT Toffoli on a good device
    let scored = qaprox::toffoli_study::evaluate_population(&pop.circuits, &backend);
    let best_shallow = scored
        .iter()
        .filter(|s| s.cnots < 6)
        .map(|s| s.score)
        .min_by(f64::total_cmp)
        .unwrap_or(f64::INFINITY);
    assert!(
        best_shallow > ref_js - 0.02,
        "shallow approximations ({best_shallow:.4}) should not clearly beat the \
         6-CNOT reference ({ref_js:.4}) on a low-noise device (Obs. 4)"
    );
}
