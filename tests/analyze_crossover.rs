//! The paper's central crossover, reproduced statically: a fewer-CNOT
//! approximation with sub-threshold HS distance (< 0.1) ranks above the
//! exact reference at high CNOT error — both by the static noise-budget
//! estimator (`qaprox_synth::rank_by_predicted`, no simulation) and by
//! density-matrix simulation — while at low noise the exact circuit wins
//! the static ranking back.

use qaprox::prelude::*;
use qaprox_metrics::total_variation;
use qaprox_synth::{rank_by_predicted, ApproxCircuit};

/// An exact reference and a hand-built approximation of it: the reference
/// carries three extra near-identity CNOT blocks (cx; rx(0.05); cx), so the
/// approximation drops 6 of 8 CNOTs at a small, known unitary cost.
fn reference_and_approximation() -> (Circuit, Circuit) {
    let mut approx = Circuit::new(3);
    approx.h(0).cx(0, 1).cx(1, 2).rz(0.7, 2);
    let mut reference = approx.clone();
    for _ in 0..3 {
        reference.cx(1, 2).rx(0.05, 2).cx(1, 2);
    }
    (reference, approx)
}

#[test]
fn fewer_cnot_approximation_wins_at_high_noise_statically_and_by_simulation() {
    let (reference, approx) = reference_and_approximation();
    let hs = qaprox_metrics::hs_distance(&reference.unitary(), &approx.unitary());
    assert!(
        hs > 0.0 && hs < 0.1,
        "approximation must be sub-threshold but not exact: hs={hs}"
    );
    assert!(approx.cx_count() < reference.cx_count());

    let candidates = vec![
        ApproxCircuit::new(reference.clone(), 0.0),
        ApproxCircuit::new(approx.clone(), hs),
    ];
    let cal = devices::ourense()
        .induced(&[0, 1, 2])
        .with_uniform_cx_error(0.1);

    // static ranking: the 2-CNOT approximation comes out on top
    let ranked = rank_by_predicted(&candidates, &cal);
    assert_eq!(
        ranked[0].0.cnots,
        approx.cx_count(),
        "static ranking must prefer the approximation at eps=0.1"
    );
    assert!(ranked[0].1 > ranked[1].1);

    // simulation agrees: the approximation's output distribution is closer
    // to the ideal reference distribution than the noisy reference's own
    let ideal = qaprox_metrics::probabilities(&reference.statevector());
    let model = NoiseModel::from_calibration(cal);
    let tvd_ref = total_variation(&model.probabilities(&reference), &ideal);
    let tvd_approx = total_variation(&model.probabilities(&approx), &ideal);
    assert!(
        tvd_approx < tvd_ref,
        "simulated crossover: approx {tvd_approx:.4} vs reference {tvd_ref:.4}"
    );
}

#[test]
fn exact_reference_wins_the_static_ranking_at_low_noise() {
    let (reference, approx) = reference_and_approximation();
    let hs = qaprox_metrics::hs_distance(&reference.unitary(), &approx.unitary());
    let candidates = vec![
        ApproxCircuit::new(reference.clone(), 0.0),
        ApproxCircuit::new(approx, hs),
    ];
    // near-noiseless device: negligible gate error, effectively infinite
    // coherence so duration differences cannot mask the exactness advantage
    let mut cal = devices::ourense()
        .induced(&[0, 1, 2])
        .with_uniform_cx_error(1e-6);
    for q in &mut cal.qubits {
        q.t1_us = 1e9;
        q.t2_us = 1e9;
        q.sx_error = 1e-7;
    }
    let ranked = rank_by_predicted(&candidates, &cal);
    assert_eq!(
        ranked[0].0.cnots,
        reference.cx_count(),
        "static ranking must prefer exactness when noise is negligible"
    );
}
